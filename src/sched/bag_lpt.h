// bag-LPT (paper §4) and group-bag-LPT (paper §4.1).
//
// bag-LPT: given bags whose jobs can all go on any of m' machines, process
// bags one after another; within a bag, sort jobs descending and machines
// ascending by load, then give the j-th job to the j-th machine. Lemma 8:
// when all machines start at equal height, any two machines end within
// p_max of each other.
#pragma once

#include <vector>

#include "model/instance.h"
#include "model/job.h"
#include "model/schedule.h"

namespace bagsched::sched {

/// A bag for bag-LPT: job ids with their sizes (subset of an instance).
struct LptBag {
  std::vector<model::JobId> jobs;
};

/// Runs bag-LPT over `machines` (ids into some schedule), starting from the
/// given initial loads (parallel to `machines`). Jobs of each bag land on
/// pairwise-distinct machines; bags larger than machines.size() throw.
/// Returns, for each bag, the machine (index into `machines`) per job, in
/// the order of LptBag::jobs.
std::vector<std::vector<int>> bag_lpt_assign(
    const model::Instance& instance, const std::vector<LptBag>& bags,
    std::vector<double> initial_loads);

/// Standalone heuristic: runs bag-LPT on the full instance (all m machines,
/// all bags) — valid because every bag satisfies |B_l| <= m.
model::Schedule bag_lpt(const model::Instance& instance);

}  // namespace bagsched::sched
