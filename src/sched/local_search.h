// Local search (relocate + swap neighbourhood) over feasible schedules.
//
// Practical comparator standing between greedy heuristics and the EPTAS:
// starts from greedy_bags and descends until a local optimum or the move
// budget runs out. The acceptance order is lexicographic
// (makespan, number of machines attaining it), so plateau moves that reduce
// the number of critical machines are taken — the standard trick to escape
// flat regions of the makespan landscape.
#pragma once

#include <cstdint>
#include <functional>

#include "model/instance.h"
#include "model/schedule.h"
#include "util/cancellation.h"

namespace bagsched::sched {

struct LocalSearchOptions {
  long long max_moves = 200000;  ///< accepted-move budget
  /// Seed for the job scan order: 0 keeps the deterministic LPT-index order
  /// (legacy behaviour); any other value shuffles the scan order with a
  /// seeded PRNG, so runs are reproducible per seed but diversified across
  /// seeds (what the portfolio wants).
  std::uint64_t seed = 0;
  /// Cooperative cancellation, polled between move evaluations.
  const util::CancellationToken* cancel = nullptr;
  /// Invoked with the new makespan whenever an accepted move lowers it
  /// (plateau moves that only shrink the critical set don't fire it).
  std::function<void(double makespan)> on_incumbent;
};

struct LocalSearchResult {
  long long accepted_moves = 0;
  /// True iff the cancellation token stopped the descent before it
  /// converged — a token that fires after the local optimum was reached
  /// does NOT set this, so callers can count real cancellations exactly.
  bool cancelled = false;
};

model::Schedule local_search(const model::Instance& instance,
                             const LocalSearchOptions& options = {});

/// Improves an existing feasible schedule in place.
LocalSearchResult improve(const model::Instance& instance,
                          model::Schedule& schedule,
                          const LocalSearchOptions& options = {});

}  // namespace bagsched::sched
