// Local search (relocate + swap neighbourhood) over feasible schedules.
//
// Practical comparator standing between greedy heuristics and the EPTAS:
// starts from greedy_bags and descends until a local optimum or the move
// budget runs out. The acceptance order is lexicographic
// (makespan, number of machines attaining it), so plateau moves that reduce
// the number of critical machines are taken — the standard trick to escape
// flat regions of the makespan landscape.
#pragma once

#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::sched {

struct LocalSearchOptions {
  long long max_moves = 200000;  ///< accepted-move budget
};

model::Schedule local_search(const model::Instance& instance,
                             const LocalSearchOptions& options = {});

/// Improves an existing feasible schedule in place; returns accepted moves.
long long improve(const model::Instance& instance, model::Schedule& schedule,
                  const LocalSearchOptions& options = {});

}  // namespace bagsched::sched
