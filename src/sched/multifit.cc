#include "sched/multifit.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "model/lower_bounds.h"
#include "sched/greedy_bags.h"

namespace bagsched::sched {

using model::BagId;
using model::Instance;
using model::JobId;
using model::Schedule;

namespace {

/// First-fit-decreasing with capacity C and bag exclusion; nullopt when the
/// jobs do not fit into m bins.
std::optional<Schedule> ffd_pack(const Instance& instance, double capacity) {
  std::vector<JobId> order(static_cast<std::size_t>(instance.num_jobs()));
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    order[static_cast<std::size_t>(j)] = j;
  }
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (instance.job(a).size != instance.job(b).size) {
      return instance.job(a).size > instance.job(b).size;
    }
    return a < b;
  });

  const int m = instance.num_machines();
  Schedule schedule(instance.num_jobs(), m);
  std::vector<double> loads(static_cast<std::size_t>(m), 0.0);
  std::vector<std::vector<bool>> has_bag(
      static_cast<std::size_t>(m),
      std::vector<bool>(static_cast<std::size_t>(
                            std::max(instance.num_bags(), 1)),
                        false));

  for (JobId job : order) {
    const double size = instance.job(job).size;
    const BagId bag = instance.job(job).bag;
    int target = -1;
    for (int machine = 0; machine < m; ++machine) {
      if (has_bag[static_cast<std::size_t>(machine)]
                 [static_cast<std::size_t>(bag)]) {
        continue;
      }
      if (loads[static_cast<std::size_t>(machine)] + size <=
          capacity + 1e-12) {
        target = machine;
        break;
      }
    }
    if (target < 0) return std::nullopt;
    schedule.assign(job, target);
    loads[static_cast<std::size_t>(target)] += size;
    has_bag[static_cast<std::size_t>(target)]
           [static_cast<std::size_t>(bag)] = true;
  }
  return schedule;
}

}  // namespace

Schedule multifit(const Instance& instance, const MultifitOptions& options) {
  if (!instance.is_feasible()) {
    throw std::invalid_argument("multifit: a bag exceeds the machine count");
  }
  if (instance.num_jobs() == 0) {
    return Schedule(0, instance.num_machines());
  }
  double lo = model::combined_lower_bound(instance);
  // Greedy always succeeds, so its makespan is a valid starting capacity.
  Schedule best = greedy_bags(instance);
  double hi = best.makespan(instance);

  for (int i = 0; i < options.iterations && hi - lo > 1e-12 * hi; ++i) {
    const double capacity = 0.5 * (lo + hi);
    const auto packed = ffd_pack(instance, capacity);
    if (packed) {
      // FFD fit below `capacity`; its actual makespan may be even smaller.
      const double achieved = packed->makespan(instance);
      if (achieved < hi) {
        best = *packed;
        hi = achieved;
      } else {
        hi = capacity;
      }
    } else {
      lo = capacity;
    }
  }
  return best;
}

}  // namespace bagsched::sched
