// Parallel work-stealing branch-and-bound over job -> machine assignments.
//
// Same search as sched::solve_exact — LPT branching order, machine-symmetry
// breaking, bag pruning, area bound, equal-load dominance — but the top of
// the tree is expanded breadth-first into stealable subtree frames that
// util::ThreadPool workers drain with sequential DFS below the handoff
// depth. The incumbent is a std::atomic<double> published via CAS, so every
// worker prunes against the globally best makespan; improvements are
// re-checked under a mutex before the schedule is recorded and the
// on_incumbent stream fires, keeping emissions monotone.
//
// Determinism contract: for a given instance and budget large enough to
// finish the search, the returned makespan and proven_optimal are identical
// for every thread count (the optimum is unique and completion is
// completion). Node counts and which optimal schedule wins a tie may vary
// with scheduling.
#pragma once

#include "sched/exact.h"

namespace bagsched::sched {

struct ExactParallelOptions {
  /// Budgets, check interval, cancellation and incumbent streaming shared
  /// with the sequential engine. check_interval doubles as the per-worker
  /// flush interval for the shared node counter.
  ExactOptions base;
  /// Worker threads; 0 = hardware concurrency.
  int num_threads = 0;
  /// Frontier expansion stops once at least num_threads * frames_per_thread
  /// stealable frames exist (more frames = finer-grained stealing).
  int frames_per_thread = 32;
};

/// Solves to optimality when the budget allows; otherwise returns the best
/// schedule found with proven_optimal == false.
ExactResult solve_exact_parallel(const model::Instance& instance,
                                 const ExactParallelOptions& options = {});

}  // namespace bagsched::sched
