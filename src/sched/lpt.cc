#include "sched/lpt.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace bagsched::sched {

using model::Instance;
using model::JobId;
using model::Schedule;

Schedule lpt(const Instance& instance) {
  std::vector<JobId> order(static_cast<std::size_t>(instance.num_jobs()));
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    order[static_cast<std::size_t>(j)] = j;
  }
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (instance.job(a).size != instance.job(b).size) {
      return instance.job(a).size > instance.job(b).size;
    }
    return a < b;  // deterministic tie-break
  });

  // Min-heap of (load, machine).
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int machine = 0; machine < instance.num_machines(); ++machine) {
    heap.push({0.0, machine});
  }

  Schedule schedule(instance.num_jobs(), instance.num_machines());
  for (JobId job : order) {
    auto [load, machine] = heap.top();
    heap.pop();
    schedule.assign(job, machine);
    heap.push({load + instance.job(job).size, machine});
  }
  return schedule;
}

}  // namespace bagsched::sched
