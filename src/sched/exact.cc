#include "sched/exact.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "model/lower_bounds.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "util/bitset64.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace bagsched::sched {

using model::BagId;
using model::Instance;
using model::JobId;
using model::Schedule;

namespace {

class Solver {
 public:
  Solver(const Instance& instance, const ExactOptions& options)
      : instance_(instance), options_(options),
        check_mask_(check_interval_mask(options.check_interval)),
        loads_(static_cast<std::size_t>(instance.num_machines()), 0.0),
        occupancy_(instance.num_machines(),
                   std::max(instance.num_bags(), 1)),
        assignment_(static_cast<std::size_t>(instance.num_jobs()),
                    model::kUnassigned) {
    // LPT order maximizes pruning power near the root.
    order_.resize(static_cast<std::size_t>(instance.num_jobs()));
    for (JobId j = 0; j < instance.num_jobs(); ++j) {
      order_[static_cast<std::size_t>(j)] = j;
    }
    std::sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      if (instance.job(a).size != instance.job(b).size) {
        return instance.job(a).size > instance.job(b).size;
      }
      return a < b;
    });
    // The loads always sum to the assigned prefix area, so the area lower
    // bound (assigned + remaining) / m is the same constant at every node.
    double total_area = 0.0;
    for (const JobId j : order_) total_area += instance.job(j).size;
    area_bound_ = total_area / instance.num_machines();
  }

  ExactResult run() {
    // Incumbent: local search (always feasible, usually near-optimal).
    LocalSearchOptions start_options;
    start_options.max_moves = 20000;
    Schedule start = local_search(instance_, start_options);
    best_schedule_ = start;
    best_makespan_ = start.makespan(instance_);
    lower_bound_ = model::combined_lower_bound(instance_);
    if (options_.on_incumbent) options_.on_incumbent(best_makespan_);

    dfs(0, 0, 0.0);

    ExactResult result;
    result.schedule = best_schedule_;
    result.makespan = best_makespan_;
    result.nodes = nodes_;
    result.proven_optimal = !aborted_;
    result.cancelled = cancelled_;
    return result;
  }

 private:
  void dfs(std::size_t depth, int used_machines, double current_max) {
    if (aborted_) return;
    if (++nodes_ > options_.max_nodes) {
      aborted_ = true;
      return;
    }
    if ((nodes_ & check_mask_) == 0) {
      // Injected stall at the cancellation-poll cadence: models a solver
      // that slows to a crawl, so budget/watchdog escalation is exercised
      // without a hang. The sleep sits before the token check, so a stop
      // requested mid-stall is not noticed for up to a full period —
      // exactly the unresponsiveness the stuck-solver watchdog exists for.
      if (BAGSCHED_FAULT("solver.stall.exact")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
      if (timer_.seconds() > options_.time_limit_seconds) {
        aborted_ = true;
        return;
      }
      if (util::stop_requested(options_.cancel)) {
        aborted_ = true;
        cancelled_ = true;
        return;
      }
    }
    if (depth == order_.size()) {
      if (current_max < best_makespan_ - 1e-12) {
        best_makespan_ = current_max;
        for (JobId j = 0; j < instance_.num_jobs(); ++j) {
          best_schedule_.assign(
              j, assignment_[static_cast<std::size_t>(j)]);
        }
        if (options_.on_incumbent) options_.on_incumbent(best_makespan_);
      }
      return;
    }
    if (std::max(current_max, area_bound_) >= best_makespan_ - 1e-12) {
      return;
    }
    if (best_makespan_ <= lower_bound_ + 1e-12) {
      return;  // incumbent already optimal
    }

    const JobId job = order_[depth];
    const BagId bag = instance_.job(job).bag;
    const double size = instance_.job(job).size;

    // Symmetry breaking: identical empty machines are interchangeable, so
    // try at most one fresh machine.
    const int machine_limit =
        std::min(instance_.num_machines(), used_machines + 1);
    for (int machine = 0; machine < machine_limit; ++machine) {
      if (occupancy_.test(machine, bag)) continue;
      const double load = loads_[static_cast<std::size_t>(machine)];
      if (load + size >= best_makespan_ - 1e-12) continue;
      // Dominance: a machine with the same load and the same bag mask as a
      // lower-indexed one reaches a machine-permutation of an already
      // explored state.
      bool dominated = false;
      for (int prev = 0; prev < machine; ++prev) {
        if (loads_[static_cast<std::size_t>(prev)] == load &&
            occupancy_.rows_equal(prev, machine)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      loads_[static_cast<std::size_t>(machine)] = load + size;
      occupancy_.set(machine, bag);
      assignment_[static_cast<std::size_t>(job)] = machine;
      dfs(depth + 1, std::max(used_machines, machine + 1),
          std::max(current_max, load + size));
      assignment_[static_cast<std::size_t>(job)] = model::kUnassigned;
      occupancy_.reset(machine, bag);
      loads_[static_cast<std::size_t>(machine)] = load;
      if (aborted_) return;
    }
  }

  const Instance& instance_;
  ExactOptions options_;
  long long check_mask_;
  util::Stopwatch timer_;
  std::vector<double> loads_;
  util::BitMatrix64 occupancy_;
  std::vector<model::MachineId> assignment_;
  std::vector<JobId> order_;
  double area_bound_ = 0.0;
  Schedule best_schedule_;
  double best_makespan_ = 0.0;
  double lower_bound_ = 0.0;
  long long nodes_ = 0;
  bool aborted_ = false;
  bool cancelled_ = false;
};

}  // namespace

ExactResult solve_exact(const Instance& instance,
                        const ExactOptions& options) {
  Solver solver(instance, options);
  return solver.run();
}

}  // namespace bagsched::sched
