#include "sched/exact.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "model/lower_bounds.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "util/stopwatch.h"

namespace bagsched::sched {

using model::BagId;
using model::Instance;
using model::JobId;
using model::Schedule;

namespace {

class Solver {
 public:
  Solver(const Instance& instance, const ExactOptions& options)
      : instance_(instance), options_(options),
        loads_(static_cast<std::size_t>(instance.num_machines()), 0.0),
        occupancy_(static_cast<std::size_t>(instance.num_machines()),
                   std::vector<bool>(
                       static_cast<std::size_t>(
                           std::max(instance.num_bags(), 1)),
                       false)),
        assignment_(static_cast<std::size_t>(instance.num_jobs()),
                    model::kUnassigned) {
    // LPT order maximizes pruning power near the root.
    order_.resize(static_cast<std::size_t>(instance.num_jobs()));
    for (JobId j = 0; j < instance.num_jobs(); ++j) {
      order_[static_cast<std::size_t>(j)] = j;
    }
    std::sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      if (instance.job(a).size != instance.job(b).size) {
        return instance.job(a).size > instance.job(b).size;
      }
      return a < b;
    });
    // Suffix areas for the area lower bound at every depth.
    suffix_area_.assign(order_.size() + 1, 0.0);
    for (std::size_t i = order_.size(); i-- > 0;) {
      suffix_area_[i] =
          suffix_area_[i + 1] + instance.job(order_[i]).size;
    }
  }

  ExactResult run() {
    // Incumbent: local search (always feasible, usually near-optimal).
    Schedule start = local_search(instance_, LocalSearchOptions{20000});
    best_schedule_ = start;
    best_makespan_ = start.makespan(instance_);
    lower_bound_ = model::combined_lower_bound(instance_);
    if (options_.on_incumbent) options_.on_incumbent(best_makespan_);

    dfs(0, 0);

    ExactResult result;
    result.schedule = best_schedule_;
    result.makespan = best_makespan_;
    result.nodes = nodes_;
    result.proven_optimal = !aborted_;
    result.cancelled = cancelled_;
    return result;
  }

 private:
  void dfs(std::size_t depth, int used_machines) {
    if (aborted_) return;
    if (++nodes_ > options_.max_nodes ||
        (nodes_ % 16384 == 0 &&
         timer_.seconds() > options_.time_limit_seconds)) {
      aborted_ = true;
      return;
    }
    if (nodes_ % 1024 == 0 && util::stop_requested(options_.cancel)) {
      aborted_ = true;
      cancelled_ = true;
      return;
    }
    if (depth == order_.size()) {
      double makespan = 0.0;
      for (double l : loads_) makespan = std::max(makespan, l);
      if (makespan < best_makespan_ - 1e-12) {
        best_makespan_ = makespan;
        for (JobId j = 0; j < instance_.num_jobs(); ++j) {
          best_schedule_.assign(
              j, assignment_[static_cast<std::size_t>(j)]);
        }
        if (options_.on_incumbent) options_.on_incumbent(best_makespan_);
      }
      return;
    }
    // Area bound over remaining jobs.
    double current_max = 0.0;
    double total_load = 0.0;
    for (double l : loads_) {
      current_max = std::max(current_max, l);
      total_load += l;
    }
    const double area_bound =
        (total_load + suffix_area_[depth]) / instance_.num_machines();
    if (std::max(current_max, area_bound) >= best_makespan_ - 1e-12) {
      return;
    }
    if (best_makespan_ <= lower_bound_ + 1e-12) {
      return;  // incumbent already optimal
    }

    const JobId job = order_[depth];
    const BagId bag = instance_.job(job).bag;
    const double size = instance_.job(job).size;

    // Symmetry breaking: identical empty machines are interchangeable, so
    // try at most one fresh machine.
    const int machine_limit =
        std::min(instance_.num_machines(), used_machines + 1);
    for (int machine = 0; machine < machine_limit; ++machine) {
      if (occupancy_[static_cast<std::size_t>(machine)]
                    [static_cast<std::size_t>(bag)]) {
        continue;
      }
      if (loads_[static_cast<std::size_t>(machine)] + size >=
          best_makespan_ - 1e-12) {
        continue;
      }
      loads_[static_cast<std::size_t>(machine)] += size;
      occupancy_[static_cast<std::size_t>(machine)]
                [static_cast<std::size_t>(bag)] = true;
      assignment_[static_cast<std::size_t>(job)] = machine;
      dfs(depth + 1, std::max(used_machines, machine + 1));
      assignment_[static_cast<std::size_t>(job)] = model::kUnassigned;
      occupancy_[static_cast<std::size_t>(machine)]
                [static_cast<std::size_t>(bag)] = false;
      loads_[static_cast<std::size_t>(machine)] -= size;
      if (aborted_) return;
    }
  }

  const Instance& instance_;
  ExactOptions options_;
  util::Stopwatch timer_;
  std::vector<double> loads_;
  std::vector<std::vector<bool>> occupancy_;
  std::vector<model::MachineId> assignment_;
  std::vector<JobId> order_;
  std::vector<double> suffix_area_;
  Schedule best_schedule_;
  double best_makespan_ = 0.0;
  double lower_bound_ = 0.0;
  long long nodes_ = 0;
  bool aborted_ = false;
  bool cancelled_ = false;
};

}  // namespace

ExactResult solve_exact(const Instance& instance,
                        const ExactOptions& options) {
  Solver solver(instance, options);
  return solver.run();
}

}  // namespace bagsched::sched
