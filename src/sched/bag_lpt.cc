#include "sched/bag_lpt.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "model/schedule.h"

namespace bagsched::sched {

using model::Instance;
using model::JobId;
using model::Schedule;

std::vector<std::vector<int>> bag_lpt_assign(
    const Instance& instance, const std::vector<LptBag>& bags,
    std::vector<double> initial_loads) {
  const std::size_t num_machines = initial_loads.size();
  std::vector<std::vector<int>> result(bags.size());

  for (std::size_t b = 0; b < bags.size(); ++b) {
    const LptBag& bag = bags[b];
    if (bag.jobs.size() > num_machines) {
      throw std::invalid_argument("bag_lpt_assign: bag larger than machines");
    }
    // Jobs descending by size (dummy padding is implicit: machines beyond
    // |bag| simply receive nothing, which equals a height-0 dummy job).
    std::vector<JobId> jobs = bag.jobs;
    std::sort(jobs.begin(), jobs.end(), [&](JobId x, JobId y) {
      if (instance.job(x).size != instance.job(y).size) {
        return instance.job(x).size > instance.job(y).size;
      }
      return x < y;
    });
    // Machines ascending by load.
    std::vector<int> machine_order(num_machines);
    std::iota(machine_order.begin(), machine_order.end(), 0);
    std::sort(machine_order.begin(), machine_order.end(), [&](int x, int y) {
      if (initial_loads[static_cast<std::size_t>(x)] !=
          initial_loads[static_cast<std::size_t>(y)]) {
        return initial_loads[static_cast<std::size_t>(x)] <
               initial_loads[static_cast<std::size_t>(y)];
      }
      return x < y;
    });

    result[b].resize(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const int machine = machine_order[j];
      result[b][j] = machine;
      initial_loads[static_cast<std::size_t>(machine)] +=
          instance.job(jobs[j]).size;
    }
    // Report assignments in the caller's job order.
    std::vector<int> reordered(bag.jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const auto pos = std::find(bag.jobs.begin(), bag.jobs.end(), jobs[j]) -
                       bag.jobs.begin();
      reordered[static_cast<std::size_t>(pos)] = result[b][j];
    }
    result[b] = std::move(reordered);
  }
  return result;
}

Schedule bag_lpt(const Instance& instance) {
  if (!instance.is_feasible()) {
    throw std::invalid_argument("bag_lpt: a bag exceeds the machine count");
  }
  std::vector<LptBag> bags;
  bags.reserve(static_cast<std::size_t>(instance.num_bags()));
  for (model::BagId l = 0; l < instance.num_bags(); ++l) {
    if (!instance.bag(l).empty()) bags.push_back(LptBag{instance.bag(l)});
  }
  // Process heavier bags first: the paper assumes equal starting heights,
  // and front-loading large bags keeps groups balanced in practice.
  std::sort(bags.begin(), bags.end(), [&](const LptBag& a, const LptBag& b) {
    auto area = [&](const LptBag& bag) {
      double total = 0;
      for (JobId j : bag.jobs) total += instance.job(j).size;
      return total;
    };
    return area(a) > area(b);
  });

  std::vector<double> loads(static_cast<std::size_t>(instance.num_machines()),
                            0.0);
  const auto assignment = bag_lpt_assign(instance, bags, loads);

  Schedule schedule(instance.num_jobs(), instance.num_machines());
  for (std::size_t b = 0; b < bags.size(); ++b) {
    for (std::size_t j = 0; j < bags[b].jobs.size(); ++j) {
      schedule.assign(bags[b].jobs[j], assignment[b][j]);
    }
  }
  return schedule;
}

}  // namespace bagsched::sched
