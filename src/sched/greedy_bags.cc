#include "sched/greedy_bags.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace bagsched::sched {

using model::BagId;
using model::Instance;
using model::JobId;
using model::Schedule;

namespace {

/// Tracks which (machine, bag) pairs are occupied.
class Occupancy {
 public:
  Occupancy(int machines, int bags)
      : bags_(bags),
        occupied_(static_cast<std::size_t>(machines) *
                      static_cast<std::size_t>(std::max(bags, 1)),
                  false) {}

  bool taken(int machine, BagId bag) const {
    return occupied_[index(machine, bag)];
  }
  void take(int machine, BagId bag) { occupied_[index(machine, bag)] = true; }

 private:
  std::size_t index(int machine, BagId bag) const {
    return static_cast<std::size_t>(machine) *
               static_cast<std::size_t>(std::max(bags_, 1)) +
           static_cast<std::size_t>(bag);
  }
  int bags_;
  std::vector<bool> occupied_;
};

std::vector<JobId> lpt_order(const Instance& instance) {
  std::vector<JobId> order(static_cast<std::size_t>(instance.num_jobs()));
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    order[static_cast<std::size_t>(j)] = j;
  }
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (instance.job(a).size != instance.job(b).size) {
      return instance.job(a).size > instance.job(b).size;
    }
    return a < b;
  });
  return order;
}

}  // namespace

Schedule greedy_bags(const Instance& instance) {
  if (!instance.is_feasible()) {
    throw std::invalid_argument("greedy_bags: a bag exceeds machine count");
  }
  Schedule schedule(instance.num_jobs(), instance.num_machines());
  Occupancy occupancy(instance.num_machines(), instance.num_bags());
  std::vector<double> loads(
      static_cast<std::size_t>(instance.num_machines()), 0.0);

  for (JobId job : lpt_order(instance)) {
    const BagId bag = instance.job(job).bag;
    int best = -1;
    double best_load = std::numeric_limits<double>::infinity();
    for (int machine = 0; machine < instance.num_machines(); ++machine) {
      if (occupancy.taken(machine, bag)) continue;
      if (loads[static_cast<std::size_t>(machine)] < best_load) {
        best_load = loads[static_cast<std::size_t>(machine)];
        best = machine;
      }
    }
    if (best < 0) {
      throw std::logic_error("greedy_bags: no feasible machine (impossible "
                             "for feasible instances)");
    }
    schedule.assign(job, best);
    occupancy.take(best, bag);
    loads[static_cast<std::size_t>(best)] += instance.job(job).size;
  }
  return schedule;
}

Schedule greedy_stack_large_first(const Instance& instance,
                                  double large_threshold) {
  if (!instance.is_feasible()) {
    throw std::invalid_argument("greedy_stack_large_first: infeasible");
  }
  Schedule schedule(instance.num_jobs(), instance.num_machines());
  Occupancy occupancy(instance.num_machines(), instance.num_bags());
  std::vector<double> loads(
      static_cast<std::size_t>(instance.num_machines()), 0.0);

  // Phase 1: first-fit the large jobs two-per-machine onto as few machines
  // as possible — locally clever ("use fewest machines for the big stuff"),
  // globally the Figure-1 trap.
  std::vector<int> large_count(
      static_cast<std::size_t>(instance.num_machines()), 0);
  for (JobId job : lpt_order(instance)) {
    if (instance.job(job).size < large_threshold) continue;
    const BagId bag = instance.job(job).bag;
    int target = -1;
    for (int machine = 0; machine < instance.num_machines(); ++machine) {
      if (occupancy.taken(machine, bag)) continue;
      if (large_count[static_cast<std::size_t>(machine)] < 2) {
        target = machine;
        break;  // first fit
      }
    }
    if (target < 0) {
      // Fall back to least-loaded feasible machine.
      double best_load = std::numeric_limits<double>::infinity();
      for (int machine = 0; machine < instance.num_machines(); ++machine) {
        if (occupancy.taken(machine, bag)) continue;
        if (loads[static_cast<std::size_t>(machine)] < best_load) {
          best_load = loads[static_cast<std::size_t>(machine)];
          target = machine;
        }
      }
    }
    schedule.assign(job, target);
    occupancy.take(target, instance.job(job).bag);
    loads[static_cast<std::size_t>(target)] += instance.job(job).size;
    ++large_count[static_cast<std::size_t>(target)];
  }

  // Phase 2: remaining jobs greedily to the least-loaded feasible machine.
  for (JobId job : lpt_order(instance)) {
    if (schedule.is_assigned(job)) continue;
    const BagId bag = instance.job(job).bag;
    int best = -1;
    double best_load = std::numeric_limits<double>::infinity();
    for (int machine = 0; machine < instance.num_machines(); ++machine) {
      if (occupancy.taken(machine, bag)) continue;
      if (loads[static_cast<std::size_t>(machine)] < best_load) {
        best_load = loads[static_cast<std::size_t>(machine)];
        best = machine;
      }
    }
    schedule.assign(job, best);
    occupancy.take(best, bag);
    loads[static_cast<std::size_t>(best)] += instance.job(job).size;
  }
  return schedule;
}

}  // namespace bagsched::sched
