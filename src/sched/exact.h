// Exact branch-and-bound solver for small instances.
//
// Provides the ground-truth OPT against which approximation ratios are
// measured (DESIGN.md experiment E1/E9). Depth-first search over job ->
// machine assignments in LPT order, with machine-symmetry breaking, bag
// pruning, area lower bounds, and a greedy incumbent.
#pragma once

#include <functional>
#include <optional>

#include "model/instance.h"
#include "model/schedule.h"
#include "util/cancellation.h"

namespace bagsched::sched {

struct ExactOptions {
  long long max_nodes = 50'000'000;
  double time_limit_seconds = 30.0;
  /// Nodes between time-limit / cancellation checks (rounded down to a
  /// power of two and used as a bit mask, so the per-node cost is one AND).
  /// The parallel engine also uses it as the per-worker flush interval for
  /// the shared node counter.
  long long check_interval = 8192;
  /// Cooperative cancellation, polled alongside the time-limit check.
  const util::CancellationToken* cancel = nullptr;
  /// Invoked with the incumbent makespan: once for the initial local-search
  /// incumbent and again every time the search improves on it. Runs on the
  /// solving thread inside the search loop — keep it cheap.
  std::function<void(double makespan)> on_incumbent;
};

struct ExactResult {
  model::Schedule schedule;
  double makespan = 0.0;
  bool proven_optimal = false;
  long long nodes = 0;
  bool cancelled = false;  ///< search stopped by the cancellation token
};

/// Solves to optimality when the budget allows; otherwise returns the best
/// schedule found with proven_optimal == false.
ExactResult solve_exact(const model::Instance& instance,
                        const ExactOptions& options = {});

/// ExactOptions::check_interval rounded down to a power of two, as the
/// corresponding AND-mask over the node counter (interval <= 1 means a
/// check at every node). Shared by the sequential and parallel engines so
/// the knob means the same thing in both.
inline long long check_interval_mask(long long interval) {
  long long mask = 1;
  while (mask * 2 <= (interval > 1 ? interval : 1)) mask *= 2;
  return mask - 1;
}

}  // namespace bagsched::sched
