// MULTIFIT (Coffman, Garey & Johnson 1978), extended to bag-constraints.
//
// MULTIFIT binary-searches a capacity C and first-fit-decreasing-packs the
// jobs into m bins of that capacity; the bag-aware variant additionally
// refuses a bin that already holds a job of the same bag. The classical
// 13/11 bound does not carry over verbatim with bags, so this is offered as
// a baseline, not a guarantee — benches measure where it lands.
#pragma once

#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::sched {

struct MultifitOptions {
  int iterations = 24;  ///< binary-search refinements on the capacity
};

model::Schedule multifit(const model::Instance& instance,
                         const MultifitOptions& options = {});

}  // namespace bagsched::sched
