#include "sched/local_search.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/greedy_bags.h"
#include "util/fault.h"
#include "util/prng.h"

namespace bagsched::sched {

using model::BagId;
using model::Instance;
using model::JobId;
using model::Schedule;

namespace {

/// (makespan, #critical machines) with tolerance-aware comparison.
struct Score {
  double makespan;
  int critical;

  bool better_than(const Score& other) const {
    constexpr double tol = 1e-12;
    if (makespan < other.makespan - tol) return true;
    if (makespan > other.makespan + tol) return false;
    return critical < other.critical;
  }
};

Score score_of(const std::vector<double>& loads) {
  double makespan = 0.0;
  for (double l : loads) makespan = std::max(makespan, l);
  int critical = 0;
  for (double l : loads) {
    if (l >= makespan - 1e-12) ++critical;
  }
  return {makespan, critical};
}

/// score_of of `loads` with entries a/b replaced by va/vb — bit-identical
/// to copying the vector and rescoring, without the allocation.
Score score_with(const std::vector<double>& loads, int a, double va,
                 int b, double vb) {
  const std::size_t ia = static_cast<std::size_t>(a);
  const std::size_t ib = static_cast<std::size_t>(b);
  double makespan = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double l = i == ia ? va : (i == ib ? vb : loads[i]);
    makespan = std::max(makespan, l);
  }
  int critical = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double l = i == ia ? va : (i == ib ? vb : loads[i]);
    if (l >= makespan - 1e-12) ++critical;
  }
  return {makespan, critical};
}

/// Cheap decisive rejection of a two-entry move before the full rescan:
/// (a) a new entry above the current makespan can never win; (b) when the
/// single critical machine stays at (or returns to) the makespan, the
/// critical count cannot drop below 1. Returns true when the move is
/// provably not better; false means "evaluate exactly".
bool provably_not_better(const std::vector<double>& loads,
                         const Score& current, int a, double va, int b,
                         double vb) {
  const double peak = std::max(va, vb);
  if (peak > current.makespan + 1e-12) return true;
  if (current.critical == 1 && peak >= current.makespan - 1e-12) {
    const bool a_was_critical =
        loads[static_cast<std::size_t>(a)] >= current.makespan - 1e-12;
    const bool b_was_critical =
        loads[static_cast<std::size_t>(b)] >= current.makespan - 1e-12;
    // No third machine sits at the makespan, so the new score's critical
    // count is at least the one machine still at `peak` — never < 1.
    if (a_was_critical || b_was_critical) return true;
  }
  return false;
}

}  // namespace

LocalSearchResult improve(const Instance& instance, Schedule& schedule,
                          const LocalSearchOptions& options) {
  const int m = instance.num_machines();
  std::vector<double> loads = schedule.loads(instance);
  // occupancy[machine][bag]
  std::vector<std::vector<int>> occupancy(
      static_cast<std::size_t>(m),
      std::vector<int>(static_cast<std::size_t>(instance.num_bags()), 0));
  for (const auto& job : instance.jobs()) {
    const auto machine = schedule.machine_of(job.id);
    if (machine != model::kUnassigned) {
      ++occupancy[static_cast<std::size_t>(machine)]
                 [static_cast<std::size_t>(job.bag)];
    }
  }

  // Scan order: job-id order by default (legacy behaviour); a non-zero
  // seed shuffles it deterministically so different seeds explore different
  // local optima while the same seed reproduces bit-identically.
  std::vector<JobId> scan_order(
      static_cast<std::size_t>(instance.num_jobs()));
  std::iota(scan_order.begin(), scan_order.end(), JobId{0});
  if (options.seed != 0) {
    util::Xoshiro256 rng(options.seed);
    rng.shuffle(scan_order);
  }

  LocalSearchResult out;
  long long& accepted = out.accepted_moves;
  double best_makespan = score_of(loads).makespan;
  // Fires on_incumbent only for genuine makespan improvements; plateau
  // moves (same makespan, fewer critical machines) stay silent.
  const auto report = [&](const Score& current) {
    if (current.makespan < best_makespan - 1e-12) {
      best_makespan = current.makespan;
      if (options.on_incumbent) options.on_incumbent(best_makespan);
    }
  };
  bool improved = true;
  while (improved && accepted < options.max_moves) {
    // `cancelled` is set only when the stop arrives before convergence was
    // verified — a token firing after the descent already converged leaves
    // it false, so portfolio cancellation counts stay exact.
    if (util::stop_requested(options.cancel)) {
      out.cancelled = true;
      break;
    }
    // Injected stall on the descent loop (see solver.stall.exact): the
    // sleep lands after this iteration's token check, delaying the next
    // poll by a full period.
    if (BAGSCHED_FAULT("solver.stall.local_search")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    improved = false;
    Score current = score_of(loads);

    // Only moves involving a critical machine can improve the score, so we
    // scan jobs on critical machines first; swaps consider all partners.
    for (const JobId job_id : scan_order) {
      if (util::stop_requested(options.cancel)) {
        out.cancelled = true;
        break;
      }
      const auto& job = instance.job(job_id);
      const int from = schedule.machine_of(job.id);
      if (loads[static_cast<std::size_t>(from)] <
          current.makespan - 1e-12) {
        continue;  // not on a critical machine
      }
      const BagId bag = job.bag;

      // Relocate.
      for (int to = 0; to < m && accepted < options.max_moves; ++to) {
        if (to == from ||
            occupancy[static_cast<std::size_t>(to)]
                     [static_cast<std::size_t>(bag)] > 0) {
          continue;
        }
        // Two-entry delta evaluation: no loads copy per candidate.
        const double new_from = loads[static_cast<std::size_t>(from)] -
                                job.size;
        const double new_to = loads[static_cast<std::size_t>(to)] +
                              job.size;
        if (provably_not_better(loads, current, from, new_from, to,
                                new_to)) {
          continue;
        }
        if (score_with(loads, from, new_from, to, new_to)
                .better_than(current)) {
          loads[static_cast<std::size_t>(from)] = new_from;
          loads[static_cast<std::size_t>(to)] = new_to;
          --occupancy[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(bag)];
          ++occupancy[static_cast<std::size_t>(to)]
                     [static_cast<std::size_t>(bag)];
          schedule.assign(job.id, to);
          ++accepted;
          improved = true;
          current = score_of(loads);
          report(current);
          break;
        }
      }
      if (improved) break;  // rescan from the new critical set

      // Swap with a job on another machine.
      for (const auto& other : instance.jobs()) {
        if (accepted >= options.max_moves) break;
        const int to = schedule.machine_of(other.id);
        if (to == from) continue;
        // Feasibility after swap: `job` joins `to`, `other` joins `from`.
        const BagId other_bag = other.bag;
        const int blocking_to =
            occupancy[static_cast<std::size_t>(to)]
                     [static_cast<std::size_t>(bag)] -
            (other_bag == bag ? 1 : 0);
        const int blocking_from =
            occupancy[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(other_bag)] -
            (other_bag == bag ? 1 : 0);
        if (bag != other_bag && (blocking_to > 0 || blocking_from > 0)) {
          continue;
        }
        if (bag == other_bag &&
            (occupancy[static_cast<std::size_t>(to)]
                      [static_cast<std::size_t>(bag)] > 1 ||
             occupancy[static_cast<std::size_t>(from)]
                      [static_cast<std::size_t>(bag)] > 1)) {
          continue;
        }
        // Two-entry delta evaluation: no loads copy per candidate.
        const double new_from = loads[static_cast<std::size_t>(from)] +
                                other.size - job.size;
        const double new_to = loads[static_cast<std::size_t>(to)] +
                              job.size - other.size;
        if (provably_not_better(loads, current, from, new_from, to,
                                new_to)) {
          continue;
        }
        if (score_with(loads, from, new_from, to, new_to)
                .better_than(current)) {
          loads[static_cast<std::size_t>(from)] = new_from;
          loads[static_cast<std::size_t>(to)] = new_to;
          --occupancy[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(bag)];
          ++occupancy[static_cast<std::size_t>(to)]
                     [static_cast<std::size_t>(bag)];
          --occupancy[static_cast<std::size_t>(to)]
                     [static_cast<std::size_t>(other_bag)];
          ++occupancy[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(other_bag)];
          schedule.swap_jobs(job.id, other.id);
          ++accepted;
          improved = true;
          current = score_of(loads);
          report(current);
          break;
        }
      }
      if (improved) break;
    }
    if (out.cancelled) break;
  }
  return out;
}

Schedule local_search(const Instance& instance,
                      const LocalSearchOptions& options) {
  Schedule schedule = greedy_bags(instance);
  improve(instance, schedule, options);
  return schedule;
}

}  // namespace bagsched::sched
