// Greedy list scheduling respecting the bag-constraints.
//
// Jobs in LPT order; each goes to the least-loaded machine that holds no job
// of its bag yet. Always produces a feasible schedule when one exists
// (|B_l| <= m blocks at most m-1 machines). This is the work-horse upper
// bound for the EPTAS binary search and the "naive practitioner" baseline.
#pragma once

#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::sched {

model::Schedule greedy_bags(const model::Instance& instance);

/// Variant that seeds the greedy pass with large jobs packed first-fit onto
/// the fewest machines (the pathological placement of the paper's Figure 1).
/// Used by bench_fig1 to demonstrate why large-job placement must be global.
model::Schedule greedy_stack_large_first(const model::Instance& instance,
                                         double large_threshold);

}  // namespace bagsched::sched
