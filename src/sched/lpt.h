// Classical Longest-Processing-Time list scheduling (Graham 1969).
//
// Ignores the bag-constraints; used as the unconstrained reference point so
// benches can report the *price* of the constraints (feasible algorithms can
// never beat it).
#pragma once

#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::sched {

/// LPT ignoring bags: sort jobs by size descending, each to the least-loaded
/// machine. The result is generally NOT bag-feasible.
model::Schedule lpt(const model::Instance& instance);

}  // namespace bagsched::sched
