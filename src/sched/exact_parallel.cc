#include "sched/exact_parallel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "model/lower_bounds.h"
#include "sched/local_search.h"
#include "util/bitset64.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bagsched::sched {

using model::BagId;
using model::Instance;
using model::JobId;
using model::MachineId;
using model::Schedule;

namespace {

/// A stealable subtree: the full search state after assigning the first
/// `depth` jobs in LPT order.
struct Frame {
  std::vector<MachineId> prefix;  ///< machine per order_[0..depth)
  std::vector<double> loads;
  util::BitMatrix64 occupancy;
  int used_machines = 0;
  double current_max = 0.0;
};

/// State shared by the expander and every worker.
struct SharedState {
  std::atomic<double> best{0.0};
  std::atomic<long long> nodes{0};
  std::atomic<bool> aborted{false};
  std::atomic<bool> cancelled{false};
  std::atomic<std::size_t> next_frame{0};

  std::mutex mutex;  ///< guards best_locked / best_schedule / emission
  double best_locked = 0.0;
  Schedule best_schedule;
};

class ParallelSolver {
 public:
  ParallelSolver(const Instance& instance,
                 const ExactParallelOptions& options)
      : instance_(instance), options_(options),
        check_mask_(check_interval_mask(options.base.check_interval)) {
    order_.resize(static_cast<std::size_t>(instance.num_jobs()));
    for (JobId j = 0; j < instance.num_jobs(); ++j) {
      order_[static_cast<std::size_t>(j)] = j;
    }
    std::sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      if (instance.job(a).size != instance.job(b).size) {
        return instance.job(a).size > instance.job(b).size;
      }
      return a < b;
    });
    double total_area = 0.0;
    for (const JobId j : order_) total_area += instance.job(j).size;
    area_bound_ = total_area / instance.num_machines();
  }

  ExactResult run() {
    // The same deterministic incumbent as the sequential engine, so results
    // at every thread count start from one schedule.
    LocalSearchOptions start_options;
    start_options.max_moves = 20000;
    Schedule start = local_search(instance_, start_options);
    shared_.best_schedule = start;
    shared_.best_locked = start.makespan(instance_);
    shared_.best.store(shared_.best_locked, std::memory_order_relaxed);
    lower_bound_ = model::combined_lower_bound(instance_);
    if (options_.base.on_incumbent) {
      options_.base.on_incumbent(shared_.best_locked);
    }

    int threads = options_.num_threads;
    if (threads <= 0) {
      threads = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
    }

    std::vector<Frame> frames;
    const bool incumbent_is_optimal =
        shared_.best_locked <= lower_bound_ + 1e-12;
    if (!incumbent_is_optimal) {
      frames = expand_frontier(static_cast<std::size_t>(
          std::max(threads, 1) * std::max(options_.frames_per_thread, 1)));
    }

    if (!frames.empty() && !shared_.aborted.load()) {
      util::ThreadPool pool(static_cast<std::size_t>(threads));
      std::vector<std::future<void>> done;
      done.reserve(static_cast<std::size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        done.push_back(pool.submit([this, &frames] { worker(frames); }));
      }
      for (auto& f : done) f.get();
    }

    ExactResult result;
    result.schedule = shared_.best_schedule;
    result.makespan = shared_.best_locked;
    result.nodes = shared_.nodes.load(std::memory_order_relaxed);
    result.proven_optimal = !shared_.aborted.load();
    result.cancelled = shared_.cancelled.load();
    return result;
  }

 private:
  /// Expands the top of the tree breadth-first, complete level by complete
  /// level, until at least `target` frames exist (or the tree is exhausted).
  /// Leaves reached during expansion are evaluated as incumbents.
  std::vector<Frame> expand_frontier(std::size_t target) {
    const int m = instance_.num_machines();
    const int bags = std::max(instance_.num_bags(), 1);
    std::vector<Frame> frontier;
    Frame root;
    root.loads.assign(static_cast<std::size_t>(m), 0.0);
    root.occupancy = util::BitMatrix64(m, bags);
    frontier.push_back(std::move(root));

    long long nodes = 0;
    while (!frontier.empty() && frontier.size() < target &&
           frontier.front().prefix.size() < order_.size()) {
      const std::size_t depth = frontier.front().prefix.size();
      const JobId job = order_[depth];
      const BagId bag = instance_.job(job).bag;
      const double size = instance_.job(job).size;
      std::vector<Frame> next;
      next.reserve(frontier.size() * 2);
      for (Frame& frame : frontier) {
        const double best = shared_.best.load(std::memory_order_relaxed);
        if (std::max(frame.current_max, area_bound_) >= best - 1e-12) {
          continue;
        }
        const int machine_limit = std::min(m, frame.used_machines + 1);
        for (int machine = 0; machine < machine_limit; ++machine) {
          if (frame.occupancy.test(machine, bag)) continue;
          const double load =
              frame.loads[static_cast<std::size_t>(machine)];
          if (load + size >= best - 1e-12) continue;
          bool dominated = false;
          for (int prev = 0; prev < machine; ++prev) {
            if (frame.loads[static_cast<std::size_t>(prev)] == load &&
                frame.occupancy.rows_equal(prev, machine)) {
              dominated = true;
              break;
            }
          }
          if (dominated) continue;
          ++nodes;
          Frame child = frame;
          child.prefix.push_back(static_cast<MachineId>(machine));
          child.loads[static_cast<std::size_t>(machine)] = load + size;
          child.occupancy.set(machine, bag);
          child.used_machines = std::max(frame.used_machines, machine + 1);
          child.current_max = std::max(frame.current_max, load + size);
          if (child.prefix.size() == order_.size()) {
            publish_leaf(child);
          } else {
            next.push_back(std::move(child));
          }
        }
      }
      frontier = std::move(next);
      if (nodes > options_.base.max_nodes) {
        shared_.aborted.store(true);
        break;
      }
    }
    shared_.nodes.fetch_add(nodes, std::memory_order_relaxed);
    return frontier;
  }

  /// CAS publication into the atomic incumbent; true when `makespan` was an
  /// improvement and this thread won the race to record it.
  bool publish(double makespan) {
    double current = shared_.best.load(std::memory_order_relaxed);
    while (makespan < current - 1e-12) {
      if (shared_.best.compare_exchange_weak(current, makespan,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void record_schedule(double makespan,
                       const std::vector<MachineId>& assignment) {
    std::lock_guard<std::mutex> lock(shared_.mutex);
    if (makespan >= shared_.best_locked - 1e-12) return;
    shared_.best_locked = makespan;
    for (JobId j = 0; j < instance_.num_jobs(); ++j) {
      shared_.best_schedule.assign(j,
                                   assignment[static_cast<std::size_t>(j)]);
    }
    if (options_.base.on_incumbent) {
      options_.base.on_incumbent(makespan);
    }
  }

  void publish_leaf(const Frame& frame) {
    if (!publish(frame.current_max)) return;
    std::vector<MachineId> assignment(
        static_cast<std::size_t>(instance_.num_jobs()), model::kUnassigned);
    for (std::size_t d = 0; d < frame.prefix.size(); ++d) {
      assignment[static_cast<std::size_t>(order_[d])] = frame.prefix[d];
    }
    record_schedule(frame.current_max, assignment);
  }

  /// Per-worker DFS state, seeded from a frame.
  struct WorkerState {
    std::vector<double> loads;
    util::BitMatrix64 occupancy;
    std::vector<MachineId> assignment;
    long long local_nodes = 0;
  };

  void worker(const std::vector<Frame>& frames) {
    WorkerState state;
    state.assignment.assign(static_cast<std::size_t>(instance_.num_jobs()),
                            model::kUnassigned);
    for (;;) {
      if (shared_.aborted.load(std::memory_order_relaxed)) break;
      const std::size_t index =
          shared_.next_frame.fetch_add(1, std::memory_order_relaxed);
      if (index >= frames.size()) break;
      const Frame& frame = frames[index];
      state.loads = frame.loads;
      state.occupancy = frame.occupancy;
      std::fill(state.assignment.begin(), state.assignment.end(),
                model::kUnassigned);
      for (std::size_t d = 0; d < frame.prefix.size(); ++d) {
        state.assignment[static_cast<std::size_t>(order_[d])] =
            frame.prefix[d];
      }
      dfs(state, frame.prefix.size(), frame.used_machines,
          frame.current_max);
    }
    flush_nodes(state);
  }

  void flush_nodes(WorkerState& state) {
    if (state.local_nodes == 0) return;
    shared_.nodes.fetch_add(state.local_nodes, std::memory_order_relaxed);
    state.local_nodes = 0;
  }

  void dfs(WorkerState& state, std::size_t depth, int used_machines,
           double current_max) {
    if (shared_.aborted.load(std::memory_order_relaxed)) return;
    if ((++state.local_nodes & check_mask_) == 0) {
      const long long total =
          shared_.nodes.fetch_add(state.local_nodes,
                                  std::memory_order_relaxed) +
          state.local_nodes;
      state.local_nodes = 0;
      if (total > options_.base.max_nodes ||
          timer_.seconds() > options_.base.time_limit_seconds) {
        shared_.aborted.store(true);
        return;
      }
      if (util::stop_requested(options_.base.cancel)) {
        shared_.aborted.store(true);
        shared_.cancelled.store(true);
        return;
      }
    }
    double best = shared_.best.load(std::memory_order_relaxed);
    if (depth == order_.size()) {
      if (publish(current_max)) {
        record_schedule(current_max, state.assignment);
      }
      return;
    }
    if (std::max(current_max, area_bound_) >= best - 1e-12) return;
    if (best <= lower_bound_ + 1e-12) return;  // incumbent already optimal

    const JobId job = order_[depth];
    const BagId bag = instance_.job(job).bag;
    const double size = instance_.job(job).size;

    const int machine_limit =
        std::min(instance_.num_machines(), used_machines + 1);
    for (int machine = 0; machine < machine_limit; ++machine) {
      if (state.occupancy.test(machine, bag)) continue;
      const double load = state.loads[static_cast<std::size_t>(machine)];
      if (load + size >= best - 1e-12) continue;
      bool dominated = false;
      for (int prev = 0; prev < machine; ++prev) {
        if (state.loads[static_cast<std::size_t>(prev)] == load &&
            state.occupancy.rows_equal(prev, machine)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      state.loads[static_cast<std::size_t>(machine)] = load + size;
      state.occupancy.set(machine, bag);
      state.assignment[static_cast<std::size_t>(job)] =
          static_cast<MachineId>(machine);
      dfs(state, depth + 1, std::max(used_machines, machine + 1),
          std::max(current_max, load + size));
      state.assignment[static_cast<std::size_t>(job)] = model::kUnassigned;
      state.occupancy.reset(machine, bag);
      state.loads[static_cast<std::size_t>(machine)] = load;
      if (shared_.aborted.load(std::memory_order_relaxed)) return;
      // The incumbent may have improved while the subtree ran.
      best = shared_.best.load(std::memory_order_relaxed);
    }
  }

  const Instance& instance_;
  ExactParallelOptions options_;
  long long check_mask_;
  util::Stopwatch timer_;
  std::vector<JobId> order_;
  double area_bound_ = 0.0;
  double lower_bound_ = 0.0;
  SharedState shared_;
};

}  // namespace

ExactResult solve_exact_parallel(const Instance& instance,
                                 const ExactParallelOptions& options) {
  ParallelSolver solver(instance, options);
  return solver.run();
}

}  // namespace bagsched::sched
