// Plain-text instance and schedule serialization.
//
// Instance format (line oriented, '#' starts a comment):
//   bagsched 1            # magic + version
//   machines <m>
//   bags <b>
//   jobs <n>
//   <size> <bag>          # one line per job, in job-id order
//
// Schedule format:
//   bagsched-schedule 1
//   machines <m>
//   jobs <n>
//   <machine>             # one line per job, -1 for unassigned
// JSON formats (used by the service layer to move requests and results
// across process boundaries; see README "JSON result schema"):
//   instance: {"machines": m, "bags": b,
//              "jobs": [{"size": s, "bag": l}, ...]}
//   schedule: {"machines": m, "assignment": [m_0, ..., m_{n-1}]}
#pragma once

#include <iosfwd>
#include <string>

#include "model/instance.h"
#include "model/schedule.h"
#include "util/json.h"

namespace bagsched::model {

void write_instance(std::ostream& os, const Instance& instance);
Instance read_instance(std::istream& is);

void save_instance(const std::string& path, const Instance& instance);
Instance load_instance(const std::string& path);

void write_schedule(std::ostream& os, const Schedule& schedule);
Schedule read_schedule(std::istream& is);

util::Json instance_to_json(const Instance& instance);
/// Throws std::runtime_error on missing/ill-typed members; the returned
/// instance is validate()d, so malformed documents fail loudly.
Instance instance_from_json(const util::Json& json);

util::Json schedule_to_json(const Schedule& schedule);
Schedule schedule_from_json(const util::Json& json);

}  // namespace bagsched::model
