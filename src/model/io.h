// Plain-text instance and schedule serialization.
//
// Instance format (line oriented, '#' starts a comment):
//   bagsched 1            # magic + version
//   machines <m>
//   bags <b>
//   jobs <n>
//   <size> <bag>          # one line per job, in job-id order
//
// Schedule format:
//   bagsched-schedule 1
//   machines <m>
//   jobs <n>
//   <machine>             # one line per job, -1 for unassigned
#pragma once

#include <iosfwd>
#include <string>

#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::model {

void write_instance(std::ostream& os, const Instance& instance);
Instance read_instance(std::istream& is);

void save_instance(const std::string& path, const Instance& instance);
Instance load_instance(const std::string& path);

void write_schedule(std::ostream& os, const Schedule& schedule);
Schedule read_schedule(std::istream& is);

}  // namespace bagsched::model
