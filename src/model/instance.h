// Problem instance for machine scheduling with bag-constraints
// (P | bags | C_max): jobs with sizes, a partition of jobs into bags, and a
// number of identical machines. Feasibility requires every bag to have at
// most one job per machine, hence |B_l| <= m for every bag l.
#pragma once

#include <string>
#include <vector>

#include "model/job.h"

namespace bagsched::model {

class Instance {
 public:
  Instance() = default;
  /// Builds an instance; jobs are re-numbered 0..n-1 in the given order.
  Instance(std::vector<Job> jobs, int num_machines, int num_bags);

  /// Convenience factory: job j has size sizes[j] and bag bags[j].
  static Instance from_vectors(const std::vector<double>& sizes,
                               const std::vector<BagId>& bags,
                               int num_machines);

  /// Every job in its own bag — degenerates to classical P||Cmax.
  static Instance without_bags(const std::vector<double>& sizes,
                               int num_machines);

  int num_jobs() const { return static_cast<int>(jobs_.size()); }
  int num_machines() const { return num_machines_; }
  int num_bags() const { return num_bags_; }

  const Job& job(JobId id) const { return jobs_[static_cast<size_t>(id)]; }
  const std::vector<Job>& jobs() const { return jobs_; }

  /// Jobs of bag l (indices into jobs()).
  const std::vector<JobId>& bag(BagId l) const {
    return bag_members_[static_cast<size_t>(l)];
  }
  int bag_size(BagId l) const {
    return static_cast<int>(bag_members_[static_cast<size_t>(l)].size());
  }
  int max_bag_size() const;

  double total_area() const { return total_area_; }
  double max_size() const { return max_size_; }

  /// True iff some feasible schedule exists: max bag size <= m.
  bool is_feasible() const { return max_bag_size() <= num_machines_; }

  /// Throws std::invalid_argument when internal invariants are violated
  /// (negative sizes, bag ids out of range, ...). Used by I/O and tests.
  void validate() const;

 private:
  void rebuild_index();

  std::vector<Job> jobs_;
  std::vector<std::vector<JobId>> bag_members_;
  int num_machines_ = 0;
  int num_bags_ = 0;
  double total_area_ = 0.0;
  double max_size_ = 0.0;
};

/// Human-readable one-line summary (used in logs and example output).
std::string describe(const Instance& instance);

}  // namespace bagsched::model
