#include "model/schedule.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace bagsched::model {

Schedule::Schedule(int num_jobs, int num_machines)
    : machine_of_(static_cast<std::size_t>(num_jobs), kUnassigned),
      num_machines_(num_machines) {}

void Schedule::swap_jobs(JobId a, JobId b) {
  std::swap(machine_of_[static_cast<std::size_t>(a)],
            machine_of_[static_cast<std::size_t>(b)]);
}

std::vector<double> Schedule::loads(const Instance& instance) const {
  std::vector<double> result(static_cast<std::size_t>(num_machines_), 0.0);
  for (const Job& job : instance.jobs()) {
    const MachineId machine = machine_of(job.id);
    if (machine != kUnassigned) {
      result[static_cast<std::size_t>(machine)] += job.size;
    }
  }
  return result;
}

double Schedule::load(const Instance& instance, MachineId machine) const {
  double result = 0.0;
  for (const Job& job : instance.jobs()) {
    if (machine_of(job.id) == machine) result += job.size;
  }
  return result;
}

double Schedule::makespan(const Instance& instance) const {
  double best = 0.0;
  for (double l : loads(instance)) best = std::max(best, l);
  return best;
}

std::vector<std::vector<JobId>> Schedule::machine_jobs() const {
  std::vector<std::vector<JobId>> result(
      static_cast<std::size_t>(num_machines_));
  for (std::size_t j = 0; j < machine_of_.size(); ++j) {
    const MachineId machine = machine_of_[j];
    if (machine != kUnassigned) {
      result[static_cast<std::size_t>(machine)].push_back(
          static_cast<JobId>(j));
    }
  }
  return result;
}

ValidationResult validate(const Instance& instance,
                          const Schedule& schedule) {
  ValidationResult result;
  result.complete = true;
  result.bag_feasible = true;

  if (schedule.num_jobs() != instance.num_jobs()) {
    result.complete = false;
    result.unassigned_jobs = instance.num_jobs();
    result.message = "schedule shape does not match instance";
    return result;
  }

  for (const Job& job : instance.jobs()) {
    const MachineId machine = schedule.machine_of(job.id);
    if (machine == kUnassigned || machine < 0 ||
        machine >= instance.num_machines()) {
      result.complete = false;
      ++result.unassigned_jobs;
      if (result.message.empty()) {
        std::ostringstream os;
        os << "job " << job.id << " unassigned or machine out of range";
        result.message = os.str();
      }
    }
  }

  // Bag constraint: at most one job of each bag per machine.
  std::set<std::pair<MachineId, BagId>> seen;
  for (const Job& job : instance.jobs()) {
    const MachineId machine = schedule.machine_of(job.id);
    if (machine == kUnassigned) continue;
    if (!seen.insert({machine, job.bag}).second) {
      result.bag_feasible = false;
      ++result.bag_conflicts;
      if (result.message.empty()) {
        std::ostringstream os;
        os << "machine " << machine << " holds two jobs of bag " << job.bag;
        result.message = os.str();
      }
    }
  }
  return result;
}

Schedule remap_jobs(const Schedule& schedule,
                    const std::vector<JobId>& from_jobs,
                    const std::vector<JobId>& to_jobs) {
  const std::size_t n = static_cast<std::size_t>(schedule.num_jobs());
  if (from_jobs.size() != n || to_jobs.size() != n) {
    throw std::invalid_argument(
        "remap_jobs: permutation length does not match the schedule");
  }
  Schedule result(schedule.num_jobs(), schedule.num_machines());
  for (std::size_t i = 0; i < n; ++i) {
    const JobId from = from_jobs[i];
    const JobId to = to_jobs[i];
    if (from < 0 || static_cast<std::size_t>(from) >= n || to < 0 ||
        static_cast<std::size_t>(to) >= n) {
      throw std::invalid_argument("remap_jobs: job id out of range");
    }
    result.assign(to, schedule.machine_of(from));
  }
  return result;
}

void require_valid(const Instance& instance, const Schedule& schedule,
                   const std::string& context) {
  const ValidationResult result = validate(instance, schedule);
  if (!result.ok()) {
    throw std::logic_error(context + ": invalid schedule (" + result.message +
                           ")");
  }
}

}  // namespace bagsched::model
