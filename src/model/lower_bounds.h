// Lower bounds on the optimal makespan of a bag-constrained instance.
//
// These drive the EPTAS binary search and let benchmarks report honest
// approximation ratios (ratio against a bound is an upper bound on the true
// ratio) when the exact solver is too slow.
#pragma once

#include "model/instance.h"

namespace bagsched::model {

/// Average-load bound: total area divided by m.
double area_lower_bound(const Instance& instance);

/// Largest single job.
double pmax_lower_bound(const Instance& instance);

/// LP-style bound combining area, pmax and "two jobs must share a machine
/// when n > m" (the classical p_(1) + p_(m+1) argument, adapted: if more
/// than m jobs exist, some machine gets two, so OPT >= p_m + p_{m+1} over
/// the sorted sizes... only valid without bags splitting them; with bags the
/// pairing argument still holds because it ignores which jobs pair up).
double pairing_lower_bound(const Instance& instance);

/// Best of all bounds above.
double combined_lower_bound(const Instance& instance);

}  // namespace bagsched::model
