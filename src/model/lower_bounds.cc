#include "model/lower_bounds.h"

#include <algorithm>
#include <vector>

namespace bagsched::model {

double area_lower_bound(const Instance& instance) {
  return instance.total_area() / instance.num_machines();
}

double pmax_lower_bound(const Instance& instance) {
  return instance.max_size();
}

double pairing_lower_bound(const Instance& instance) {
  const int m = instance.num_machines();
  if (instance.num_jobs() <= m) return 0.0;
  std::vector<double> sizes;
  sizes.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const Job& job : instance.jobs()) sizes.push_back(job.size);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  // With n > m jobs, the m+1 largest jobs cannot all be alone: two of them
  // share a machine, and the cheapest such pairing is the two smallest among
  // the m+1 largest.
  return sizes[static_cast<std::size_t>(m) - 1] +
         sizes[static_cast<std::size_t>(m)];
}

double combined_lower_bound(const Instance& instance) {
  return std::max({area_lower_bound(instance), pmax_lower_bound(instance),
                   pairing_lower_bound(instance)});
}

}  // namespace bagsched::model
