#include "model/delta.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bagsched::model {

bool is_noop(const Delta& delta) {
  return delta.arrivals.empty() && delta.departures.empty() &&
         delta.resizes.empty() && delta.machines_added == 0 &&
         delta.failed_machines.empty();
}

std::string describe(const Delta& delta) {
  std::ostringstream out;
  const char* sep = "";
  if (!delta.arrivals.empty()) {
    out << "+" << delta.arrivals.size() << " job"
        << (delta.arrivals.size() == 1 ? "" : "s");
    sep = " ";
  }
  if (!delta.departures.empty()) {
    out << sep << "-" << delta.departures.size() << " job"
        << (delta.departures.size() == 1 ? "" : "s");
    sep = " ";
  }
  if (!delta.resizes.empty()) {
    out << sep << "~" << delta.resizes.size() << " resize"
        << (delta.resizes.size() == 1 ? "" : "s");
    sep = " ";
  }
  if (delta.machines_added > 0) {
    out << sep << "+" << delta.machines_added << " machine"
        << (delta.machines_added == 1 ? "" : "s");
    sep = " ";
  }
  if (!delta.failed_machines.empty()) {
    out << sep << "-" << delta.failed_machines.size() << " machine"
        << (delta.failed_machines.size() == 1 ? "" : "s");
    sep = " ";
  }
  if (*sep == '\0') out << "noop";
  return out.str();
}

namespace {

void check_job_id(const Instance& instance, JobId job, const char* what) {
  if (job < 0 || job >= instance.num_jobs()) {
    throw std::invalid_argument(std::string("delta: ") + what + " names " +
                                "unknown job " + std::to_string(job));
  }
}

}  // namespace

Instance apply_delta(const Instance& instance, const Delta& delta,
                     DeltaMap* map) {
  const int old_jobs = instance.num_jobs();
  const int old_machines = instance.num_machines();

  // --- Validate the delta against the pre-delta instance -------------------
  std::vector<char> departs(static_cast<std::size_t>(old_jobs), 0);
  for (const JobId job : delta.departures) {
    check_job_id(instance, job, "departure");
    if (departs[static_cast<std::size_t>(job)]) {
      throw std::invalid_argument("delta: job " + std::to_string(job) +
                                  " departs twice");
    }
    departs[static_cast<std::size_t>(job)] = 1;
  }
  for (const JobResize& resize : delta.resizes) {
    check_job_id(instance, resize.job, "resize");
    if (departs[static_cast<std::size_t>(resize.job)]) {
      throw std::invalid_argument("delta: job " +
                                  std::to_string(resize.job) +
                                  " both resizes and departs");
    }
    if (resize.size <= 0.0) {
      throw std::invalid_argument("delta: resize of job " +
                                  std::to_string(resize.job) +
                                  " to non-positive size");
    }
  }
  if (delta.machines_added < 0) {
    throw std::invalid_argument("delta: machines_added must be >= 0");
  }
  std::vector<char> failed(static_cast<std::size_t>(old_machines), 0);
  for (const MachineId machine : delta.failed_machines) {
    if (machine < 0 || machine >= old_machines) {
      throw std::invalid_argument("delta: unknown machine " +
                                  std::to_string(machine) + " fails");
    }
    if (failed[static_cast<std::size_t>(machine)]) {
      throw std::invalid_argument("delta: machine " +
                                  std::to_string(machine) + " fails twice");
    }
    failed[static_cast<std::size_t>(machine)] = 1;
  }
  const int new_machines = old_machines + delta.machines_added -
                           static_cast<int>(delta.failed_machines.size());
  if (new_machines <= 0) {
    throw std::invalid_argument("delta: no machines left after failures");
  }

  // --- Build the post-delta job list (survivors first, then arrivals) -----
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(old_jobs) -
               delta.departures.size() + delta.arrivals.size());
  std::vector<JobId> new_job_of(static_cast<std::size_t>(old_jobs),
                                kRemovedJob);
  std::vector<double> resized(static_cast<std::size_t>(old_jobs), 0.0);
  std::vector<char> has_resize(static_cast<std::size_t>(old_jobs), 0);
  for (const JobResize& resize : delta.resizes) {
    resized[static_cast<std::size_t>(resize.job)] = resize.size;
    has_resize[static_cast<std::size_t>(resize.job)] = 1;
  }
  BagId num_bags = static_cast<BagId>(instance.num_bags());
  for (JobId job = 0; job < old_jobs; ++job) {
    if (departs[static_cast<std::size_t>(job)]) continue;
    Job copy = instance.job(job);
    if (has_resize[static_cast<std::size_t>(job)]) {
      copy.size = resized[static_cast<std::size_t>(job)];
    }
    new_job_of[static_cast<std::size_t>(job)] =
        static_cast<JobId>(jobs.size());
    jobs.push_back(copy);
  }
  std::vector<JobId> arrival_jobs;
  arrival_jobs.reserve(delta.arrivals.size());
  for (const JobArrival& arrival : delta.arrivals) {
    if (arrival.size <= 0.0) {
      throw std::invalid_argument("delta: arrival with non-positive size");
    }
    if (arrival.bag < 0 || arrival.bag > num_bags) {
      throw std::invalid_argument(
          "delta: arrival bag " + std::to_string(arrival.bag) +
          " out of range (next unused bag is " + std::to_string(num_bags) +
          ")");
    }
    if (arrival.bag == num_bags) ++num_bags;  // opening a new bag
    arrival_jobs.push_back(static_cast<JobId>(jobs.size()));
    jobs.push_back(Job{0, arrival.size, arrival.bag});
  }

  if (map != nullptr) {
    map->new_job_of = std::move(new_job_of);
    map->arrival_jobs = std::move(arrival_jobs);
    map->new_machine_of.assign(static_cast<std::size_t>(old_machines),
                               kUnassigned);
    MachineId next = 0;
    for (MachineId machine = 0; machine < old_machines; ++machine) {
      if (!failed[static_cast<std::size_t>(machine)]) {
        map->new_machine_of[static_cast<std::size_t>(machine)] = next++;
      }
    }
  }
  return Instance(std::move(jobs), new_machines, num_bags);
}

Delta inverse_delta(const Instance& instance, const Delta& delta,
                    const DeltaMap& map) {
  Delta inverse;
  // Departed jobs come back with their original size and bag (bags are
  // never renumbered, so the id is still valid in the post-delta world).
  for (const JobId job : delta.departures) {
    inverse.arrivals.push_back(
        JobArrival{instance.job(job).size, instance.job(job).bag});
  }
  // Arrivals leave, named by their post-delta ids.
  inverse.departures = map.arrival_jobs;
  // Resizes drift back to the original sizes, named by post-delta ids.
  for (const JobResize& resize : delta.resizes) {
    inverse.resizes.push_back(
        JobResize{map.new_job_of[static_cast<std::size_t>(resize.job)],
                  instance.job(resize.job).size});
  }
  // Machines are identical, so WLOG the inverse removes the ones that were
  // just added (they landed at the top of the id range) and re-adds as many
  // as failed.
  inverse.machines_added = static_cast<int>(delta.failed_machines.size());
  const int new_machines = instance.num_machines() + delta.machines_added -
                           static_cast<int>(delta.failed_machines.size());
  for (int k = 0; k < delta.machines_added; ++k) {
    inverse.failed_machines.push_back(
        static_cast<MachineId>(new_machines - 1 - k));
  }
  return inverse;
}

}  // namespace bagsched::model
