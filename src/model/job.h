// The basic job record shared by every module.
#pragma once

#include <cstdint>

namespace bagsched::model {

using JobId = std::int32_t;
using BagId = std::int32_t;
using MachineId = std::int32_t;

constexpr MachineId kUnassigned = -1;

struct Job {
  JobId id = 0;          ///< Position in Instance::jobs (stable identifier).
  double size = 0.0;     ///< Processing time p_j (> 0 for real jobs).
  BagId bag = 0;         ///< Index of the bag containing this job.
};

}  // namespace bagsched::model
