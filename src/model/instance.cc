#include "model/instance.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bagsched::model {

Instance::Instance(std::vector<Job> jobs, int num_machines, int num_bags)
    : jobs_(std::move(jobs)), num_machines_(num_machines),
      num_bags_(num_bags) {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
  rebuild_index();
  validate();
}

Instance Instance::from_vectors(const std::vector<double>& sizes,
                                const std::vector<BagId>& bags,
                                int num_machines) {
  if (sizes.size() != bags.size()) {
    throw std::invalid_argument("from_vectors: sizes/bags length mismatch");
  }
  std::vector<Job> jobs(sizes.size());
  BagId max_bag = -1;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    jobs[i].size = sizes[i];
    jobs[i].bag = bags[i];
    max_bag = std::max(max_bag, bags[i]);
  }
  return Instance(std::move(jobs), num_machines, max_bag + 1);
}

Instance Instance::without_bags(const std::vector<double>& sizes,
                                int num_machines) {
  std::vector<BagId> bags(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    bags[i] = static_cast<BagId>(i);
  }
  return from_vectors(sizes, bags, num_machines);
}

int Instance::max_bag_size() const {
  int result = 0;
  for (const auto& members : bag_members_) {
    result = std::max(result, static_cast<int>(members.size()));
  }
  return result;
}

void Instance::validate() const {
  if (num_machines_ <= 0) {
    throw std::invalid_argument("Instance: num_machines must be positive");
  }
  if (num_bags_ < 0) {
    throw std::invalid_argument("Instance: num_bags must be non-negative");
  }
  for (const Job& job : jobs_) {
    if (job.size <= 0) {
      throw std::invalid_argument("Instance: job sizes must be positive");
    }
    if (job.bag < 0 || job.bag >= num_bags_) {
      throw std::invalid_argument("Instance: bag id out of range");
    }
  }
}

void Instance::rebuild_index() {
  bag_members_.assign(static_cast<std::size_t>(std::max(num_bags_, 0)), {});
  total_area_ = 0.0;
  max_size_ = 0.0;
  for (const Job& job : jobs_) {
    if (job.bag >= 0 && job.bag < num_bags_) {
      bag_members_[static_cast<std::size_t>(job.bag)].push_back(job.id);
    }
    total_area_ += job.size;
    max_size_ = std::max(max_size_, job.size);
  }
}

std::string describe(const Instance& instance) {
  std::ostringstream os;
  os << "n=" << instance.num_jobs() << " m=" << instance.num_machines()
     << " bags=" << instance.num_bags()
     << " area=" << instance.total_area()
     << " pmax=" << instance.max_size()
     << " maxbag=" << instance.max_bag_size();
  return os.str();
}

}  // namespace bagsched::model
