// Instance deltas for online scheduling (DESIGN.md §7): the dynamic events
// the bag constraint is motivated by — jobs arrive and depart, job sizes
// drift, machines join the fleet or fail — expressed as a first-class value
// that can be applied to an Instance, inverted, serialized and replayed.
//
// Conventions:
//   * Departures/resizes name jobs by their id in the PRE-delta instance.
//   * Surviving jobs keep their relative order and are renumbered compactly;
//     arrivals are appended after them (DeltaMap records both mappings).
//   * Bags are never renumbered: a departure may leave a bag empty (the
//     canonical fingerprint ignores empty bags), and an arrival may open a
//     new bag by naming the first unused bag id.
//   * Machines are identical, so the instance only tracks their count;
//     failed_machines carries the concrete ids so a schedule-level consumer
//     (online::ScheduleSession) knows which assignments were lost.
//     Surviving machines are renumbered compactly in id order.
#pragma once

#include <string>
#include <vector>

#include "model/instance.h"
#include "model/job.h"

namespace bagsched::model {

/// A job entering the system: its size and the bag it joins. `bag` may be
/// an existing bag id or `num_bags + k` to open new bags (k counted over
/// the delta's arrivals in order).
struct JobArrival {
  double size = 0.0;
  BagId bag = 0;
};

/// A job's size drifting (the replica resize / load-estimate-update case).
struct JobResize {
  JobId job = 0;      ///< pre-delta job id
  double size = 0.0;  ///< new size (> 0)
};

/// One atomic batch of online events, applied together. An empty delta is
/// valid (and recognized by is_noop).
struct Delta {
  std::vector<JobArrival> arrivals;
  std::vector<JobId> departures;  ///< pre-delta job ids, each at most once
  std::vector<JobResize> resizes;
  /// Machines joining the fleet (identical machines: only the count).
  int machines_added = 0;
  /// Machines failing/draining, by pre-delta machine id. Their jobs must
  /// migrate; surviving machines are renumbered compactly in id order.
  std::vector<MachineId> failed_machines;
};

bool is_noop(const Delta& delta);

/// One-line summary, e.g. "+3 jobs -1 job ~2 resizes -1 machine".
std::string describe(const Delta& delta);

/// How the pre-delta world maps into the post-delta instance.
struct DeltaMap {
  /// new_job_of[old_id] = post-delta id, or kRemovedJob for departures.
  std::vector<JobId> new_job_of;
  /// Post-delta ids of the delta's arrivals, in arrival order.
  std::vector<JobId> arrival_jobs;
  /// new_machine_of[old_id] = post-delta machine id, or kUnassigned for
  /// failed machines.
  std::vector<MachineId> new_machine_of;
};

constexpr JobId kRemovedJob = -1;

/// Applies the delta, renumbering jobs/machines per the conventions above.
/// Throws std::invalid_argument when the delta is malformed (unknown job or
/// machine ids, duplicate departures, non-positive sizes, no machines left)
/// — but NOT when the result is bag-infeasible (max bag size > m): that is
/// a legitimate online state the caller must detect via is_feasible().
Instance apply_delta(const Instance& instance, const Delta& delta,
                     DeltaMap* map = nullptr);

/// The delta that undoes `delta`: applying it to apply_delta(instance,
/// delta) yields an instance equal to `instance` up to job renumbering —
/// the two share their exact canonical fingerprint (cache::Canonicalizer).
/// `map` must be the DeltaMap filled by the forward application.
Delta inverse_delta(const Instance& instance, const Delta& delta,
                    const DeltaMap& map);

}  // namespace bagsched::model
