// A schedule: assignment of every job to a machine, plus feasibility
// validation against the bag-constraints.
#pragma once

#include <string>
#include <vector>

#include "model/instance.h"
#include "model/job.h"

namespace bagsched::model {

class Schedule {
 public:
  Schedule() = default;
  /// Empty schedule (all jobs unassigned) for the given instance shape.
  Schedule(int num_jobs, int num_machines);

  int num_jobs() const { return static_cast<int>(machine_of_.size()); }
  int num_machines() const { return num_machines_; }

  MachineId machine_of(JobId job) const {
    return machine_of_[static_cast<std::size_t>(job)];
  }
  bool is_assigned(JobId job) const {
    return machine_of(job) != kUnassigned;
  }

  /// Assigns (or re-assigns) a job; pass kUnassigned to clear.
  void assign(JobId job, MachineId machine) {
    machine_of_[static_cast<std::size_t>(job)] = machine;
  }

  /// Swaps the machines of two jobs (both must be assigned).
  void swap_jobs(JobId a, JobId b);

  /// Load (sum of sizes of assigned jobs) per machine.
  std::vector<double> loads(const Instance& instance) const;
  double load(const Instance& instance, MachineId machine) const;
  double makespan(const Instance& instance) const;

  /// Jobs on each machine, as indices into instance.jobs().
  std::vector<std::vector<JobId>> machine_jobs() const;

  const std::vector<MachineId>& assignment() const { return machine_of_; }

 private:
  std::vector<MachineId> machine_of_;
  int num_machines_ = 0;
};

/// Result of validating a schedule against an instance.
struct ValidationResult {
  bool complete = false;        ///< every job assigned to a valid machine
  bool bag_feasible = false;    ///< no machine holds two jobs of one bag
  int unassigned_jobs = 0;
  int bag_conflicts = 0;        ///< count of (machine, bag) violations
  std::string message;          ///< first violation, for diagnostics

  bool ok() const { return complete && bag_feasible; }
};

/// Checks completeness and the bag-constraints.
ValidationResult validate(const Instance& instance, const Schedule& schedule);

/// Carries a schedule across a job re-numbering: job to_jobs[i] of the
/// target instance gets the machine that job from_jobs[i] holds in
/// `schedule`. Both lists must enumerate every job exactly once (the solve
/// cache uses this with canonical job orders of fingerprint-equal twins).
/// Throws std::invalid_argument on a length mismatch or an out-of-range id.
Schedule remap_jobs(const Schedule& schedule,
                    const std::vector<JobId>& from_jobs,
                    const std::vector<JobId>& to_jobs);

/// Convenience: validates and throws std::logic_error when invalid.
void require_valid(const Instance& instance, const Schedule& schedule,
                   const std::string& context);

}  // namespace bagsched::model
