#include "model/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bagsched::model {

namespace {

/// Reads the next non-comment, non-empty line; throws at EOF.
std::string next_line(std::istream& is, const char* what) {
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    return line;
  }
  throw std::runtime_error(std::string("instance I/O: unexpected EOF while "
                                       "reading ") + what);
}

template <typename T>
T parse_keyword(std::istream& is, const std::string& keyword) {
  std::istringstream line(next_line(is, keyword.c_str()));
  std::string word;
  T value{};
  if (!(line >> word >> value) || word != keyword) {
    throw std::runtime_error("instance I/O: expected '" + keyword + " <n>'");
  }
  return value;
}

}  // namespace

void write_instance(std::ostream& os, const Instance& instance) {
  os << "bagsched 1\n";
  os << "machines " << instance.num_machines() << "\n";
  os << "bags " << instance.num_bags() << "\n";
  os << "jobs " << instance.num_jobs() << "\n";
  os << std::setprecision(17);
  for (const Job& job : instance.jobs()) {
    os << job.size << " " << job.bag << "\n";
  }
}

Instance read_instance(std::istream& is) {
  {
    std::istringstream header(next_line(is, "header"));
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "bagsched" || version != 1) {
      throw std::runtime_error("instance I/O: bad header");
    }
  }
  const int machines = parse_keyword<int>(is, "machines");
  const int bags = parse_keyword<int>(is, "bags");
  const int jobs = parse_keyword<int>(is, "jobs");
  std::vector<Job> job_list(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    std::istringstream line(next_line(is, "job"));
    Job& job = job_list[static_cast<std::size_t>(j)];
    if (!(line >> job.size >> job.bag)) {
      throw std::runtime_error("instance I/O: bad job line");
    }
  }
  return Instance(std::move(job_list), machines, bags);
}

void save_instance(const std::string& path, const Instance& instance) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  write_instance(file, instance);
}

Instance load_instance(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  return read_instance(file);
}

void write_schedule(std::ostream& os, const Schedule& schedule) {
  os << "bagsched-schedule 1\n";
  os << "machines " << schedule.num_machines() << "\n";
  os << "jobs " << schedule.num_jobs() << "\n";
  for (JobId j = 0; j < schedule.num_jobs(); ++j) {
    os << schedule.machine_of(j) << "\n";
  }
}

Schedule read_schedule(std::istream& is) {
  {
    std::istringstream header(next_line(is, "header"));
    std::string magic;
    int version = 0;
    if (!(header >> magic >> version) || magic != "bagsched-schedule" ||
        version != 1) {
      throw std::runtime_error("schedule I/O: bad header");
    }
  }
  const int machines = parse_keyword<int>(is, "machines");
  const int jobs = parse_keyword<int>(is, "jobs");
  Schedule schedule(jobs, machines);
  for (JobId j = 0; j < jobs; ++j) {
    std::istringstream line(next_line(is, "assignment"));
    int machine = kUnassigned;
    if (!(line >> machine)) {
      throw std::runtime_error("schedule I/O: bad assignment line");
    }
    schedule.assign(j, machine);
  }
  return schedule;
}

util::Json instance_to_json(const Instance& instance) {
  util::Json json = util::Json::object();
  json.set("machines", instance.num_machines());
  json.set("bags", instance.num_bags());
  util::Json jobs = util::Json::array();
  for (const Job& job : instance.jobs()) {
    util::Json entry = util::Json::object();
    entry.set("size", job.size);
    entry.set("bag", job.bag);
    jobs.push_back(std::move(entry));
  }
  json.set("jobs", std::move(jobs));
  return json;
}

Instance instance_from_json(const util::Json& json) {
  const int machines = static_cast<int>(json.at("machines").as_int());
  const int bags = static_cast<int>(json.at("bags").as_int());
  std::vector<Job> jobs;
  jobs.reserve(json.at("jobs").size());
  for (const util::Json& entry : json.at("jobs").as_array()) {
    Job job;
    job.size = entry.at("size").as_number();
    job.bag = static_cast<BagId>(entry.at("bag").as_int());
    jobs.push_back(job);
  }
  Instance instance(std::move(jobs), machines, bags);
  instance.validate();
  return instance;
}

util::Json schedule_to_json(const Schedule& schedule) {
  util::Json json = util::Json::object();
  json.set("machines", schedule.num_machines());
  util::Json assignment = util::Json::array();
  for (JobId j = 0; j < schedule.num_jobs(); ++j) {
    assignment.push_back(schedule.machine_of(j));
  }
  json.set("assignment", std::move(assignment));
  return json;
}

Schedule schedule_from_json(const util::Json& json) {
  const int machines = static_cast<int>(json.at("machines").as_int());
  const auto& assignment = json.at("assignment").as_array();
  Schedule schedule(static_cast<int>(assignment.size()), machines);
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    const auto machine = static_cast<MachineId>(assignment[j].as_int());
    // Fail loudly like instance_from_json: an out-of-range machine id
    // would otherwise index past the load vectors downstream.
    if (machine != kUnassigned && (machine < 0 || machine >= machines)) {
      throw std::runtime_error(
          "schedule JSON: machine id " + std::to_string(machine) +
          " out of range for " + std::to_string(machines) + " machines");
    }
    schedule.assign(static_cast<JobId>(j), machine);
  }
  return schedule;
}

}  // namespace bagsched::model
