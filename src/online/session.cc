#include "online/session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "model/lower_bounds.h"
#include "sched/local_search.h"
#include "util/stopwatch.h"

namespace bagsched::online {

const char* to_string(RepairPath path) {
  switch (path) {
    case RepairPath::Noop: return "noop";
    case RepairPath::Memo: return "memo";
    case RepairPath::Repair: return "repair";
    case RepairPath::Region: return "region";
    case RepairPath::Fresh: return "fresh";
  }
  return "?";
}

int migration_cost(const model::Schedule& prev, const model::Schedule& next,
                   const model::DeltaMap& map) {
  int moved = 0;
  const int old_jobs = static_cast<int>(map.new_job_of.size());
  for (model::JobId job = 0; job < old_jobs; ++job) {
    const model::JobId new_job =
        map.new_job_of[static_cast<std::size_t>(job)];
    if (new_job == model::kRemovedJob) continue;  // departed: not a move
    const model::MachineId old_machine = prev.machine_of(job);
    // A job whose machine failed has no choice but to move; a job whose
    // machine merely got a new id only counts when it ended up elsewhere.
    const model::MachineId renamed =
        old_machine == model::kUnassigned
            ? model::kUnassigned
            : map.new_machine_of[static_cast<std::size_t>(old_machine)];
    if (renamed == model::kUnassigned ||
        next.machine_of(new_job) != renamed) {
      ++moved;
    }
  }
  return moved;
}

namespace {

/// Greedy-places every unassigned job (largest first) onto the least-loaded
/// machine its bag permits. Always succeeds on a bag-feasible instance: a
/// bag of size <= m can have at most m-1 members elsewhere, so a
/// conflict-free machine exists. Throws std::logic_error otherwise.
void greedy_place(const model::Instance& instance,
                  model::Schedule& schedule) {
  const int m = instance.num_machines();
  std::vector<model::JobId> unassigned;
  for (model::JobId job = 0; job < instance.num_jobs(); ++job) {
    if (!schedule.is_assigned(job)) unassigned.push_back(job);
  }
  if (unassigned.empty()) return;

  std::vector<double> loads(static_cast<std::size_t>(m), 0.0);
  // Bag occupancy, tracked only for the bags that need placement.
  std::unordered_map<model::BagId, std::vector<char>> bag_used;
  for (const model::JobId job : unassigned) {
    bag_used.try_emplace(instance.job(job).bag,
                         std::vector<char>(static_cast<std::size_t>(m), 0));
  }
  for (model::JobId job = 0; job < instance.num_jobs(); ++job) {
    const model::MachineId machine = schedule.machine_of(job);
    if (machine == model::kUnassigned) continue;
    loads[static_cast<std::size_t>(machine)] += instance.job(job).size;
    const auto it = bag_used.find(instance.job(job).bag);
    if (it != bag_used.end()) {
      it->second[static_cast<std::size_t>(machine)] = 1;
    }
  }
  std::sort(unassigned.begin(), unassigned.end(),
            [&](model::JobId a, model::JobId b) {
              const double sa = instance.job(a).size;
              const double sb = instance.job(b).size;
              return sa != sb ? sa > sb : a < b;
            });
  for (const model::JobId job : unassigned) {
    std::vector<char>& used = bag_used.at(instance.job(job).bag);
    model::MachineId best = model::kUnassigned;
    for (model::MachineId machine = 0; machine < m; ++machine) {
      if (used[static_cast<std::size_t>(machine)]) continue;
      if (best == model::kUnassigned ||
          loads[static_cast<std::size_t>(machine)] <
              loads[static_cast<std::size_t>(best)]) {
        best = machine;
      }
    }
    if (best == model::kUnassigned) {
      throw std::logic_error("greedy_place: no conflict-free machine "
                             "(instance must be bag-infeasible)");
    }
    schedule.assign(job, best);
    loads[static_cast<std::size_t>(best)] += instance.job(job).size;
    used[static_cast<std::size_t>(best)] = 1;
  }
}

/// Optimal re-placement of a small affected region against the fixed
/// remainder of the schedule: branch-and-bound over the affected jobs
/// (largest first), machines tried in ascending-load order, pruning on the
/// incumbent makespan and on equal-load symmetry. Budgeted by `max_nodes`.
class RegionSolver {
 public:
  RegionSolver(const model::Instance& instance,
               const model::Schedule& fixed,
               std::vector<model::JobId> region, long long max_nodes)
      : instance_(instance), region_(std::move(region)),
        max_nodes_(max_nodes) {
    const int m = instance.num_machines();
    loads_.assign(static_cast<std::size_t>(m), 0.0);
    in_region_.assign(static_cast<std::size_t>(instance.num_jobs()), 0);
    for (const model::JobId job : region_) {
      in_region_[static_cast<std::size_t>(job)] = 1;
      bag_used_.try_emplace(
          instance.job(job).bag,
          std::vector<char>(static_cast<std::size_t>(m), 0));
    }
    for (model::JobId job = 0; job < instance.num_jobs(); ++job) {
      if (in_region_[static_cast<std::size_t>(job)]) continue;
      const model::MachineId machine = fixed.machine_of(job);
      loads_[static_cast<std::size_t>(machine)] += instance.job(job).size;
      const auto it = bag_used_.find(instance.job(job).bag);
      if (it != bag_used_.end()) {
        it->second[static_cast<std::size_t>(machine)] = 1;
      }
    }
    std::sort(region_.begin(), region_.end(),
              [&](model::JobId a, model::JobId b) {
                const double sa = instance.job(a).size;
                const double sb = instance.job(b).size;
                return sa != sb ? sa > sb : a < b;
              });
    assign_.assign(region_.size(), model::kUnassigned);
  }

  /// Best makespan found (assignments written into `schedule`), or +inf
  /// when the node budget ran out before any complete placement.
  double solve(model::Schedule& schedule) {
    best_ = std::numeric_limits<double>::infinity();
    dfs(0);
    if (!best_assign_.empty()) {
      for (std::size_t i = 0; i < region_.size(); ++i) {
        schedule.assign(region_[i], best_assign_[i]);
      }
    }
    return best_;
  }

 private:
  void dfs(std::size_t depth) {
    if (nodes_++ > max_nodes_) return;
    double tallest = 0.0;
    for (const double load : loads_) tallest = std::max(tallest, load);
    if (tallest >= best_) return;  // can only grow from here
    if (depth == region_.size()) {
      best_ = tallest;
      best_assign_ = assign_;
      return;
    }
    const model::JobId job = region_[depth];
    const double size = instance_.job(job).size;
    std::vector<char>& used = bag_used_.at(instance_.job(job).bag);
    const int m = instance_.num_machines();
    std::vector<model::MachineId> order(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k) order[static_cast<std::size_t>(k)] = k;
    std::sort(order.begin(), order.end(),
              [&](model::MachineId a, model::MachineId b) {
                return loads_[static_cast<std::size_t>(a)] <
                       loads_[static_cast<std::size_t>(b)];
              });
    double last_load = -1.0;
    for (const model::MachineId machine : order) {
      if (used[static_cast<std::size_t>(machine)]) continue;
      const double load = loads_[static_cast<std::size_t>(machine)];
      // Identical machines: two equally loaded conflict-free machines are
      // interchangeable for this job.
      if (load == last_load) continue;
      last_load = load;
      if (load + size >= best_) break;  // order is ascending: all worse
      loads_[static_cast<std::size_t>(machine)] += size;
      used[static_cast<std::size_t>(machine)] = 1;
      assign_[depth] = machine;
      dfs(depth + 1);
      loads_[static_cast<std::size_t>(machine)] -= size;
      used[static_cast<std::size_t>(machine)] = 0;
    }
  }

  const model::Instance& instance_;
  std::vector<model::JobId> region_;
  long long max_nodes_;
  long long nodes_ = 0;
  std::vector<double> loads_;
  std::vector<char> in_region_;
  std::unordered_map<model::BagId, std::vector<char>> bag_used_;
  std::vector<model::MachineId> assign_, best_assign_;
  double best_ = 0.0;
};

}  // namespace

ScheduleSession::ScheduleSession(model::Instance initial,
                                 SessionOptions options)
    : options_(std::move(options)) {
  initial.validate();
  if (!initial.is_feasible()) {
    throw std::invalid_argument(
        "ScheduleSession: initial instance is bag-infeasible");
  }
  api::SolveResult result = fresh_solve(initial);
  if (!result.ok() || !result.schedule_feasible) {
    throw std::invalid_argument(
        "ScheduleSession: no feasible schedule for the initial instance: " +
        result.error);
  }
  model::Schedule schedule = result.schedule;
  commit(std::move(initial), std::move(schedule), std::move(result));
  revision_ = 0;  // construction is not a delta commit
}

ScheduleSession::ScheduleSession(model::Instance initial,
                                 model::Schedule committed,
                                 SessionOptions options)
    : options_(std::move(options)) {
  initial.validate();
  model::require_valid(initial, committed, "ScheduleSession adopt");
  api::SolveResult result;
  result.solver = "online-adopted";
  result.status = api::SolveStatus::Feasible;
  result.schedule = committed;
  result.makespan = committed.makespan(initial);
  result.lower_bound = model::combined_lower_bound(initial);
  result.optimality_gap =
      result.makespan / std::max(result.lower_bound, 1e-300) - 1.0;
  result.schedule_feasible = true;
  commit(std::move(initial), std::move(committed), std::move(result));
  revision_ = 0;
}

api::SolveResult ScheduleSession::fresh_solve(
    const model::Instance& instance) const {
  const api::Portfolio portfolio =
      options_.solvers.empty() ? api::Portfolio()
                               : api::Portfolio(options_.solvers);
  return portfolio.solve(instance, options_.solve).best;
}

void ScheduleSession::commit(model::Instance instance,
                             model::Schedule schedule,
                             api::SolveResult result) {
  instance_ = std::move(instance);
  schedule_ = std::move(schedule);
  makespan_ = schedule_.makespan(instance_);
  lower_bound_ = model::combined_lower_bound(instance_);
  last_result_ = std::move(result);
  ++revision_;
  memoize(instance_, schedule_);
}

void ScheduleSession::memoize(const model::Instance& instance,
                              const model::Schedule& schedule) {
  if (options_.memo_capacity == 0) return;
  const cache::CanonicalForm exact = cache::Canonicalizer::exact(instance);
  memo_.push_front(MemoEntry{exact.fingerprint, false,
                             cache::to_canonical(schedule, exact)});
  if (options_.solve.eps > 0.0) {
    const cache::CanonicalForm rounded =
        cache::Canonicalizer::rounded(instance, options_.solve.eps);
    memo_.push_front(MemoEntry{rounded.fingerprint, true,
                               cache::to_canonical(schedule, rounded)});
  }
  while (memo_.size() > options_.memo_capacity) memo_.pop_back();
}

const ScheduleSession::MemoEntry* ScheduleSession::memo_find(
    const cache::Fingerprint& fingerprint, bool rounded) const {
  for (const MemoEntry& entry : memo_) {
    if (entry.rounded == rounded && entry.fingerprint == fingerprint) {
      return &entry;
    }
  }
  return nullptr;
}

api::SolveResult ScheduleSession::apply(const model::Delta& delta) {
  util::Stopwatch clock;
  ++stats_.deltas;
  if (model::is_noop(delta)) {
    ++stats_.noops;
    api::SolveResult result = last_result_;
    result.moved_jobs = 0;
    result.migration_ratio = 0.0;
    result.stats["online.path"] = std::string(to_string(RepairPath::Noop));
    result.wall_seconds = clock.seconds();
    return result;
  }

  model::DeltaMap map;
  model::Instance next = model::apply_delta(instance_, delta, &map);
  if (!next.is_feasible()) {
    ++stats_.rejected;
    api::SolveResult result;
    result.solver = "online-session";
    result.status = api::SolveStatus::Infeasible;
    result.error = "delta makes the instance bag-infeasible (max bag size " +
                   std::to_string(next.max_bag_size()) + " > " +
                   std::to_string(next.num_machines()) + " machines)";
    result.stats["online.path"] = std::string("rejected");
    result.wall_seconds = clock.seconds();
    return result;
  }

  const double lower = model::combined_lower_bound(next);
  const double regret_cap = (1.0 + options_.regret_bound) * lower;
  int survivors = 0;
  for (const model::JobId new_job : map.new_job_of) {
    if (new_job != model::kRemovedJob) ++survivors;
  }

  RepairPath path = RepairPath::Repair;
  model::Schedule repaired;
  bool have_schedule = false;

  // --- 1. fingerprint memo: have we committed this very instance? --------
  const cache::CanonicalForm exact_form = cache::Canonicalizer::exact(next);
  if (const MemoEntry* hit = memo_find(exact_form.fingerprint, false)) {
    model::Schedule candidate =
        cache::from_canonical(hit->canonical_schedule, exact_form);
    if (model::validate(next, candidate).ok()) {  // guards hash collisions
      repaired = std::move(candidate);
      path = RepairPath::Memo;
      have_schedule = true;
      ++stats_.memo_hits;
    }
  }

  std::size_t affected = 0;
  if (!have_schedule) {
    // --- 2. repair: inherit, greedy-place, polish --------------------------
    repaired = model::Schedule(next.num_jobs(), next.num_machines());
    for (model::JobId old_job = 0;
         old_job < static_cast<model::JobId>(map.new_job_of.size());
         ++old_job) {
      const model::JobId new_job =
          map.new_job_of[static_cast<std::size_t>(old_job)];
      if (new_job == model::kRemovedJob) continue;
      const model::MachineId old_machine = schedule_.machine_of(old_job);
      if (old_machine == model::kUnassigned) continue;
      repaired.assign(
          new_job,
          map.new_machine_of[static_cast<std::size_t>(old_machine)]);
    }
    // The delta's footprint: arrivals, displaced jobs (failed machines) and
    // resizes — the candidates for the region re-solve.
    std::vector<model::JobId> region;
    for (model::JobId job = 0; job < next.num_jobs(); ++job) {
      if (!repaired.is_assigned(job)) region.push_back(job);
    }
    for (const model::JobResize& resize : delta.resizes) {
      const model::JobId new_job =
          map.new_job_of[static_cast<std::size_t>(resize.job)];
      if (new_job != model::kRemovedJob) region.push_back(new_job);
    }
    std::sort(region.begin(), region.end());
    region.erase(std::unique(region.begin(), region.end()), region.end());
    affected = region.size();

    greedy_place(next, repaired);
    // Polish only when the inherited placement misses the regret bound:
    // an already-acceptable schedule stays untouched, keeping migration
    // minimal (stickiness is the whole point of the repair path).
    if (repaired.makespan(next) > regret_cap) {
      sched::LocalSearchOptions polish;
      polish.max_moves = options_.repair_moves;
      polish.seed = options_.solve.seed;
      polish.cancel = options_.solve.cancel;
      sched::improve(next, repaired, polish);
    }

    // A same-eps rounded twin's committed schedule is bag-compatible and
    // within (1+eps) per job — adopt it when it beats the repair.
    if (options_.solve.eps > 0.0) {
      const cache::CanonicalForm rounded_form =
          cache::Canonicalizer::rounded(next, options_.solve.eps);
      if (const MemoEntry* hit =
              memo_find(rounded_form.fingerprint, true)) {
        model::Schedule candidate =
            cache::from_canonical(hit->canonical_schedule, rounded_form);
        if (model::validate(next, candidate).ok() &&
            candidate.makespan(next) < repaired.makespan(next)) {
          repaired = std::move(candidate);
          path = RepairPath::Memo;
          ++stats_.memo_hits;
        }
      }
    }

    // --- 3. region re-solve when repair missed the regret bound ----------
    if (path == RepairPath::Repair &&
        repaired.makespan(next) > regret_cap &&
        affected > 0 &&
        affected <= static_cast<std::size_t>(options_.region_max_jobs)) {
      model::Schedule regional = repaired;
      RegionSolver solver(next, regional, region,
                          options_.region_max_nodes);
      const double regional_makespan = solver.solve(regional);
      if (regional_makespan < repaired.makespan(next) &&
          model::validate(next, regional).ok()) {
        repaired = std::move(regional);
        path = RepairPath::Region;
      }
    }
  }

  // --- 4. fresh portfolio solve as the last resort -----------------------
  api::SolveResult result;
  if (!have_schedule && repaired.makespan(next) > regret_cap) {
    api::SolveResult fresh = fresh_solve(next);
    if (fresh.ok() && fresh.schedule_feasible &&
        fresh.makespan < repaired.makespan(next)) {
      result = std::move(fresh);
      repaired = result.schedule;
      path = RepairPath::Fresh;
    }
  }

  const double makespan = repaired.makespan(next);
  if (path != RepairPath::Fresh) {
    result.solver = std::string("online-") + to_string(path);
    result.status = api::SolveStatus::Feasible;
    result.schedule = repaired;
    result.makespan = makespan;
    result.schedule_feasible = true;
  }
  result.lower_bound = lower;
  result.optimality_gap = makespan / std::max(lower, 1e-300) - 1.0;
  if (makespan <= lower * (1.0 + 1e-12)) {
    result.status = api::SolveStatus::Optimal;
    result.proven_optimal = true;
    result.optimality_gap = 0.0;
  }

  const int moved = migration_cost(schedule_, repaired, map);
  result.moved_jobs = moved;
  result.migration_ratio =
      survivors > 0 ? static_cast<double>(moved) / survivors : 0.0;
  result.stats["online.path"] = std::string(to_string(path));
  result.stats["online.affected_jobs"] = static_cast<long long>(affected);
  result.stats["online.survivors"] = static_cast<long long>(survivors);
  result.stats["online.moved_jobs"] = static_cast<long long>(moved);
  result.stats["online.regret_cap"] = regret_cap;
  result.stats["online.revision"] = static_cast<long long>(revision_ + 1);
  result.wall_seconds = clock.seconds();

  switch (path) {
    case RepairPath::Repair: ++stats_.repairs; break;
    case RepairPath::Region: ++stats_.region_resolves; break;
    case RepairPath::Fresh: ++stats_.fresh_solves; break;
    default: break;
  }
  stats_.total_moved_jobs += static_cast<std::uint64_t>(moved);

  commit(std::move(next), std::move(repaired), result);
  return result;
}

}  // namespace bagsched::online
