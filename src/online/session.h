// Online scheduling sessions: incremental repair of a committed schedule
// under instance deltas (DESIGN.md §7).
//
// A ScheduleSession holds the last committed (instance, schedule) pair and
// answers each model::Delta with a repaired schedule plus its migration
// cost — how many surviving jobs changed machine, a result axis a fresh
// solve cannot even define. Repair is cheap and sticky by construction:
//
//   1. memo     — the post-delta instance's canonical fingerprint (exact,
//                 then eps-rounded; PR 4 machinery) is looked up in a small
//                 per-session memo of previously committed schedules, so
//                 delta-equivalent instances (churn that undoes itself,
//                 jittered twins) are recognized without solving at all;
//   2. repair   — surviving jobs inherit their machines through the delta's
//                 renumbering, displaced/new jobs are greedy-placed (always
//                 feasible: bag size <= m), and a bounded local search
//                 polishes the result from that warm start;
//   3. region   — when the delta touched only a few jobs and repair missed
//                 the regret bound, just those jobs are re-placed optimally
//                 by a small branch-and-bound against the fixed remainder;
//   4. fresh    — when the repaired makespan still exceeds
//                 (1 + regret_bound) * lower_bound, fall back to a full
//                 portfolio solve (the same one a cold request would get).
//
// The regret bound is checked against the combined lower bound, so an
// accepted repair is within (1 + regret_bound) of ANY solver's output on
// the new instance, fresh solves included.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "api/portfolio.h"
#include "api/solver.h"
#include "cache/canonicalize.h"
#include "model/delta.h"
#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::online {

struct SessionOptions {
  /// Options for every solve the session issues (fresh portfolio solves,
  /// repair local search budget via max_moves, eps for the rounded memo).
  api::SolveOptions solve;
  /// Solver selection for fresh solves; empty = the default portfolio.
  std::vector<std::string> solvers;
  /// Repair acceptance: a repaired schedule is committed iff its makespan
  /// is <= (1 + regret_bound) * combined_lower_bound(new instance).
  double regret_bound = 0.15;
  /// Accepted-move budget for the repair local search (kept well below
  /// solve.max_moves — repair must be cheap or it defeats its purpose).
  long long repair_moves = 20'000;
  /// Region re-solve triggers only when at most this many jobs were
  /// directly affected by the delta (arrivals, resizes, displaced jobs).
  int region_max_jobs = 8;
  /// Node budget for the region branch-and-bound.
  long long region_max_nodes = 200'000;
  /// Committed schedules remembered per session (exact + rounded keys).
  std::size_t memo_capacity = 32;
};

/// Which pipeline stage produced a committed result.
enum class RepairPath { Noop, Memo, Repair, Region, Fresh };

const char* to_string(RepairPath path);

struct SessionStats {
  std::uint64_t deltas = 0;
  std::uint64_t noops = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t repairs = 0;          ///< accepted at stage 2
  std::uint64_t region_resolves = 0;  ///< accepted at stage 3
  std::uint64_t fresh_solves = 0;     ///< fell through to stage 4
  std::uint64_t rejected = 0;         ///< infeasible deltas (not committed)
  std::uint64_t total_moved_jobs = 0;
};

/// Migration cost of `next` (a schedule of the post-delta instance) versus
/// `prev` (the pre-delta schedule), counted through the delta's machine
/// renumbering: a surviving job is moved iff its new machine differs from
/// the renamed old one, or its old machine failed. Pure renumbering is not
/// migration. Arrivals are never "moved".
int migration_cost(const model::Schedule& prev, const model::Schedule& next,
                   const model::DeltaMap& map);

class ScheduleSession {
 public:
  /// Opens a session on `initial` with a fresh portfolio solve; the solve's
  /// result (available via last_result()) is the first committed schedule.
  /// Throws std::invalid_argument when the initial instance is infeasible.
  explicit ScheduleSession(model::Instance initial,
                           SessionOptions options = {});

  /// Opens a session adopting an existing schedule (e.g. the service already
  /// solved this instance). The schedule must be complete and bag-feasible.
  ScheduleSession(model::Instance initial, model::Schedule committed,
                  SessionOptions options = {});

  /// Applies the delta, repairs, commits, and returns the result with
  /// moved_jobs / migration_ratio filled and telemetry under "online.*"
  /// keys (path, affected jobs, repair acceptance). A malformed delta
  /// throws (std::invalid_argument, session state unchanged); a delta that
  /// makes the instance bag-infeasible returns SolveStatus::Infeasible and
  /// leaves the previous commit in place.
  api::SolveResult apply(const model::Delta& delta);

  const model::Instance& instance() const { return instance_; }
  const model::Schedule& schedule() const { return schedule_; }
  const api::SolveResult& last_result() const { return last_result_; }
  double makespan() const { return makespan_; }
  double lower_bound() const { return lower_bound_; }
  /// Commit counter: 0 after construction, +1 per committed delta.
  std::uint64_t revision() const { return revision_; }
  /// Crash-recovery only: both constructors reset the counter to 0, so a
  /// session re-adopted from the journal restores its journaled revision
  /// here to keep client-side expect_revision dedupe meaningful.
  void restore_revision(std::uint64_t revision) { revision_ = revision; }
  const SessionStats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }

 private:
  struct MemoEntry {
    cache::Fingerprint fingerprint;
    bool rounded = false;
    /// Canonical-order schedule; a hit materializes it into the hitting
    /// instance's job order with cache::from_canonical — pure index remap.
    model::Schedule canonical_schedule;
  };

  void commit(model::Instance instance, model::Schedule schedule,
              api::SolveResult result);
  void memoize(const model::Instance& instance,
               const model::Schedule& schedule);
  const MemoEntry* memo_find(const cache::Fingerprint& fingerprint,
                             bool rounded) const;

  api::SolveResult fresh_solve(const model::Instance& instance) const;

  SessionOptions options_;
  model::Instance instance_;
  model::Schedule schedule_;
  api::SolveResult last_result_;
  double makespan_ = 0.0;
  double lower_bound_ = 0.0;
  std::uint64_t revision_ = 0;
  SessionStats stats_;
  std::deque<MemoEntry> memo_;  ///< front = most recent commit
};

}  // namespace bagsched::online
