#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace bagsched::milp {

namespace {

struct Node {
  // Variable-bound overrides relative to the root model.
  std::vector<std::pair<int, double>> lower_overrides;
  std::vector<std::pair<int, double>> upper_overrides;
  double bound = -std::numeric_limits<double>::infinity();

  // Best-bound search: smaller LP bound first (minimization).
  bool operator<(const Node& other) const { return bound > other.bound; }
};

void apply_overrides(lp::Model& model, const Node& node) {
  for (const auto& [var, lb] : node.lower_overrides) {
    model.mutable_variable(var).lower =
        std::max(model.variable(var).lower, lb);
  }
  for (const auto& [var, ub] : node.upper_overrides) {
    model.mutable_variable(var).upper =
        std::min(model.variable(var).upper, ub);
  }
}

/// Most-fractional branching variable; -1 when integral.
int pick_branch_variable(const std::vector<double>& x,
                         const std::vector<int>& integer_variables,
                         double tol) {
  int best = -1;
  double best_score = tol;
  for (int var : integer_variables) {
    const double value = x[static_cast<std::size_t>(var)];
    const double frac = value - std::floor(value);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = var;
    }
  }
  return best;
}

}  // namespace

MilpResult solve(const lp::Model& root_model,
                 const std::vector<int>& integer_variables,
                 const MilpOptions& options) {
  util::Stopwatch timer;
  MilpResult result;

  const bool maximize = root_model.objective() == lp::Objective::Maximize;
  // Internally minimize: flip the incumbent comparison via sign.
  const double sign = maximize ? -1.0 : 1.0;

  double incumbent_value = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent;

  std::priority_queue<Node> open;
  open.push(Node{});

  double best_open_bound = -std::numeric_limits<double>::infinity();
  bool truncated = false;

  while (!open.empty()) {
    const bool stopped = util::stop_requested(options.cancel);
    if (stopped || result.nodes_explored >= options.max_nodes ||
        timer.seconds() > options.time_limit_seconds) {
      truncated = true;
      result.cancelled = stopped;
      break;
    }
    Node node = open.top();
    open.pop();
    ++result.nodes_explored;

    // Bound-based pruning against the incumbent.
    if (node.bound >= incumbent_value - options.relative_gap *
                                            std::abs(incumbent_value) &&
        !incumbent.empty() && result.nodes_explored > 1) {
      continue;
    }

    lp::Model model = root_model;  // root copy + bound overrides
    apply_overrides(model, node);

    // Quick reject: crossed bounds mean the branch is empty.
    bool crossed = false;
    for (int v = 0; v < model.num_variables(); ++v) {
      if (model.variable(v).lower >
          model.variable(v).upper + options.integrality_tolerance) {
        crossed = true;
        break;
      }
    }
    if (crossed) continue;

    lp::Model minimized = model;
    if (maximize) {
      minimized.set_objective(lp::Objective::Minimize);
      for (int v = 0; v < minimized.num_variables(); ++v) {
        minimized.mutable_variable(v).objective =
            -minimized.variable(v).objective;
      }
    }
    const lp::LpResult lp_result = lp::solve(minimized, options.lp_options);
    if (lp_result.status == lp::SolveStatus::Infeasible) continue;
    if (lp_result.status == lp::SolveStatus::Unbounded) {
      // Integral restriction of an unbounded relaxation: report and stop.
      result.status = MilpStatus::LimitReached;
      return result;
    }
    if (lp_result.status == lp::SolveStatus::IterationLimit) {
      truncated = true;  // dropped a node we could not bound
      continue;
    }

    const double node_bound = lp_result.objective * (maximize ? -1.0 : 1.0) *
                              sign;  // value in minimization orientation
    best_open_bound = std::max(best_open_bound, node.bound);
    if (!incumbent.empty() &&
        node_bound >= incumbent_value -
                          options.relative_gap * std::abs(incumbent_value)) {
      continue;  // cannot improve
    }

    const int branch_var = pick_branch_variable(
        lp_result.x, integer_variables, options.integrality_tolerance);
    if (branch_var < 0) {
      // Integral solution.
      if (node_bound < incumbent_value) {
        incumbent_value = node_bound;
        incumbent = lp_result.x;
        // Snap integer variables onto exact integers.
        for (int var : integer_variables) {
          incumbent[static_cast<std::size_t>(var)] =
              std::round(incumbent[static_cast<std::size_t>(var)]);
        }
        if (options.on_incumbent) {
          options.on_incumbent(sign * incumbent_value);
        }
      }
      continue;
    }

    const double value = lp_result.x[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.bound = node_bound;
    down.upper_overrides.emplace_back(branch_var, std::floor(value));
    Node up = node;
    up.bound = node_bound;
    up.lower_overrides.emplace_back(branch_var, std::ceil(value));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (incumbent.empty()) {
    // Exhausting the tree without truncation proves infeasibility.
    result.status =
        truncated ? MilpStatus::LimitReached : MilpStatus::Infeasible;
    return result;
  }

  result.x = std::move(incumbent);
  result.objective = sign * incumbent_value;
  result.best_bound = sign * (open.empty()
                                  ? incumbent_value
                                  : std::min(incumbent_value,
                                             open.top().bound));
  result.status =
      open.empty() ? MilpStatus::Optimal : MilpStatus::Feasible;
  // Tight gap also counts as proven optimal.
  if (result.status == MilpStatus::Feasible) {
    const double gap =
        std::abs(incumbent_value - open.top().bound) /
        std::max(1.0, std::abs(incumbent_value));
    if (gap <= options.relative_gap) result.status = MilpStatus::Optimal;
  }
  return result;
}

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::Optimal: return "optimal";
    case MilpStatus::Feasible: return "feasible";
    case MilpStatus::Infeasible: return "infeasible";
    case MilpStatus::LimitReached: return "limit-reached";
  }
  return "?";
}

}  // namespace bagsched::milp
