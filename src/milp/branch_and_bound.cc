#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <tuple>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace bagsched::milp {

namespace {

struct Node {
  // Variable-bound overrides relative to the root model.
  std::vector<std::pair<int, double>> lower_overrides;
  std::vector<std::pair<int, double>> upper_overrides;
  double bound = -std::numeric_limits<double>::infinity();
  // Optimal basis of the parent LP, shared by both children: it stays dual
  // feasible under the bound tightening, so the child LP runs dual-simplex
  // repair pivots instead of simplex phase 1. Only used on the fallback
  // path — with the persistent IncrementalSimplex the warm state lives in
  // the tableau itself.
  std::shared_ptr<const lp::Basis> warm_basis;

  // Best-bound search: smaller LP bound first (minimization).
  bool operator<(const Node& other) const { return bound > other.bound; }
};

/// Applies the node's bound overrides to the shared model, recording undo
/// entries; returns false when the overrides cross (empty branch).
class BoundDelta {
 public:
  BoundDelta(lp::Model& model, const Node& node, double tol)
      : model_(model) {
    undo_.reserve(node.lower_overrides.size() +
                  node.upper_overrides.size());
    for (const auto& [var, lb] : node.lower_overrides) {
      lp::Variable& v = model_.mutable_variable(var);
      undo_.emplace_back(var, v.lower, v.upper);
      v.lower = std::max(v.lower, lb);
      if (v.lower > v.upper + tol) crossed_ = true;
    }
    for (const auto& [var, ub] : node.upper_overrides) {
      lp::Variable& v = model_.mutable_variable(var);
      undo_.emplace_back(var, v.lower, v.upper);
      v.upper = std::min(v.upper, ub);
      if (v.lower > v.upper + tol) crossed_ = true;
    }
  }

  ~BoundDelta() {
    // Reverse order restores variables touched more than once.
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      lp::Variable& v = model_.mutable_variable(std::get<0>(*it));
      v.lower = std::get<1>(*it);
      v.upper = std::get<2>(*it);
    }
  }

  BoundDelta(const BoundDelta&) = delete;
  BoundDelta& operator=(const BoundDelta&) = delete;

  bool crossed() const { return crossed_; }

 private:
  lp::Model& model_;
  std::vector<std::tuple<int, double, double>> undo_;
  bool crossed_ = false;
};

/// Most-fractional branching variable; -1 when integral.
int pick_branch_variable(const std::vector<double>& x,
                         const std::vector<int>& integer_variables,
                         double tol) {
  int best = -1;
  double best_score = tol;
  for (int var : integer_variables) {
    const double value = x[static_cast<std::size_t>(var)];
    const double frac = value - std::floor(value);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = var;
    }
  }
  return best;
}

}  // namespace

MilpResult solve(const lp::Model& root_model,
                 const std::vector<int>& integer_variables,
                 const MilpOptions& options) {
  util::Stopwatch timer;
  MilpResult result;

  const bool maximize = root_model.objective() == lp::Objective::Maximize;
  // Internally minimize: flip the sense and objective once at the root
  // instead of copying + flipping at every node; `sign` maps objective
  // values back to the model's orientation.
  const double sign = maximize ? -1.0 : 1.0;
  lp::Model work = root_model;  // the only model copy of the whole search
  if (maximize) {
    work.set_objective(lp::Objective::Minimize);
    for (int v = 0; v < work.num_variables(); ++v) {
      work.mutable_variable(v).objective = -work.variable(v).objective;
    }
  }

  // One persistent tableau for the whole search when the structure allows
  // it (every branched variable must already have a finite upper bound, so
  // bound tightening can never add standardized rows). Otherwise each node
  // re-solves with the parent basis as a warm start.
  bool incremental_ok = true;
  for (const int var : integer_variables) {
    if (!std::isfinite(work.variable(var).upper)) {
      incremental_ok = false;
      break;
    }
  }
  std::optional<lp::IncrementalSimplex> incremental;
  if (incremental_ok) incremental.emplace(work, options.lp_options);

  double incumbent_value = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent;

  std::priority_queue<Node> open;
  open.push(Node{});
  // Plunging: after branching, dive straight into one child instead of
  // returning to the best-bound queue. Consecutive LPs then differ by a
  // single bound, which keeps the dual-simplex warm-start repair to a few
  // pivots; the other child goes to the queue as usual.
  std::optional<Node> dive;

  // Tightest bound among nodes dropped on an LP iteration limit: they are
  // no longer searched, so the proven bound may not rise above them.
  double dropped_bound = std::numeric_limits<double>::infinity();
  bool truncated = false;

  while (dive.has_value() || !open.empty()) {
    const bool stopped = util::stop_requested(options.cancel);
    if (stopped || result.nodes_explored >= options.max_nodes ||
        timer.seconds() > options.time_limit_seconds) {
      truncated = true;
      result.cancelled = stopped;
      break;
    }
    Node node;
    if (dive.has_value()) {
      node = std::move(*dive);
      dive.reset();
    } else {
      node = open.top();
      open.pop();
    }
    ++result.nodes_explored;

    // Bound-based pruning against the incumbent.
    if (node.bound >= incumbent_value - options.relative_gap *
                                            std::abs(incumbent_value) &&
        !incumbent.empty() && result.nodes_explored > 1) {
      continue;
    }

    // Apply this node's bound overrides in place; the delta undoes itself
    // when the iteration ends (zero model copies per node).
    BoundDelta delta(work, node, options.integrality_tolerance);
    if (delta.crossed()) continue;  // crossed bounds: empty branch

    lp::LpResult lp_result =
        incremental
            ? incremental->resolve(work)
            : lp::solve(work, options.lp_options,
                        node.warm_basis ? node.warm_basis.get() : nullptr);
    result.lp_iterations += lp_result.iterations;
    if (lp_result.status == lp::SolveStatus::Infeasible) continue;
    if (lp_result.status == lp::SolveStatus::Unbounded) {
      // Integral restriction of an unbounded relaxation: report and stop.
      result.status = MilpStatus::LimitReached;
      result.best_bound = sign * -std::numeric_limits<double>::infinity();
      return result;
    }
    if (lp_result.status == lp::SolveStatus::IterationLimit) {
      truncated = true;  // dropped a node we could not bound
      dropped_bound = std::min(dropped_bound, node.bound);
      continue;
    }

    // The work model is already minimization-oriented.
    const double node_bound = lp_result.objective;
    if (!incumbent.empty() &&
        node_bound >= incumbent_value -
                          options.relative_gap * std::abs(incumbent_value)) {
      continue;  // cannot improve
    }

    const int branch_var = pick_branch_variable(
        lp_result.x, integer_variables, options.integrality_tolerance);
    if (branch_var < 0) {
      // Integral solution.
      if (node_bound < incumbent_value) {
        incumbent_value = node_bound;
        incumbent = lp_result.x;
        // Snap integer variables onto exact integers.
        for (int var : integer_variables) {
          incumbent[static_cast<std::size_t>(var)] =
              std::round(incumbent[static_cast<std::size_t>(var)]);
        }
        if (options.on_incumbent) {
          options.on_incumbent(sign * incumbent_value);
        }
      }
      continue;
    }

    const double value = lp_result.x[static_cast<std::size_t>(branch_var)];
    // With the persistent tableau the warm basis lives in the tableau
    // itself; per-node bases are only kept on the fallback path.
    std::shared_ptr<const lp::Basis> warm;
    if (!incremental) {
      warm = std::make_shared<const lp::Basis>(std::move(lp_result.basis));
    }
    Node down = node;
    down.bound = node_bound;
    down.warm_basis = warm;
    down.upper_overrides.emplace_back(branch_var, std::floor(value));
    Node up = std::move(node);
    up.bound = node_bound;
    up.warm_basis = std::move(warm);
    up.lower_overrides.emplace_back(branch_var, std::ceil(value));
    // Dive into the child the fractional value leans towards; the sibling
    // joins the best-bound queue.
    if (value - std::floor(value) <= 0.5) {
      dive = std::move(down);
      open.push(std::move(up));
    } else {
      dive = std::move(up);
      open.push(std::move(down));
    }
  }

  // Proven lower bound (minimization orientation) over everything still
  // unexplored: the open set (its top has the smallest bound) and any
  // nodes dropped on LP iteration limits.
  double unexplored_bound = std::numeric_limits<double>::infinity();
  if (!open.empty()) unexplored_bound = open.top().bound;
  if (dive.has_value()) {
    unexplored_bound = std::min(unexplored_bound, dive->bound);
  }
  unexplored_bound = std::min(unexplored_bound, dropped_bound);

  if (incumbent.empty()) {
    // Exhausting the tree without truncation proves infeasibility. On a
    // truncated exit the tightest unexplored bound is still a valid bound
    // on any integral solution, so callers see a correct gap.
    result.status =
        truncated ? MilpStatus::LimitReached : MilpStatus::Infeasible;
    if (truncated) result.best_bound = sign * unexplored_bound;
    return result;
  }

  result.x = std::move(incumbent);
  result.objective = sign * incumbent_value;
  result.best_bound =
      sign * std::min(incumbent_value, unexplored_bound);
  const bool exhausted =
      open.empty() && !dive.has_value() &&
      dropped_bound == std::numeric_limits<double>::infinity();
  result.status = exhausted ? MilpStatus::Optimal : MilpStatus::Feasible;
  // Tight gap also counts as proven optimal.
  if (result.status == MilpStatus::Feasible) {
    const double gap =
        std::abs(incumbent_value - unexplored_bound) /
        std::max(1.0, std::abs(incumbent_value));
    if (gap <= options.relative_gap) result.status = MilpStatus::Optimal;
  }
  return result;
}

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::Optimal: return "optimal";
    case MilpStatus::Feasible: return "feasible";
    case MilpStatus::Infeasible: return "infeasible";
    case MilpStatus::LimitReached: return "limit-reached";
  }
  return "?";
}

}  // namespace bagsched::milp
