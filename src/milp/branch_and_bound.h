// Branch-and-bound MILP solver on top of lp::solve.
//
// Together with the simplex this replaces the paper's theoretical
// Kannan/Lenstra fixed-dimension MILP oracle: the EPTAS only requires *some*
// exact solver for its pattern MILP, and best-bound B&B is exact. Branching
// tightens variable bounds only, so nodes are zero-copy: one mutable model
// carries apply/undo bound deltas, the maximize->minimize flip happens once
// at the root, and node LPs warm-start from the parent basis (or, when all
// integer variables are boxed, from a persistent lp::IncrementalSimplex
// tableau) via dual-simplex repair pivots. Best-bound node order with
// plunging dives keeps consecutive LPs one bound apart.
#pragma once

#include <functional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/cancellation.h"

namespace bagsched::milp {

enum class MilpStatus {
  Optimal,        ///< proven optimal integral solution
  Feasible,       ///< integral incumbent found, search truncated by limits
  Infeasible,     ///< LP relaxation (or all branches) infeasible
  LimitReached,   ///< limits hit before any integral solution was found
};

struct MilpOptions {
  long long max_nodes = 20000;
  double time_limit_seconds = 60.0;
  double integrality_tolerance = 1e-6;
  /// Relative gap at which the search stops with status Optimal.
  double relative_gap = 1e-9;
  /// Cooperative cancellation, polled once per node.
  const util::CancellationToken* cancel = nullptr;
  /// Invoked with the incumbent objective (in the model's orientation)
  /// every time a better integral solution is found. Runs on the solving
  /// thread between node relaxations — keep it cheap.
  std::function<void(double objective)> on_incumbent;
  lp::SimplexOptions lp_options;
};

struct MilpResult {
  MilpStatus status = MilpStatus::LimitReached;
  double objective = 0.0;
  std::vector<double> x;
  long long nodes_explored = 0;
  /// Proven bound on the optimum, in the model's objective orientation
  /// (a lower bound when minimizing, an upper bound when maximizing).
  /// Valid on every exit, including truncated LimitReached runs, so
  /// callers can compute a correct optimality gap; +-infinity when the
  /// search stopped before bounding the root relaxation.
  double best_bound = 0.0;
  long long lp_iterations = 0;  ///< simplex iterations across all node LPs
  /// True iff the cancellation token (not the node/time budget) stopped
  /// the search, so callers can count real cancellations exactly.
  bool cancelled = false;
};

/// Solves model with the given variables required integral.
/// The model's objective sense is respected; internally everything is
/// minimized.
MilpResult solve(const lp::Model& model,
                 const std::vector<int>& integer_variables,
                 const MilpOptions& options = {});

const char* to_string(MilpStatus status);

}  // namespace bagsched::milp
