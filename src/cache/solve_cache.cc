#include "cache/solve_cache.h"

#include <bit>
#include <utility>

#include "api/options_digest.h"
#include "util/fault.h"
#include "util/hash.h"

namespace bagsched::cache {

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  std::size_t seed = static_cast<std::size_t>(
      key.fingerprint.hi ^ util::mix64(key.fingerprint.lo));
  seed = util::hash_combine(seed, std::hash<std::string>{}(key.solver));
  seed = util::hash_combine(seed, static_cast<std::size_t>(key.options));
  seed = util::hash_combine(seed, key.rounded ? 0x5eedULL : 0ULL);
  return seed;
}

std::uint64_t options_digest(const api::SolveOptions& options) {
  return api::options_digest(options);
}

std::size_t approx_result_bytes(const api::SolveResult& result) {
  std::size_t bytes = sizeof(api::SolveResult);
  bytes += result.schedule.assignment().capacity() *
           sizeof(model::MachineId);
  bytes += result.solver.capacity() + result.error.capacity();
  for (const auto& [key, value] : result.stats) {
    bytes += sizeof(value) + key.capacity() + 48;  // node overhead
    if (const auto* text = std::get_if<std::string>(&value)) {
      bytes += text->capacity();
    }
  }
  return bytes;
}

SolveCache::SolveCache(CacheConfig config) : config_(config) {
  std::size_t shards = std::bit_ceil(std::max<std::size_t>(
      1, config_.num_shards));
  config_.num_shards = shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = std::max<std::size_t>(1, config_.byte_budget / shards);
}

SolveCache::Shard& SolveCache::shard_for(const CacheKey& key) {
  // The fingerprint is already well-mixed; stripe on its low bits.
  return *shards_[static_cast<std::size_t>(key.fingerprint.lo) &
                  (shards_.size() - 1)];
}

std::optional<api::SolveResult> SolveCache::lookup(const CacheKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void SolveCache::insert(const CacheKey& key, api::SolveResult result) {
  // Injected memory pressure: the insert is silently dropped, as if the
  // entry were immediately evicted. Correctness never depends on an insert
  // landing — lookups just miss and the solve re-runs.
  if (BAGSCHED_FAULT("cache.insert")) return;
  const std::size_t bytes = approx_result_bytes(result);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (bytes > shard_budget_) {
    ++shard.oversized;
    return;
  }
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, std::move(result), bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
}

CacheStats SolveCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.oversized += shard->oversized;
    total.entries += shard->index.size();
    total.bytes += shard->bytes;
  }
  return total;
}

void SolveCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

}  // namespace bagsched::cache
