#include "cache/canonicalize.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "model/lower_bounds.h"
#include "util/hash.h"

namespace bagsched::cache {

namespace {

/// Per-bag separator word, so (2)(7) and (2,7) hash differently.
constexpr std::uint64_t kBagMarker = 0xba65ba65ba65ba65ULL;

/// Monotone uint64 key for a non-negative size: IEEE-754 doubles with the
/// same sign compare like their bit patterns, so sorting by key sorts by
/// size while hashing stays bit-exact.
std::uint64_t exact_key(double size) {
  if (size <= 0.0) return 0;  // normalizes -0.0; validate() rejects < 0
  return std::bit_cast<std::uint64_t>(size);
}

/// Grid index of `size` on the multiplicative (1+eps) grid after
/// normalizing by `scale`: the smallest integer g with (1+eps)^g >= size /
/// scale, offset into unsigned range. Mirrors the EPTAS classification's
/// round-up (classify.cc), so instances that the EPTAS would treat
/// identically land on the same keys.
std::uint64_t rounded_key(double size, double scale, double log_grid) {
  if (size <= 0.0) return 0;
  const double exponent = std::log(size / scale) / log_grid;
  // Nudge before ceil so sizes sitting exactly on a grid point (e.g. the
  // scale itself) don't flip cells to floating-point noise.
  const auto grid = static_cast<long long>(std::ceil(exponent - 1e-9));
  return static_cast<std::uint64_t>(grid + (1LL << 40));
}

/// Canonical form over arbitrary per-job keys: jobs sorted by key
/// (descending) inside each bag, bags sorted by their key sequence; the
/// fingerprint hashes machines + the sorted bag/key layout. Ties between
/// equal-key jobs and identical bags break by original id — any consistent
/// choice works, because tied jobs/bags are interchangeable.
CanonicalForm canonicalize(const model::Instance& instance,
                           const std::vector<std::uint64_t>& job_key,
                           std::uint64_t salt) {
  const int num_bags = instance.num_bags();
  std::vector<std::vector<model::JobId>> bag_jobs;
  bag_jobs.reserve(static_cast<std::size_t>(num_bags));
  for (model::BagId bag = 0; bag < num_bags; ++bag) {
    // Empty bags constrain nothing; skipping them lets instances that
    // differ only in unused bag ids collide.
    if (instance.bag_size(bag) == 0) continue;
    std::vector<model::JobId> jobs = instance.bag(bag);
    std::sort(jobs.begin(), jobs.end(),
              [&](model::JobId a, model::JobId b) {
                const auto ka = job_key[static_cast<std::size_t>(a)];
                const auto kb = job_key[static_cast<std::size_t>(b)];
                return ka != kb ? ka > kb : a < b;
              });
    bag_jobs.push_back(std::move(jobs));
  }
  std::sort(bag_jobs.begin(), bag_jobs.end(),
            [&](const std::vector<model::JobId>& a,
                const std::vector<model::JobId>& b) {
              const std::size_t common = std::min(a.size(), b.size());
              for (std::size_t i = 0; i < common; ++i) {
                const auto ka = job_key[static_cast<std::size_t>(a[i])];
                const auto kb = job_key[static_cast<std::size_t>(b[i])];
                if (ka != kb) return ka > kb;
              }
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();  // identical bags: stable order
            });

  CanonicalForm form;
  form.job_at.reserve(static_cast<std::size_t>(instance.num_jobs()));
  util::Hash128 hash(salt);
  hash.update(static_cast<std::uint64_t>(instance.num_machines()));
  hash.update(static_cast<std::uint64_t>(instance.num_jobs()));
  for (const auto& jobs : bag_jobs) {
    hash.update(kBagMarker);
    for (const model::JobId job : jobs) {
      hash.update(job_key[static_cast<std::size_t>(job)]);
      form.job_at.push_back(job);
    }
  }
  form.fingerprint = {hash.hi(), hash.lo()};
  return form;
}

}  // namespace

CanonicalForm Canonicalizer::exact(const model::Instance& instance) {
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const model::Job& job : instance.jobs()) {
    keys.push_back(exact_key(job.size));
  }
  return canonicalize(instance, keys, /*salt=*/0x0e8ac7);
}

CanonicalForm Canonicalizer::rounded(const model::Instance& instance,
                                     double eps) {
  if (!(eps > 0.0)) {
    throw std::invalid_argument(
        "Canonicalizer::rounded: eps must be > 0");
  }
  double scale = model::combined_lower_bound(instance);
  if (!(scale > 0.0)) scale = std::max(instance.max_size(), 1.0);
  const double log_grid = std::log1p(eps);
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const model::Job& job : instance.jobs()) {
    keys.push_back(rounded_key(job.size, scale, log_grid));
  }
  // Salt the grid itself into the digest: the same instance under two
  // different eps values must not collide even when the indices agree.
  return canonicalize(instance, keys,
                      /*salt=*/0x70a4ded ^ std::bit_cast<std::uint64_t>(eps));
}

model::Schedule remap_schedule(const model::Schedule& schedule,
                               const CanonicalForm& from,
                               const CanonicalForm& to) {
  return model::remap_jobs(schedule, from.job_at, to.job_at);
}

namespace {

std::vector<model::JobId> identity_order(std::size_t n) {
  std::vector<model::JobId> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = static_cast<model::JobId>(i);
  }
  return order;
}

}  // namespace

model::Schedule to_canonical(const model::Schedule& schedule,
                             const CanonicalForm& form) {
  return model::remap_jobs(schedule, form.job_at,
                           identity_order(form.job_at.size()));
}

model::Schedule from_canonical(const model::Schedule& schedule,
                               const CanonicalForm& form) {
  return model::remap_jobs(schedule, identity_order(form.job_at.size()),
                           form.job_at);
}

}  // namespace bagsched::cache
