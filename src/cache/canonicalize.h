// Canonicalization of bag-constrained instances for the solve cache.
//
// Instances of P | bags | C_max are highly symmetric: re-ordering the jobs,
// relabeling the bags, and permuting the (identical) machines all leave the
// problem unchanged. Canonicalizer maps an instance to a canonical order —
// jobs sorted by size inside each bag, bags sorted by their size multiset —
// and hashes that order into a stable 128-bit fingerprint, so any two
// instances that differ only by such a symmetry share a fingerprint and a
// cached result can be carried from one to the other by a pure index remap
// (remap_jobs; machine labels need no translation).
//
// Two key spaces:
//  * exact(instance): keyed on the raw size bit patterns. Jobs at the same
//    canonical position in two colliding instances have identical sizes,
//    so a remapped schedule has the identical makespan and the cached
//    status (including Optimal) transfers verbatim.
//  * rounded(instance, eps): sizes are first normalized by the instance's
//    combined lower bound and rounded up onto the (1+eps) grid — the same
//    grid the EPTAS's classification step uses — so near-duplicate
//    requests (jittered sizes, uniformly rescaled workloads) collide too.
//    Jobs at the same canonical position then agree only up to a (1+eps)
//    factor: a remapped schedule is still bag-feasible (the bag structure
//    matches exactly), but its makespan must be re-evaluated on the
//    requesting instance and optimality claims must be dropped.
#pragma once

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::cache {

/// Stable 128-bit instance digest (see util::Hash128 for the mixer).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// An instance reduced to canonical order: the fingerprint plus the job
/// permutation needed to move schedules in and out of that order.
struct CanonicalForm {
  Fingerprint fingerprint;
  /// job_at[c] = the instance's JobId sitting at canonical position c.
  std::vector<model::JobId> job_at;
};

class Canonicalizer {
 public:
  /// Canonical form under job re-ordering and bag relabeling; collisions
  /// are exact (same sizes position-by-position).
  static CanonicalForm exact(const model::Instance& instance);

  /// Canonical form of the eps-rounded instance: sizes normalized by the
  /// combined lower bound, rounded up onto the (1+eps) grid. Requires
  /// eps > 0; collisions agree up to (1+eps) per job.
  static CanonicalForm rounded(const model::Instance& instance, double eps);
};

/// Moves a schedule between two instances with equal fingerprints: the job
/// at canonical position c of `to` gets the machine of the job at position
/// c of `from`. Bag structure agrees position-by-position, so feasibility
/// is preserved; makespans agree exactly for exact() forms and up to
/// (1+eps) for rounded() forms.
model::Schedule remap_schedule(const model::Schedule& schedule,
                               const CanonicalForm& from,
                               const CanonicalForm& to);

/// Re-indexes an instance-order schedule into canonical order (position c
/// holds the machine of job form.job_at[c]) — the order SolveCache stores.
model::Schedule to_canonical(const model::Schedule& schedule,
                             const CanonicalForm& form);

/// Inverse of to_canonical: canonical-order schedule back into the job ids
/// of the instance `form` was computed from.
model::Schedule from_canonical(const model::Schedule& schedule,
                               const CanonicalForm& form);

}  // namespace bagsched::cache
