// Sharded, thread-safe LRU cache of SolveResults keyed by canonical
// instance fingerprints.
//
// The key is (fingerprint, solver selection, options digest, rounded?):
// two requests share an entry only when their instances collide under the
// Canonicalizer AND they ask the same solver(s) with the same
// result-relevant options (eps, budgets, seed — see options_digest). The
// stored result keeps its schedule in *canonical job order*; callers remap
// it into their own instance's order on the way in and out
// (cache::remap_schedule), which is what makes one entry serve every
// permuted/relabeled twin.
//
// Concurrency: keys hash onto N mutex-striped shards (N rounded up to a
// power of two), each shard an LRU list with its own byte budget
// (byte_budget / N). Eviction is by approximate entry footprint
// (schedule + telemetry strings), so a flood of large instances cannot
// grow the cache beyond its budget. Hit/miss/insert/evict counters are
// per-shard and aggregated by stats().
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/solver.h"
#include "cache/canonicalize.h"

namespace bagsched::cache {

struct CacheKey {
  Fingerprint fingerprint;
  /// Solver selection: a registry name, or a portfolio signature.
  std::string solver;
  /// Digest of the result-relevant SolveOptions (see options_digest).
  std::uint64_t options = 0;
  /// True when fingerprint came from Canonicalizer::rounded.
  bool rounded = false;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.fingerprint == b.fingerprint && a.options == b.options &&
           a.rounded == b.rounded && a.solver == b.solver;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const;
};

/// Deprecated alias of api::options_digest (api/options_digest.h), the one
/// registry of result-relevant option fields shared by cache keys,
/// single-flight dedup and online delta sessions.
std::uint64_t options_digest(const api::SolveOptions& options);

struct CacheConfig {
  /// Mutex-striped shards; rounded up to a power of two, min 1.
  std::size_t num_shards = 8;
  /// Total byte budget across shards (approximate entry footprints).
  std::size_t byte_budget = 64 * 1024 * 1024;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;   ///< entries evicted to fit the budget
  std::uint64_t oversized = 0;   ///< inserts skipped: entry alone > budget
  std::size_t entries = 0;
  std::size_t bytes = 0;         ///< approximate resident footprint
};

/// Approximate heap footprint of a cached result (schedule assignment,
/// strings, telemetry) — the unit of the byte budget.
std::size_t approx_result_bytes(const api::SolveResult& result);

class SolveCache {
 public:
  explicit SolveCache(CacheConfig config = {});

  /// The stored canonical-order result, or nullopt. A hit refreshes the
  /// entry's LRU position.
  std::optional<api::SolveResult> lookup(const CacheKey& key);

  /// Inserts (or replaces) the canonical-order result under `key`,
  /// evicting least-recently-used entries until the shard fits its budget.
  /// Entries larger than a whole shard budget are skipped (and counted).
  void insert(const CacheKey& key, api::SolveResult result);

  /// Aggregated over all shards; counters are monotone, entries/bytes are
  /// a live snapshot.
  CacheStats stats() const;

  void clear();

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t byte_budget() const { return config_.byte_budget; }

 private:
  struct Entry {
    CacheKey key;
    api::SolveResult result;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversized = 0;
  };

  Shard& shard_for(const CacheKey& key);

  CacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace bagsched::cache
