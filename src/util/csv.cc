#include "util/csv.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bagsched::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::write_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_aligned(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::save_csv: cannot open " + path);
  write_csv(file);
}

}  // namespace bagsched::util
