// Non-cryptographic hashing for cache keys and fingerprints.
//
// Hash128 is a streaming 128-bit mixer built from the splitmix64 finalizer:
// feed 64-bit words, read back a (hi, lo) digest. It is deterministic
// across platforms and runs (no per-process seeding), which the solve
// cache relies on for stable canonical fingerprints; it makes no
// adversarial-collision guarantees.
#pragma once

#include <cstdint>

namespace bagsched::util {

/// splitmix64 finalizer: a cheap, well-mixed 64 -> 64 bijection.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Streaming 128-bit hash: two lanes with different round constants, each
/// mixed per word, cross-coupled in finalize so both halves depend on the
/// whole stream.
class Hash128 {
 public:
  explicit Hash128(std::uint64_t seed = 0)
      : hi_(mix64(seed ^ 0x9e3779b97f4a7c15ULL)),
        lo_(mix64(seed ^ 0xd1b54a32d192ed03ULL)) {}

  void update(std::uint64_t word) {
    hi_ = mix64(hi_ ^ (word * 0x9e3779b97f4a7c15ULL)) + count_;
    lo_ = mix64(lo_ + word) ^ hi_;
    ++count_;
  }

  std::uint64_t hi() const { return mix64(hi_ ^ mix64(lo_) ^ count_); }
  std::uint64_t lo() const { return mix64(lo_ ^ mix64(hi_) ^ ~count_); }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
  std::uint64_t count_ = 0;
};

/// boost-style combine for composing std::hash values.
inline std::size_t hash_combine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace bagsched::util
