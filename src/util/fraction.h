// Exact rational arithmetic on 64-bit numerator/denominator.
//
// Used by unit tests to cross-check the floating-point simplex on small LPs
// and by the epsilon-grid code when exactness matters. Overflow is detected
// via __int128 intermediates and reported by throwing; callers that need
// unbounded precision should not exist in this codebase (all exact uses are
// tiny).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace bagsched::util {

class Fraction {
 public:
  constexpr Fraction() = default;
  Fraction(std::int64_t numerator, std::int64_t denominator);
  // Intentionally implicit: lets integers participate in rational arithmetic.
  Fraction(std::int64_t value) : num_(value), den_(1) {}  // NOLINT

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double to_double() const { return static_cast<double>(num_) / den_; }
  std::string to_string() const;

  Fraction operator-() const;
  Fraction operator+(const Fraction& other) const;
  Fraction operator-(const Fraction& other) const;
  Fraction operator*(const Fraction& other) const;
  Fraction operator/(const Fraction& other) const;

  Fraction& operator+=(const Fraction& o) { return *this = *this + o; }
  Fraction& operator-=(const Fraction& o) { return *this = *this - o; }
  Fraction& operator*=(const Fraction& o) { return *this = *this * o; }
  Fraction& operator/=(const Fraction& o) { return *this = *this / o; }

  bool operator==(const Fraction& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Fraction& other) const { return !(*this == other); }
  bool operator<(const Fraction& other) const;
  bool operator<=(const Fraction& o) const { return *this < o || *this == o; }
  bool operator>(const Fraction& o) const { return o < *this; }
  bool operator>=(const Fraction& o) const { return o <= *this; }

  bool is_integer() const { return den_ == 1; }
  bool is_zero() const { return num_ == 0; }

  /// Raises base to a (possibly negative) integer power exactly.
  static Fraction pow(const Fraction& base, int exponent);

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Fraction& f);

/// Thrown when a rational operation would overflow int64.
class FractionOverflow : public std::overflow_error {
 public:
  FractionOverflow() : std::overflow_error("Fraction overflow") {}
};

}  // namespace bagsched::util
