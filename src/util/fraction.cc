#include "util/fraction.h"

#include <numeric>
#include <ostream>

// __int128 is a GCC/Clang extension; it is the cheapest safe way to detect
// int64 overflow in rational arithmetic.
#pragma GCC diagnostic ignored "-Wpedantic"

namespace bagsched::util {

namespace {

std::int64_t checked(__int128 value) {
  if (value > INT64_MAX || value < INT64_MIN) throw FractionOverflow();
  return static_cast<std::int64_t>(value);
}

}  // namespace

Fraction::Fraction(std::int64_t numerator, std::int64_t denominator)
    : num_(numerator), den_(denominator) {
  if (den_ == 0) throw std::invalid_argument("Fraction: zero denominator");
  normalize();
}

void Fraction::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

std::string Fraction::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Fraction Fraction::operator-() const {
  Fraction result;
  result.num_ = checked(-static_cast<__int128>(num_));
  result.den_ = den_;
  return result;
}

Fraction Fraction::operator+(const Fraction& other) const {
  const __int128 n = static_cast<__int128>(num_) * other.den_ +
                     static_cast<__int128>(other.num_) * den_;
  const __int128 d = static_cast<__int128>(den_) * other.den_;
  return Fraction(checked(n), checked(d));
}

Fraction Fraction::operator-(const Fraction& other) const {
  return *this + (-other);
}

Fraction Fraction::operator*(const Fraction& other) const {
  // Cross-reduce first to delay overflow.
  const std::int64_t g1 = std::gcd(num_, other.den_);
  const std::int64_t g2 = std::gcd(other.num_, den_);
  const __int128 n =
      static_cast<__int128>(num_ / g1) * (other.num_ / g2);
  const __int128 d =
      static_cast<__int128>(den_ / g2) * (other.den_ / g1);
  return Fraction(checked(n), checked(d));
}

Fraction Fraction::operator/(const Fraction& other) const {
  if (other.num_ == 0) throw std::invalid_argument("Fraction: divide by zero");
  return *this * Fraction(other.den_, other.num_);
}

bool Fraction::operator<(const Fraction& other) const {
  return static_cast<__int128>(num_) * other.den_ <
         static_cast<__int128>(other.num_) * den_;
}

Fraction Fraction::pow(const Fraction& base, int exponent) {
  if (exponent < 0) return Fraction(1) / pow(base, -exponent);
  Fraction result(1);
  Fraction factor = base;
  int e = exponent;
  while (e > 0) {
    if (e & 1) result *= factor;
    e >>= 1;
    if (e > 0) factor *= factor;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Fraction& f) {
  return os << f.to_string();
}

}  // namespace bagsched::util
