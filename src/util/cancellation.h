// Cooperative cancellation for long-running solver loops.
//
// A CancellationToken is a thread-safe flag polled by the hot loops of the
// exact branch-and-bound, the MILP solver, the EPTAS guess search and the
// local search. Tokens can be chained: a token whose parent is cancelled
// reports cancelled itself, which lets the portfolio runner hand every
// solver its own token while still honouring a caller-supplied one.
#pragma once

#include <atomic>

namespace bagsched::util {

class CancellationToken {
 public:
  CancellationToken() = default;
  /// Chained token: reports cancelled when either this token or `parent`
  /// was cancelled. `parent` must outlive this token.
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }

  bool stop_requested() const noexcept {
    if (stop_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->stop_requested();
  }

 private:
  std::atomic<bool> stop_{false};
  const CancellationToken* parent_ = nullptr;
};

/// Nullable-pointer convenience used by the option structs: options carry a
/// `const CancellationToken*` that defaults to nullptr ("never cancelled").
inline bool stop_requested(const CancellationToken* token) noexcept {
  return token != nullptr && token->stop_requested();
}

}  // namespace bagsched::util
