#include "util/fault.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/prng.h"

namespace bagsched::util::fault {

namespace detail {

std::atomic<bool> g_enabled{false};

enum Mode {
  kOff = 0,
  kProbability,  ///< each call fires with probability `probability`
  kNth,          ///< fires exactly on call number `nth`
  kEvery,        ///< fires on every `nth`-th call
};

struct Rule {
  std::string glob;
  Mode mode = kOff;
  double probability = 0.0;
  std::uint64_t nth = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<FaultPoint*> points;  ///< immortal, registration-ordered
  std::vector<Rule> rules;
  std::uint64_t seed = 0;
  /// Bumped by configure()/disable(); points lazily re-resolve their rule
  /// when their cached generation falls behind.
  std::uint64_t generation = 1;
};

Registry& registry() {
  static Registry* instance = new Registry();  // immortal: points outlive main
  return *instance;
}

/// Glob match with '*' wildcards (no character classes; names are dotted
/// identifiers).
bool glob_match(const char* pattern, const char* text) {
  for (; *pattern != '*'; ++pattern, ++text) {
    if (*pattern == '\0') return *text == '\0';
    if (*pattern != *text || *text == '\0') return false;
  }
  while (*(pattern + 1) == '*') ++pattern;  // collapse runs of '*'
  for (;; ++text) {
    if (glob_match(pattern + 1, text)) return true;
    if (*text == '\0') return false;
  }
}

Rule parse_rule(const std::string& entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
    throw std::invalid_argument("fault spec entry \"" + entry +
                                "\" is not NAME=TRIGGER");
  }
  Rule rule;
  rule.glob = entry.substr(0, eq);
  const std::string trigger = entry.substr(eq + 1);
  try {
    if (trigger == "off") {
      rule.mode = kOff;
    } else if (trigger[0] == 'p') {
      rule.mode = kProbability;
      rule.probability = std::stod(trigger.substr(1));
      if (rule.probability < 0.0 || rule.probability > 1.0) {
        throw std::invalid_argument("probability out of [0,1]");
      }
    } else if (trigger[0] == 'n' || trigger[0] == 'e') {
      rule.mode = trigger[0] == 'n' ? kNth : kEvery;
      rule.nth = std::stoull(trigger.substr(1));
      if (rule.nth == 0) throw std::invalid_argument("call index must be >0");
    } else {
      throw std::invalid_argument("unknown trigger kind");
    }
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("bad fault trigger \"" + trigger +
                                "\" in \"" + entry +
                                "\" (expected pP, nN, eN or off)");
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("fault trigger value out of range in \"" +
                                entry + "\"");
  }
  return rule;
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t state = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    state = splitmix64(state) ^ static_cast<std::uint64_t>(
                                    static_cast<unsigned char>(c));
  }
  return splitmix64(state);
}

}  // namespace detail

using detail::registry;

/// Caller holds the registry mutex.
void reset_points_locked() {
  for (FaultPoint* point : registry().points) {
    point->calls_ = 0;
    point->fired_calls_.clear();
  }
}

void configure(const std::string& spec, std::uint64_t seed) {
  std::vector<detail::Rule> rules;
  std::size_t at = 0;
  while (at < spec.size()) {
    const std::size_t end = spec.find_first_of(";,", at);
    const std::string entry =
        spec.substr(at, end == std::string::npos ? end : end - at);
    at = end == std::string::npos ? spec.size() : end + 1;
    if (!entry.empty()) rules.push_back(detail::parse_rule(entry));
  }
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.rules = std::move(rules);
  reg.seed = seed;
  reset_points_locked();
  ++reg.generation;
  detail::g_enabled.store(!reg.rules.empty(), std::memory_order_release);
}

bool configure_from_env() {
  const char* spec = std::getenv("BAGSCHED_FAULTS");
  if (spec == nullptr || *spec == '\0') return enabled();
  const char* seed_text = std::getenv("BAGSCHED_FAULT_SEED");
  std::uint64_t seed = 0;
  if (seed_text != nullptr && *seed_text != '\0') {
    seed = std::strtoull(seed_text, nullptr, 10);
  }
  configure(spec, seed);
  return enabled();
}

void disable() { configure("", 0); }

std::uint64_t seed() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.seed;
}

std::vector<PointSnapshot> snapshot() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<PointSnapshot> out;
  out.reserve(reg.points.size());
  for (FaultPoint* point : reg.points) {
    PointSnapshot entry;
    entry.name = point->name_;
    entry.calls = point->calls_;
    entry.fired_calls = point->fired_calls_;
    entry.fires = entry.fired_calls.size();
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

std::uint64_t fires(const std::string& glob) {
  std::uint64_t total = 0;
  for (const auto& point : snapshot()) {
    if (detail::glob_match(glob.c_str(), point.name.c_str())) {
      total += point.fires;
    }
  }
  return total;
}

FaultPoint::FaultPoint(const char* name)
    : name_(name), name_hash_(detail::hash_name(name_)) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.points.push_back(this);
}

bool FaultPoint::fire_slow() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (generation_ != reg.generation) {
    // Re-resolve the trigger from the active rules (last match wins) and
    // restart this point's call sequence under the new configuration.
    mode_ = detail::kOff;
    for (const auto& rule : reg.rules) {
      if (!detail::glob_match(rule.glob.c_str(), name_.c_str())) continue;
      mode_ = rule.mode;
      probability_ = rule.probability;
      nth_ = rule.nth;
    }
    calls_ = 0;
    generation_ = reg.generation;
  }
  const std::uint64_t call = ++calls_;  // 1-based
  bool fired = false;
  switch (mode_) {
    case detail::kProbability: {
      // Stateless decision: a pure function of (seed, point name, call
      // index). Thread interleavings cannot perturb the sequence.
      std::uint64_t state = reg.seed ^ name_hash_ ^ (call * 0x9e3779b9ULL);
      const std::uint64_t draw = splitmix64(state);
      fired = static_cast<double>(draw) <
              probability_ * 18446744073709551616.0;  // p * 2^64
      break;
    }
    case detail::kNth:
      fired = call == nth_;
      break;
    case detail::kEvery:
      fired = call % nth_ == 0;
      break;
    default:
      break;
  }
  if (fired) fired_calls_.push_back(call);
  return fired;
}

}  // namespace bagsched::util::fault
