// Epsilon-grid rounding helpers.
//
// The paper's first preprocessing step rounds every processing time up to the
// next power of (1+eps). These helpers centralize that arithmetic so that the
// rest of the code can reason about *grid indices* (small integers) instead of
// raw doubles, which avoids a whole class of floating-point comparison bugs.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>

namespace bagsched::util {

/// Geometric grid of values (1+eps)^i for integer i (i may be negative).
class EpsGrid {
 public:
  explicit EpsGrid(double eps) : eps_(eps), log_base_(std::log1p(eps)) {
    assert(eps > 0);
  }

  double eps() const { return eps_; }

  /// Grid value at index i: (1+eps)^i.
  double value(int index) const { return std::exp(log_base_ * index); }

  /// Smallest index i with (1+eps)^i >= p (round up onto the grid).
  int index_above(double p) const {
    assert(p > 0);
    const double raw = std::log(p) / log_base_;
    int idx = static_cast<int>(std::ceil(raw - kSlack));
    // Guard against the ceiling landing one step short of p due to the slack.
    while (value(idx) < p * (1.0 - 1e-12)) ++idx;
    return idx;
  }

  /// Rounds p up to the next grid value (identity if already on the grid).
  double round_up(double p) const { return value(index_above(p)); }

  /// Number of grid values in the half-open interval [lo, hi).
  int count_in_range(double lo, double hi) const {
    assert(lo > 0 && lo < hi);
    const int first = index_above(lo);
    int count = 0;
    for (int i = first; value(i) < hi * (1.0 - 1e-12); ++i) ++count;
    return count;
  }

 private:
  // Tolerance absorbing log/exp round-off when deciding grid membership.
  static constexpr double kSlack = 1e-9;

  double eps_;
  double log_base_;
};

/// Rounds value up to the next integer multiple of step (step > 0).
inline double round_up_to_multiple(double value, double step) {
  assert(step > 0);
  const double q = std::ceil(value / step - 1e-12);
  return q * step;
}

/// Floating-point comparison helpers with a single project-wide tolerance.
constexpr double kFloatTol = 1e-9;

inline bool approx_eq(double a, double b, double tol = kFloatTol) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

inline bool approx_le(double a, double b, double tol = kFloatTol) {
  return a <= b + tol * std::max({1.0, std::abs(a), std::abs(b)});
}

inline bool approx_lt(double a, double b, double tol = kFloatTol) {
  return a < b - tol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace bagsched::util
