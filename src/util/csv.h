// CSV / aligned-table writer used by the benchmark harness to emit the rows
// and series that EXPERIMENTS.md records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bagsched::util {

/// A simple in-memory table: fixed header, rows of stringified cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 4);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) {
    return add(static_cast<long long>(value));
  }

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Writes comma-separated values (machine-readable).
  void write_csv(std::ostream& os) const;
  /// Writes a column-aligned table (human-readable, what the benches print).
  void write_aligned(std::ostream& os) const;
  /// Saves CSV to a path, creating/truncating the file.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bagsched::util
