#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace bagsched::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& future : futures) future.get();  // propagates task exceptions
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace bagsched::util
