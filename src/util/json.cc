#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bagsched::util {

namespace {

[[noreturn]] void kind_error(const char* wanted, Json::Kind got) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw std::runtime_error(std::string("json: expected ") + wanted +
                           ", found " + names[static_cast<int>(got)]);
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // std::to_chars, not snprintf: number-heavy documents (journaled
  // schedules, wire frames) serialize an order of magnitude faster, and
  // the shortest-round-trip form it emits parses back bit-identical.
  char buffer[32];
  // Integers (up to the 2^53 exact range) print without a decimal point.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    const auto result = std::to_chars(buffer, buffer + sizeof(buffer),
                                      static_cast<long long>(value));
    out.append(buffer, result.ptr);
    return;
  }
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t length = 0;
    while (literal[length] != '\0') ++length;
    if (text_.compare(pos_, length, literal) != 0) return false;
    pos_ += length;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  /// Nesting guard: the recursive descent must throw on adversarially deep
  /// documents, not overflow the stack (parse is a process-ingress path).
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > 256) parser_.fail("nesting too deep");
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Json object = Json::object();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      object.set(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return object;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Json array = Json::array();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return array;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code += 10u + (h - 'a');
      else if (h >= 'A' && h <= 'F') code += 10u + (h - 'A');
      else fail("bad \\u escape");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow, and the
            // pair combines into one supplementary code point — emitting
            // the halves separately would produce invalid UTF-8 (CESU-8).
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // Encode the code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(start, pos_ - start), &consumed);
    } catch (const std::exception&) {
      fail("bad number");
    }
    if (consumed != pos_ - start) fail("bad number");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) kind_error("number", kind_);
  return number_;
}

long long Json::as_int() const {
  const double value = as_number();
  // Guard llround's UB: reject values outside the representable range
  // (9.2e18 ~ LLONG_MAX; the boundary itself is not exactly representable).
  if (!(value >= -9.2233720368547698e18 && value <= 9.2233720368547698e18)) {
    throw std::runtime_error("json: number out of integer range");
  }
  // Fail loudly on non-integral numbers instead of silently rounding a
  // malformed document into a different one.
  if (value != std::floor(value)) {
    throw std::runtime_error("json: expected an integer, found " +
                             std::to_string(value));
  }
  return static_cast<long long>(std::llround(value));
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  return object_;
}

Json& Json::push_back(Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) kind_error("array", kind_);
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  if (index >= array_.size()) {
    throw std::out_of_range("json: array index " + std::to_string(index) +
                            " out of range");
  }
  return array_[index];
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) kind_error("object", kind_);
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

bool Json::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  const Json* value = find(key);
  if (value == nullptr) {
    throw std::out_of_range("json: missing key \"" + key + "\"");
  }
  return *value;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_number() ? value->as_number()
                                                : fallback;
}

long long Json::int_or(const std::string& key, long long fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_number() ? value->as_int() : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_bool() ? value->as_bool() : fallback;
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::move(fallback);
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(d),
               ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: write_number(out, number_); return;
    case Kind::String: write_escaped(out, string_); return;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(depth + 1);
        write_escaped(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

}  // namespace bagsched::util
