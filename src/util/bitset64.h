// Flat uint64_t bitsets for the branch-and-bound hot paths.
//
// Bitset64 is a dynamic bitset backed by a contiguous word vector;
// BitMatrix64 packs `rows` such bitsets into one flat allocation (row-major
// words), replacing vector<vector<bool>> occupancy matrices. Row equality —
// needed by the equal-load dominance rule of the exact search — is a word
// compare instead of a bit-by-bit scan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bagsched::util {

/// Dynamic bitset over flat uint64_t words.
class Bitset64 {
 public:
  Bitset64() = default;
  explicit Bitset64(int bits)
      : bits_(bits), words_(word_count(bits), 0u) {}

  int bits() const { return bits_; }

  bool test(int bit) const {
    return (words_[static_cast<std::size_t>(bit >> 6)] >>
            (static_cast<unsigned>(bit) & 63u)) & 1u;
  }
  void set(int bit) {
    words_[static_cast<std::size_t>(bit >> 6)] |=
        std::uint64_t{1} << (static_cast<unsigned>(bit) & 63u);
  }
  void reset(int bit) {
    words_[static_cast<std::size_t>(bit >> 6)] &=
        ~(std::uint64_t{1} << (static_cast<unsigned>(bit) & 63u));
  }
  void clear() { std::fill(words_.begin(), words_.end(), 0u); }

  bool operator==(const Bitset64& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  static std::size_t word_count(int bits) {
    return static_cast<std::size_t>((bits + 63) >> 6);
  }

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// `rows` bitsets of `bits` bits each in one flat row-major allocation.
class BitMatrix64 {
 public:
  BitMatrix64() = default;
  BitMatrix64(int rows, int bits)
      : rows_(rows), bits_(bits),
        words_per_row_(Bitset64::word_count(bits)),
        words_(static_cast<std::size_t>(rows) * words_per_row_, 0u) {}

  int rows() const { return rows_; }
  int bits() const { return bits_; }

  bool test(int row, int bit) const {
    return (word(row, bit) >> (static_cast<unsigned>(bit) & 63u)) & 1u;
  }
  void set(int row, int bit) {
    word(row, bit) |= std::uint64_t{1}
                      << (static_cast<unsigned>(bit) & 63u);
  }
  void reset(int row, int bit) {
    word(row, bit) &= ~(std::uint64_t{1}
                        << (static_cast<unsigned>(bit) & 63u));
  }
  void clear() { std::fill(words_.begin(), words_.end(), 0u); }

  /// True when rows a and b hold identical bag masks (word compare).
  bool rows_equal(int a, int b) const {
    const std::uint64_t* pa = row_words(a);
    const std::uint64_t* pb = row_words(b);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if (pa[w] != pb[w]) return false;
    }
    return true;
  }

  const std::uint64_t* row_words(int row) const {
    return words_.data() + static_cast<std::size_t>(row) * words_per_row_;
  }

 private:
  std::uint64_t& word(int row, int bit) {
    return words_[static_cast<std::size_t>(row) * words_per_row_ +
                  static_cast<std::size_t>(bit >> 6)];
  }
  std::uint64_t word(int row, int bit) const {
    return words_[static_cast<std::size_t>(row) * words_per_row_ +
                  static_cast<std::size_t>(bit >> 6)];
  }

  int rows_ = 0;
  int bits_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bagsched::util
