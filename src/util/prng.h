// Deterministic pseudo-random number generation for reproducible experiments.
//
// We deliberately avoid std::mt19937 + std::uniform_*_distribution because the
// standard does not pin down distribution algorithms across implementations;
// every number produced here is bit-reproducible on any platform.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <cassert>
#include <vector>

namespace bagsched::util {

/// SplitMix64 — used to expand a single seed into a full xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t value = (*this)();
    while (value >= limit) value = (*this)();
    return lo + static_cast<std::int64_t>(value % range);
  }

  /// Uniform real in [lo, hi). Uses the top 53 bits for an exact dyadic value.
  double uniform_real(double lo, double hi) {
    const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform_real(0.0, 1.0) < p; }

  /// Index into [0, n).
  std::size_t index(std::size_t n) {
    assert(n > 0);
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle (deterministic given the generator state).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample from a discrete distribution given non-negative weights.
  std::size_t weighted_index(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double pick = uniform_real(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      pick -= weights[i];
      if (pick <= 0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace bagsched::util
