// Minimal JSON value type with a strict parser and a writer — just enough
// for results, requests and telemetry to cross process boundaries without
// pulling in an external dependency.
//
//   util::Json j = util::Json::object();
//   j.set("solver", "eptas");
//   j.set("makespan", 12.5);
//   const std::string text = j.dump(2);
//   const util::Json back = util::Json::parse(text);
//   back["makespan"].as_number();   // 12.5
//
// Objects preserve insertion order (stored as a vector of pairs), so dumped
// documents are stable across runs and friendly to golden files. Numbers
// are doubles; integers up to 2^53 round-trip exactly and are printed
// without a decimal point.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bagsched::util {

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool value) : kind_(Kind::Bool), bool_(value) {}
  Json(double value) : kind_(Kind::Number), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(long long value) : Json(static_cast<double>(value)) {}
  Json(std::uint64_t value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::String), string_(value) {}
  Json(std::string value) : kind_(Kind::String), string_(std::move(value)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  long long as_int() const;  ///< as_number rounded to nearest integer
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // --- Array building / access ---------------------------------------------
  /// Appends to an array (null values become empty arrays first).
  Json& push_back(Json value);
  std::size_t size() const;
  /// Array element; throws std::out_of_range / kind mismatch.
  const Json& at(std::size_t index) const;
  const Json& operator[](std::size_t index) const { return at(index); }

  // --- Object building / access --------------------------------------------
  /// Inserts or replaces a key (null values become empty objects first).
  Json& set(const std::string& key, Json value);
  bool contains(const std::string& key) const;
  /// Object member; throws std::out_of_range when the key is absent.
  const Json& at(const std::string& key) const;
  const Json& operator[](const std::string& key) const { return at(key); }
  /// Object member, or nullptr when absent / not an object.
  const Json* find(const std::string& key) const;

  /// Convenience lookups with fallbacks for optional members.
  double number_or(const std::string& key, double fallback) const;
  long long int_or(const std::string& key, long long fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key, std::string fallback) const;

  // --- Serialization ---------------------------------------------------------
  /// Compact when indent < 0; pretty-printed with `indent` spaces otherwise.
  std::string dump(int indent = -1) const;

  /// Strict parser; throws std::runtime_error with position on bad input.
  /// Rejects trailing garbage after the top-level value.
  static Json parse(const std::string& text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace bagsched::util
