// Minimal leveled logger.
//
// The library is silent by default (level Warn); experiments flip to Info or
// Debug to trace the EPTAS pipeline. Thread-safe: each message is formatted
// into a single string and written with one ostream call under a mutex.
#pragma once

#include <sstream>
#include <string>

namespace bagsched::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted message (used by the LOG macro; callable directly).
void log_message(LogLevel level, const std::string& message);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace bagsched::util

#define BAGSCHED_LOG(level)                                              \
  if (static_cast<int>(::bagsched::util::LogLevel::level) <              \
      static_cast<int>(::bagsched::util::log_level())) {                 \
  } else                                                                 \
    ::bagsched::util::internal::LogLine(::bagsched::util::LogLevel::level)
