// Deterministic, seed-driven fault injection for resilience testing.
//
// A fault *point* is a named site in production code that asks, on every
// pass, whether an injected failure should fire there:
//
//   if (BAGSCHED_FAULT("net.server.read")) {
//     close_connection(connection);  // the site owns the failure mode
//     return;
//   }
//
// The framework only answers yes/no; the call site decides what a failure
// means (errno, short count, throw, stall). Disabled — the default — a
// point costs one relaxed atomic load and a predictable branch, so points
// can sit on solver inner loops and the network hot path.
//
// Triggers are configured per point (glob patterns, later entries win):
//
//   fault::configure("net.server.*=p0.05;service.execute=n3", seed);
//   fault::configure_from_env();  // BAGSCHED_FAULTS / BAGSCHED_FAULT_SEED
//
//   p0.05   fire each call with probability 0.05
//   n3      fire exactly on the 3rd call
//   e100    fire on every 100th call
//   off     never fire (masks a broader glob)
//
// Determinism: a probability decision for call k at point P is a pure
// function of (seed, P's name, k) — no shared PRNG state — so the fired
// sequence at every point is identical across runs with the same seed and
// call counts, regardless of thread interleaving. configure() resets all
// call counters, so a test can replay a scenario exactly. Each point name
// should identify ONE code site: the BAGSCHED_FAULT macro keeps one
// counter per expansion, and duplicating a name across sites would split
// its call sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bagsched::util::fault {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when any trigger is configured. Inline: this is the only cost a
/// fault point pays in production (disabled) builds and runs.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_acquire);
}

/// Installs a trigger spec ("glob=trigger" entries separated by ';' or
/// ',') and the seed for probability decisions, resets every registered
/// point's counters and history, and enables injection (an empty spec
/// disables it). Throws std::invalid_argument on a malformed spec.
void configure(const std::string& spec, std::uint64_t seed = 0);

/// configure(getenv("BAGSCHED_FAULTS"), getenv("BAGSCHED_FAULT_SEED")).
/// No-op when BAGSCHED_FAULTS is unset or empty; returns enabled().
bool configure_from_env();

/// Clears the spec, disables injection and resets counters/history.
void disable();

/// The active probability seed.
std::uint64_t seed();

/// Counters of one registered fault point (aggregated per call site).
struct PointSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t fires = 0;
  /// 1-based call indices that fired, in order — the injected-fault
  /// sequence a seed must reproduce.
  std::vector<std::uint64_t> fired_calls;
};

/// Every point that has been constructed so far, sorted by name.
std::vector<PointSnapshot> snapshot();

/// Total fires across points matching `glob` ("*" wildcards).
std::uint64_t fires(const std::string& glob);

/// One call site's state. Construct as a function-local static (see the
/// BAGSCHED_FAULT macro); instances are immortal and self-register.
class FaultPoint {
 public:
  explicit FaultPoint(const char* name);

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  /// Should an injected failure fire here, now?
  bool fire() {
    if (!enabled()) return false;
    return fire_slow();
  }

  const std::string& name() const { return name_; }

 private:
  friend std::vector<PointSnapshot> snapshot();
  friend void reset_points_locked();

  /// The enabled path runs entirely under the registry mutex: injection is
  /// a test-time facility, so correctness (deterministic sequences, torn-
  /// free snapshots) beats enabled-mode throughput. The disabled path
  /// never takes the lock.
  bool fire_slow();

  std::string name_;
  std::uint64_t name_hash_ = 0;
  // All remaining state is guarded by the registry mutex.
  std::uint64_t generation_ = 0;  ///< config generation this rule is from
  int mode_ = 0;                  ///< detail::Mode
  double probability_ = 0.0;
  std::uint64_t nth_ = 0;
  std::uint64_t calls_ = 0;
  std::vector<std::uint64_t> fired_calls_;
};

}  // namespace bagsched::util::fault

/// `BAGSCHED_FAULT("name")` — true when the named fault fires at this
/// site. Each expansion owns one FaultPoint (function-local static).
#define BAGSCHED_FAULT(point_name)                                \
  ([]() -> bool {                                                 \
    static ::bagsched::util::fault::FaultPoint point(point_name); \
    return point.fire();                                          \
  }())
