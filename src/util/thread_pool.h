// Fixed-size thread pool used to parallelize embarrassingly-parallel
// experiment sweeps (independent (instance, eps, seed) cells).
//
// Design follows the Core Guidelines concurrency advice: tasks are plain
// std::function values, all shared state is owned by the pool and guarded by
// one mutex/condvar pair, and joining happens in the destructor (RAII).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bagsched::util {

class ThreadPool {
 public:
  /// Creates num_threads workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace bagsched::util
