// Fixed-size thread pool shared by the scheduling service, the portfolio
// runner and the experiment sweeps.
//
// Design follows the Core Guidelines concurrency advice: tasks are move-only
// callables queued as packaged_task values, all shared state is owned by the
// pool and guarded by one mutex/condvar pair, and joining happens in the
// destructor (RAII). submit() is a template over the callable's result type,
// so `pool.submit([] { return compute(); })` hands back a typed
// std::future<R> that also carries any exception the task throws.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bagsched::util {

class ThreadPool {
 public:
  /// Creates num_threads workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues any nullary callable; the returned future reports the result
  /// (or rethrows the task's exception on get()).
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& task) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> packaged(std::forward<F>(task));
    std::future<R> future = packaged.get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // packaged_task<void()> doubles as a move-only function wrapper; the
      // inner task owns the result/exception, so the wrapper's own future
      // can be dropped.
      tasks_.emplace([inner = std::move(packaged)]() mutable { inner(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace bagsched::util
