#include "persist/journal.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "api/serialize.h"
#include "model/io.h"
#include "util/fault.h"
#include "util/hash.h"

namespace bagsched::persist {
namespace {

std::uint64_t u64_from_json(const util::Json& value) {
  // Full-range u64 values (epochs) travel as decimal strings; session ids
  // and revisions are small enough to ride as numbers.
  return value.is_string() ? std::stoull(value.as_string())
                           : static_cast<std::uint64_t>(value.as_int());
}

util::Json tuning_to_json(const online::SessionOptions& tuning) {
  util::Json json = util::Json::object();
  json.set("solve", api::options_to_json(tuning.solve));
  if (!tuning.solvers.empty()) {
    util::Json solvers = util::Json::array();
    for (const std::string& solver : tuning.solvers) solvers.push_back(solver);
    json.set("solvers", std::move(solvers));
  }
  json.set("regret_bound", tuning.regret_bound);
  json.set("repair_moves", tuning.repair_moves);
  json.set("region_max_jobs", tuning.region_max_jobs);
  json.set("region_max_nodes", tuning.region_max_nodes);
  json.set("memo_capacity",
           static_cast<long long>(tuning.memo_capacity));
  return json;
}

online::SessionOptions tuning_from_json(const util::Json& json) {
  online::SessionOptions tuning;
  if (const util::Json* solve = json.find("solve")) {
    tuning.solve = api::options_from_json(*solve);
  }
  if (const util::Json* solvers = json.find("solvers")) {
    for (const util::Json& solver : solvers->as_array()) {
      tuning.solvers.push_back(solver.as_string());
    }
  }
  tuning.regret_bound = json.number_or("regret_bound", tuning.regret_bound);
  tuning.repair_moves = json.int_or("repair_moves", tuning.repair_moves);
  tuning.region_max_jobs = static_cast<int>(
      json.int_or("region_max_jobs", tuning.region_max_jobs));
  tuning.region_max_nodes =
      json.int_or("region_max_nodes", tuning.region_max_nodes);
  tuning.memo_capacity = static_cast<std::size_t>(json.int_or(
      "memo_capacity", static_cast<long long>(tuning.memo_capacity)));
  return tuning;
}

std::string hex16(std::uint64_t value) {
  char out[17];
  std::snprintf(out, sizeof out, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(out, 16);
}

/// Committed deltas a shadow may buffer before they are folded into its
/// instance — the backstop for commits journaled WITHOUT a caller-supplied
/// post-delta instance (replay, bare record_commit callers). Folding costs
/// a full apply_delta per buffered delta whenever it happens, so it is
/// deferred to the readers (snapshot, replay); this limit only bounds the
/// buffer's memory.
constexpr std::size_t kPendingBatchLimit = 1024;

void append_int(std::string& out, long long value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

/// Serializes a schedule straight into the payload buffer — byte-for-byte
/// what model::schedule_to_json(schedule).dump() produces, without
/// building the intermediate Json tree. delta_commit is the journal's hot
/// record (one per acked delta); the tree build + generic writer were the
/// bulk of its cost.
void append_schedule_json(std::string& out, const model::Schedule& schedule) {
  out += "{\"machines\":";
  append_int(out, schedule.num_machines());
  out += ",\"assignment\":[";
  bool first = true;
  for (const model::MachineId machine : schedule.assignment()) {
    if (!first) out += ',';
    first = false;
    append_int(out, static_cast<long long>(machine));
  }
  out += "]}";
}

}  // namespace

std::string schedule_digest(const model::Schedule& schedule) {
  util::Hash128 hash(0x6a6f75726e616cULL);
  hash.update(static_cast<std::uint64_t>(schedule.num_machines()));
  for (const model::MachineId machine : schedule.assignment()) {
    hash.update(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(machine)));
  }
  return hex16(hash.hi()) + hex16(hash.lo());
}

SessionJournal::SessionJournal(JournalConfig config)
    : config_(std::move(config)) {
  struct stat dir_stat {};
  if (::stat(config_.dir.c_str(), &dir_stat) != 0) {
    throw PersistError("journal dir " + config_.dir + " does not exist (" +
                       std::strerror(errno) + "); create it first");
  }
  if (!S_ISDIR(dir_stat.st_mode)) {
    throw PersistError("journal dir " + config_.dir + " is not a directory");
  }

  const std::string lock = lock_path();
  lock_fd_ = ::open(lock.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw PersistError("journal dir " + config_.dir + " is not writable (" +
                       lock + ": " + std::strerror(errno) + ")");
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    std::string owner = "unknown pid";
    char pid_text[32];
    const ssize_t got = ::pread(lock_fd_, pid_text, sizeof pid_text - 1, 0);
    if (got > 0) {
      pid_text[got] = '\0';
      owner = "pid " + std::string(pid_text);
      while (!owner.empty() && (owner.back() == '\n' || owner.back() == ' ')) {
        owner.pop_back();
      }
    }
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw PersistError("journal dir " + config_.dir +
                       " is locked by another live server (" + owner +
                       " holds " + lock + ")");
  }
  const std::string pid = std::to_string(::getpid()) + "\n";
  if (::ftruncate(lock_fd_, 0) != 0 ||
      ::pwrite(lock_fd_, pid.data(), pid.size(), 0) < 0) {
    // Lock is held regardless; the pid in the file is advisory diagnostics.
  }

  try {
    WalReplay found;
    wal_ = Wal::open(wal_path(), wal_policy(),
                     config_.fsync_interval_seconds, &found);
    pending_replay_ = std::move(found.records);
    truncated_bytes_ = found.truncated_bytes;
  } catch (...) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }

  if (config_.fsync == FsyncPolicy::Interval) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
}

SessionJournal::~SessionJournal() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> guard(flusher_mutex_);
      stop_flusher_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  wal_.close();
  if (lock_fd_ >= 0) {
    ::close(lock_fd_);  // releases the flock
    lock_fd_ = -1;
  }
}

FsyncPolicy SessionJournal::wal_policy() const {
  // Under Interval the bounded-loss window is enforced by the background
  // flusher (fsync every fsync_interval_seconds, off the append path), so
  // the WAL itself must not sync inline — an fsync can take tens of
  // milliseconds on a loaded filesystem and it would stall every ack
  // landing in that window.
  return config_.fsync == FsyncPolicy::Interval ? FsyncPolicy::Off
                                                : config_.fsync;
}

void SessionJournal::flusher_main() {
  const auto interval =
      std::chrono::duration<double>(config_.fsync_interval_seconds);
  std::unique_lock<std::mutex> lock(flusher_mutex_);
  while (!stop_flusher_) {
    flusher_cv_.wait_for(lock, interval);
    if (stop_flusher_) break;
    lock.unlock();
    int fd = -1;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (wal_.is_open() && dirty_since_flush_) {
        fd = ::dup(wal_.fd());
        dirty_since_flush_ = false;
      }
    }
    if (fd >= 0) {
      // On a dup'd descriptor, without the journal mutex: appends keep
      // landing while the kernel writes back, and a concurrent snapshot
      // rotation at worst syncs the already-renamed previous file.
      // fdatasync, not fsync: data + the size metadata needed to read it
      // back is exactly the durability the framed WAL requires, and it
      // skips the inode-timestamp writeback that stalls concurrent
      // appends hardest.
      ::fdatasync(fd);
      ::close(fd);
      flusher_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

std::string SessionJournal::wal_path() const {
  return config_.dir + "/journal.wal";
}

std::string SessionJournal::lock_path() const {
  return config_.dir + "/LOCK";
}

RecoveredState SessionJournal::replay() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (replayed_) throw PersistError("journal: replay() called twice");
  replayed_ = true;

  std::size_t index = 0;
  for (const std::string& text : pending_replay_) {
    util::Json record;
    try {
      record = util::Json::parse(text);
    } catch (const std::exception& error) {
      throw PersistError("journal: record " + std::to_string(index) +
                         " is CRC-valid but unparseable: " + error.what());
    }
    ingest_locked(record);
    ++records_replayed_;
    ++index;
  }
  pending_replay_.clear();

  RecoveredState state;
  state.max_session_id = max_session_id_;
  state.records_replayed = records_replayed_;
  state.truncated_bytes = truncated_bytes_;
  for (auto& [session, shadow] : sessions_) {
    materialize_locked(session, shadow);
  }
  for (const auto& [session, shadow] : sessions_) {
    RecoveredSession recovered;
    recovered.session = session;
    recovered.epoch = shadow.epoch;
    recovered.revision = shadow.revision;
    recovered.instance = shadow.instance;
    recovered.schedule = shadow.schedule;
    recovered.tuning = tuning_from_json(shadow.tuning);
    recovered.last_delta_json = shadow.last_delta_json;
    recovered.digest = shadow.digest;
    state.sessions.push_back(std::move(recovered));
  }
  sessions_recovered_ = state.sessions.size();
  return state;
}

void SessionJournal::ingest_locked(const util::Json& record) {
  const std::string type = record.at("type").as_string();
  if (type == "session_open") {
    const std::uint64_t session = u64_from_json(record.at("session"));
    Shadow shadow;
    shadow.epoch = u64_from_json(record.at("epoch"));
    shadow.revision = 0;
    shadow.instance = model::instance_from_json(record.at("instance"));
    shadow.schedule = model::schedule_from_json(record.at("schedule"));
    shadow.tuning = record.at("tuning");
    shadow.digest = record.at("digest").as_string();
    if (schedule_digest(shadow.schedule) != shadow.digest) {
      throw PersistError("journal: session_open digest mismatch for session " +
                         std::to_string(session));
    }
    open_shadow_locked(session, std::move(shadow));
  } else if (type == "delta_commit") {
    const std::uint64_t session = u64_from_json(record.at("session"));
    const std::uint64_t revision = u64_from_json(record.at("revision"));
    Shadow& shadow = checked_commit_shadow_locked(session, revision);
    const model::Delta delta = api::delta_from_json(record.at("delta"));
    model::Schedule schedule = model::schedule_from_json(record.at("schedule"));
    std::string digest = record.at("digest").as_string();
    if (schedule_digest(schedule) != digest) {
      throw PersistError("journal: delta_commit digest mismatch for session " +
                         std::to_string(session) + " revision " +
                         std::to_string(revision));
    }
    apply_commit_locked(session, shadow, delta, record.at("delta").dump(),
                        schedule, std::move(digest), nullptr);
  } else if (type == "session_close") {
    sessions_.erase(u64_from_json(record.at("session")));
  } else if (type == "snapshot") {
    sessions_.clear();
    max_session_id_ = u64_from_json(record.at("max_session_id"));
    for (const util::Json& entry : record.at("sessions").as_array()) {
      const std::uint64_t session = u64_from_json(entry.at("session"));
      Shadow shadow;
      shadow.epoch = u64_from_json(entry.at("epoch"));
      shadow.revision = u64_from_json(entry.at("revision"));
      shadow.instance = model::instance_from_json(entry.at("instance"));
      shadow.schedule = model::schedule_from_json(entry.at("schedule"));
      shadow.tuning = entry.at("tuning");
      shadow.digest = entry.at("digest").as_string();
      if (schedule_digest(shadow.schedule) != shadow.digest) {
        throw PersistError("journal: snapshot digest mismatch for session " +
                           std::to_string(session));
      }
      shadow.last_delta_json = entry.string_or("last_delta", "");
      open_shadow_locked(session, std::move(shadow));
    }
  } else {
    throw PersistError("journal: unknown record type \"" + type + "\"");
  }
}

void SessionJournal::open_shadow_locked(std::uint64_t session, Shadow shadow) {
  sessions_[session] = std::move(shadow);
  if (session > max_session_id_) max_session_id_ = session;
}

SessionJournal::Shadow& SessionJournal::checked_commit_shadow_locked(
    std::uint64_t session, std::uint64_t revision) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw PersistError("journal: delta_commit for unknown session " +
                       std::to_string(session));
  }
  Shadow& shadow = it->second;
  if (revision != shadow.revision + 1) {
    throw PersistError("journal: session " + std::to_string(session) +
                       " revision jumped from " +
                       std::to_string(shadow.revision) + " to " +
                       std::to_string(revision));
  }
  return shadow;
}

void SessionJournal::apply_commit_locked(std::uint64_t session, Shadow& shadow,
                                         const model::Delta& delta,
                                         std::string delta_json,
                                         const model::Schedule& schedule,
                                         std::string digest,
                                         const model::Instance* post_instance) {
  if (post_instance != nullptr) {
    // The caller's instance already includes every commit so far — any
    // deltas still buffered are subsumed by it.
    shadow.instance = *post_instance;
    shadow.pending.clear();
  } else {
    shadow.pending.push_back(delta);
    if (shadow.pending.size() >= kPendingBatchLimit) {
      materialize_locked(session, shadow);
    }
  }
  shadow.schedule = schedule;
  shadow.digest = std::move(digest);
  ++shadow.revision;
  shadow.last_delta_json = std::move(delta_json);
}

void SessionJournal::materialize_locked(std::uint64_t session,
                                        Shadow& shadow) {
  for (const model::Delta& delta : shadow.pending) {
    try {
      shadow.instance = model::apply_delta(shadow.instance, delta);
    } catch (const std::exception& error) {
      throw PersistError("journal: committed delta for session " +
                         std::to_string(session) +
                         " does not apply: " + error.what());
    }
  }
  shadow.pending.clear();
}

void SessionJournal::appended_locked(std::size_t payload_bytes) {
  ++records_appended_;
  bytes_appended_ += payload_bytes;
  dirty_since_flush_ = true;  // wakes the Interval flusher's next cycle
  ++records_since_snapshot_;
  if (config_.snapshot_every != 0 &&
      records_since_snapshot_ >= config_.snapshot_every) {
    snapshot_locked(/*rethrow=*/false);
  }
}

void SessionJournal::record_open(std::uint64_t session, std::uint64_t epoch,
                                 const model::Instance& instance,
                                 const online::SessionOptions& tuning,
                                 const model::Schedule& schedule) {
  util::Json record = util::Json::object();
  record.set("type", "session_open");
  record.set("session", static_cast<long long>(session));
  record.set("epoch", std::to_string(epoch));
  record.set("instance", model::instance_to_json(instance));
  record.set("tuning", tuning_to_json(tuning));
  record.set("schedule", model::schedule_to_json(schedule));
  record.set("digest", schedule_digest(schedule));
  Shadow shadow;
  shadow.epoch = epoch;
  shadow.revision = 0;
  shadow.instance = instance;
  shadow.schedule = schedule;
  shadow.tuning = record.at("tuning");
  shadow.digest = record.at("digest").as_string();
  const std::string payload = record.dump();
  std::lock_guard<std::mutex> guard(mutex_);
  wal_.append(payload);
  open_shadow_locked(session, std::move(shadow));
  appended_locked(payload.size());
}

void SessionJournal::record_commit(std::uint64_t session,
                                   std::uint64_t revision,
                                   const model::Delta& delta,
                                   const model::Schedule& schedule,
                                   const model::Instance* post_instance) {
  // The hot record — one per acked delta, serialized straight into the
  // payload buffer (see append_schedule_json).
  std::string delta_json = api::to_json(delta).dump();
  std::string digest = schedule_digest(schedule);
  std::string payload;
  payload.reserve(delta_json.size() + digest.size() +
                  static_cast<std::size_t>(schedule.num_jobs()) * 4 + 96);
  payload += "{\"type\":\"delta_commit\",\"session\":";
  append_int(payload, static_cast<long long>(session));
  payload += ",\"revision\":";
  append_int(payload, static_cast<long long>(revision));
  payload += ",\"delta\":";
  payload += delta_json;
  payload += ",\"schedule\":";
  append_schedule_json(payload, schedule);
  payload += ",\"digest\":\"";
  payload += digest;
  payload += "\"}";
  std::lock_guard<std::mutex> guard(mutex_);
  Shadow& shadow = checked_commit_shadow_locked(session, revision);
  wal_.append(payload);
  apply_commit_locked(session, shadow, delta, std::move(delta_json),
                      schedule, std::move(digest), post_instance);
  appended_locked(payload.size());
}

void SessionJournal::record_close(std::uint64_t session) {
  std::string payload = "{\"type\":\"session_close\",\"session\":";
  append_int(payload, static_cast<long long>(session));
  payload += "}";
  std::lock_guard<std::mutex> guard(mutex_);
  wal_.append(payload);
  sessions_.erase(session);
  appended_locked(payload.size());
}

util::Json SessionJournal::snapshot_record_locked() {
  // Snapshots read the shadow instances: fold in any deltas still pending
  // from the lazy commit path first.
  for (auto& [session, shadow] : sessions_) {
    materialize_locked(session, shadow);
  }
  util::Json record = util::Json::object();
  record.set("type", "snapshot");
  record.set("max_session_id", static_cast<long long>(max_session_id_));
  util::Json entries = util::Json::array();
  for (const auto& [session, shadow] : sessions_) {
    util::Json entry = util::Json::object();
    entry.set("session", static_cast<long long>(session));
    entry.set("epoch", std::to_string(shadow.epoch));
    entry.set("revision", static_cast<long long>(shadow.revision));
    entry.set("instance", model::instance_to_json(shadow.instance));
    entry.set("tuning", shadow.tuning);
    entry.set("schedule", model::schedule_to_json(shadow.schedule));
    entry.set("digest", shadow.digest);
    if (!shadow.last_delta_json.empty()) {
      entry.set("last_delta", shadow.last_delta_json);
    }
    entries.push_back(std::move(entry));
  }
  record.set("sessions", std::move(entries));
  return record;
}

void SessionJournal::snapshot_locked(bool rethrow) {
  if (BAGSCHED_FAULT("persist.snapshot")) {
    ++snapshot_failures_;
    records_since_snapshot_ = 0;  // back off until the next full window
    if (rethrow) {
      throw PersistError("journal: injected snapshot failure "
                         "(persist.snapshot)");
    }
    return;
  }

  const std::string payload = snapshot_record_locked().dump();
  const std::string tmp = wal_path() + ".tmp";
  try {
    ::unlink(tmp.c_str());
    Wal tmp_wal = Wal::open(tmp, FsyncPolicy::Off);
    tmp_wal.append(payload);
    tmp_wal.sync();
    tmp_wal.close();
  } catch (...) {
    ++snapshot_failures_;
    records_since_snapshot_ = 0;
    ::unlink(tmp.c_str());
    if (rethrow) throw;
    return;  // the live journal is untouched; keep appending to it
  }

  // Point of no return: swap the compacted file in and move the writer
  // over. A failure from here on is a real I/O emergency, not something
  // automatic compaction may shrug off.
  if (::rename(tmp.c_str(), wal_path().c_str()) != 0) {
    ++snapshot_failures_;
    const std::string reason = std::strerror(errno);
    ::unlink(tmp.c_str());
    if (rethrow) {
      throw PersistError("journal: cannot rename " + tmp + " over " +
                         wal_path() + ": " + reason);
    }
    return;
  }
  const int dir_fd = ::open(config_.dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  wal_.close();
  wal_ = Wal::open(wal_path(), wal_policy(), config_.fsync_interval_seconds);
  records_since_snapshot_ = 0;
  ++snapshots_;
}

void SessionJournal::snapshot() {
  std::lock_guard<std::mutex> guard(mutex_);
  snapshot_locked(/*rethrow=*/true);
}

void SessionJournal::sync() {
  std::lock_guard<std::mutex> guard(mutex_);
  wal_.sync();
}

JournalStats SessionJournal::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  JournalStats stats;
  stats.records_appended = records_appended_;
  stats.bytes_appended = bytes_appended_;
  stats.fsyncs =
      wal_.fsyncs() + flusher_fsyncs_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_;
  stats.snapshot_failures = snapshot_failures_;
  stats.records_replayed = records_replayed_;
  stats.sessions_recovered = sessions_recovered_;
  stats.truncated_bytes = truncated_bytes_;
  stats.live_sessions = sessions_.size();
  stats.journal_bytes = wal_.size_bytes();
  return stats;
}

}  // namespace bagsched::persist
