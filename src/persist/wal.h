// Append-only write-ahead log file with CRC-framed records (DESIGN.md §8).
//
// On disk a WAL is a flat sequence of records, each framed as
//
//   [u32 length][u32 crc32c(payload)][payload bytes]
//
// with both header words little-endian. The framing makes every torn
// write — a crash mid-record, a short write at the tail — detectable:
// open() scans the file, keeps the longest valid prefix, and truncates
// the rest, so an append either becomes a durable record or vanishes
// entirely. Nothing here interprets payloads; the session journal on top
// gives them meaning.
//
// Durability policy is configured once at open():
//
//   Always    fsync after every append (slowest, strongest)
//   Interval  fsync when at least `fsync_interval_seconds` passed since
//             the last one (bounded loss window on power failure; no loss
//             at all under plain process death, since completed write()s
//             survive a SIGKILL)
//   Off       never fsync (page cache only)
//
// Fault points (PR 8 machinery): `persist.append` fails an append before
// any byte is written, `persist.fsync` fails a sync, and
// `persist.crash.append` SIGKILLs the process right after the record hit
// the file but before the caller could ack it — the torn-tail and
// recovery tests are built on these.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace bagsched::persist {

/// Filesystem/consistency failure in the persistence layer.
struct PersistError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// When appends are pushed past the page cache; see the header comment.
enum class FsyncPolicy { Always, Interval, Off };

const char* to_string(FsyncPolicy policy);
/// Parses "always" / "interval" / "off"; throws PersistError otherwise.
FsyncPolicy fsync_policy_from_string(const std::string& text);

/// CRC-32C (Castagnoli), the checksum each record's payload is framed
/// with. `crc` chains partial computations; pass 0 to start.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t crc = 0);

/// What open() found in an existing file.
struct WalReplay {
  std::vector<std::string> records;    ///< valid prefix, in append order
  std::uint64_t valid_bytes = 0;       ///< file size after tail truncation
  std::uint64_t truncated_bytes = 0;   ///< torn tail dropped (0 = clean)
};

class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) `path`, validates every record, truncates
  /// any torn tail, and leaves the write cursor at the end. `replay`
  /// (optional) receives the surviving records. Throws PersistError when
  /// the file cannot be opened or truncated.
  static Wal open(const std::string& path, FsyncPolicy policy,
                  double fsync_interval_seconds = 0.1,
                  WalReplay* replay = nullptr);

  /// Appends one framed record and applies the fsync policy. Throws
  /// PersistError on I/O failure (including injected ones); on failure no
  /// ack should be sent — the torn frame, if any, is dropped at next open.
  void append(const std::string& payload);

  /// Unconditional fsync (used by snapshot swaps and shutdown), regardless
  /// of policy. No-op on a closed WAL.
  void sync();

  void close();
  bool is_open() const { return fd_ >= 0; }
  /// Raw descriptor (-1 when closed) — the session journal's background
  /// flusher dups it to fsync without serializing against appends.
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }
  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint64_t appends() const { return appends_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

 private:
  std::string path_;
  int fd_ = -1;
  FsyncPolicy policy_ = FsyncPolicy::Off;
  double fsync_interval_seconds_ = 0.1;
  double last_sync_ = 0.0;  ///< monotonic seconds of the last fsync
  std::uint64_t size_bytes_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
};

}  // namespace bagsched::persist
