#include "persist/wal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/fault.h"

namespace bagsched::persist {
namespace {

constexpr std::uint32_t kCrcPolynomial = 0x82f63b78u;  // CRC-32C, reflected
// A record longer than this is not a record — it's a corrupt length word
// pointing past any journal we would ever write.
constexpr std::uint32_t kMaxRecordBytes = 256u * 1024u * 1024u;
constexpr std::size_t kHeaderBytes = 8;

const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t entries[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kCrcPolynomial : crc >> 1;
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

void put_u32le(unsigned char* out, std::uint32_t value) {
  out[0] = static_cast<unsigned char>(value & 0xffu);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xffu);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xffu);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xffu);
}

std::uint32_t get_u32le(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_fully(int fd, const void* data, std::size_t size,
                 const std::string& path) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t wrote = ::write(fd, cursor, remaining);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw PersistError("wal: write to " + path + " failed: " +
                         std::strerror(errno));
    }
    cursor += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::Always:
      return "always";
    case FsyncPolicy::Interval:
      return "interval";
    case FsyncPolicy::Off:
      return "off";
  }
  return "?";
}

FsyncPolicy fsync_policy_from_string(const std::string& text) {
  if (text == "always") return FsyncPolicy::Always;
  if (text == "interval") return FsyncPolicy::Interval;
  if (text == "off") return FsyncPolicy::Off;
  throw PersistError("unknown fsync policy \"" + text +
                     "\" (expected always, interval or off)");
}

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t crc) {
  const std::uint32_t* table = crc_table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

Wal::~Wal() { close(); }

Wal::Wal(Wal&& other) noexcept { *this = std::move(other); }

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    policy_ = other.policy_;
    fsync_interval_seconds_ = other.fsync_interval_seconds_;
    last_sync_ = other.last_sync_;
    size_bytes_ = other.size_bytes_;
    appends_ = other.appends_;
    fsyncs_ = other.fsyncs_;
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Wal Wal::open(const std::string& path, FsyncPolicy policy,
              double fsync_interval_seconds, WalReplay* replay) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw PersistError("wal: cannot open " + path + ": " +
                       std::strerror(errno));
  }

  // Read the whole file and walk the frames; stop at the first frame that
  // does not validate — everything from there on is the torn tail.
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof buffer);
    if (got < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      throw PersistError("wal: cannot read " + path + ": " +
                         std::strerror(saved));
    }
    if (got == 0) break;
    contents.append(buffer, static_cast<std::size_t>(got));
  }

  std::uint64_t offset = 0;
  std::vector<std::string> records;
  while (contents.size() - offset >= kHeaderBytes) {
    const unsigned char* header =
        reinterpret_cast<const unsigned char*>(contents.data() + offset);
    const std::uint32_t length = get_u32le(header);
    const std::uint32_t expected_crc = get_u32le(header + 4);
    if (length > kMaxRecordBytes) break;
    if (contents.size() - offset - kHeaderBytes < length) break;
    const char* payload = contents.data() + offset + kHeaderBytes;
    if (crc32c(payload, length) != expected_crc) break;
    records.emplace_back(payload, length);
    offset += kHeaderBytes + length;
  }

  const std::uint64_t truncated = contents.size() - offset;
  if (truncated > 0) {
    if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
      const int saved = errno;
      ::close(fd);
      throw PersistError("wal: cannot truncate torn tail of " + path + ": " +
                         std::strerror(saved));
    }
  }
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    const int saved = errno;
    ::close(fd);
    throw PersistError("wal: cannot seek in " + path + ": " +
                       std::strerror(saved));
  }

  if (replay != nullptr) {
    replay->records = std::move(records);
    replay->valid_bytes = offset;
    replay->truncated_bytes = truncated;
  }

  Wal wal;
  wal.path_ = path;
  wal.fd_ = fd;
  wal.policy_ = policy;
  wal.fsync_interval_seconds_ = fsync_interval_seconds;
  wal.last_sync_ = monotonic_seconds();
  wal.size_bytes_ = offset;
  return wal;
}

void Wal::append(const std::string& payload) {
  if (fd_ < 0) throw PersistError("wal: append on a closed log");
  if (payload.size() > kMaxRecordBytes) {
    throw PersistError("wal: record of " + std::to_string(payload.size()) +
                       " bytes exceeds the frame limit");
  }
  if (BAGSCHED_FAULT("persist.append")) {
    throw PersistError("wal: injected append failure (persist.append)");
  }

  unsigned char header[kHeaderBytes];
  put_u32le(header, static_cast<std::uint32_t>(payload.size()));
  put_u32le(header + 4, crc32c(payload.data(), payload.size()));

  // Header and payload go out as one write() so a crash between them can't
  // leave a valid-looking header over garbage (the CRC would catch it
  // anyway, but one syscall is also faster).
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(reinterpret_cast<const char*>(header), kHeaderBytes);
  frame.append(payload);
  write_fully(fd_, frame.data(), frame.size(), path_);
  size_bytes_ += frame.size();
  ++appends_;

  // The record is on file but the caller has not acked it yet — the chaos
  // tests SIGKILL exactly here to prove recovery tolerates that window.
  if (BAGSCHED_FAULT("persist.crash.append")) {
    ::kill(::getpid(), SIGKILL);
  }

  if (policy_ == FsyncPolicy::Always) {
    sync();
  } else if (policy_ == FsyncPolicy::Interval) {
    const double now = monotonic_seconds();
    if (now - last_sync_ >= fsync_interval_seconds_) sync();
  }
}

void Wal::sync() {
  if (fd_ < 0) return;
  if (BAGSCHED_FAULT("persist.fsync")) {
    throw PersistError("wal: injected fsync failure (persist.fsync)");
  }
  if (::fsync(fd_) != 0) {
    throw PersistError("wal: fsync of " + path_ + " failed: " +
                       std::strerror(errno));
  }
  last_sync_ = monotonic_seconds();
  ++fsyncs_;
}

void Wal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bagsched::persist
