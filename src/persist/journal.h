// Durable session journal: the write-ahead log that lets sched_server be
// SIGKILLed and restarted without losing a single acked commit
// (DESIGN.md §8).
//
// The journal records the life of every online session as framed WAL
// records (persist/wal.h) with JSON payloads:
//
//   session_open   {session, epoch, instance, tuning, schedule, digest}
//   delta_commit   {session, revision, delta, schedule, digest}
//   session_close  {session}
//   snapshot       {max_session_id, sessions:[...]} — the whole live state
//                  in one record, written by compaction
//
// The ordering contract with the service is append-before-ack: a commit
// is journaled before its result is resolved to the client, so after a
// crash every acked commit is on disk (recovery invariant: acked ⇒
// recovered) and at most one unacked record — the one being written when
// the process died — may additionally survive; resume-side revision
// dedupe absorbs it.
//
// The journal keeps its own shadow copy of each session (instance,
// committed schedule, revision, tuning) updated identically by live
// appends and by replay, so snapshot compaction and boot-time recovery
// are journal-local: replay() hands back fully materialized sessions and
// the service re-adopts them without re-solving anything.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "model/delta.h"
#include "model/instance.h"
#include "model/schedule.h"
#include "online/session.h"
#include "persist/wal.h"
#include "util/json.h"

namespace bagsched::persist {

struct JournalConfig {
  /// Directory holding journal.wal + the LOCK file. Must already exist;
  /// the journal never creates it (a typo'd path should fail loudly, not
  /// silently journal into a fresh directory).
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::Interval;
  /// Bounded-loss window under Interval: how often the background flusher
  /// fdatasyncs. 100ms balances the power-failure window against the jbd2
  /// stalls each sync inflicts on concurrent appends (process death alone
  /// never loses acked records regardless — completed write()s survive).
  double fsync_interval_seconds = 0.1;
  /// Compact (rewrite the journal as one snapshot record) after this many
  /// appended records; 0 disables automatic compaction.
  std::uint64_t snapshot_every = 4096;
};

struct JournalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t snapshot_failures = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t sessions_recovered = 0;
  std::uint64_t truncated_bytes = 0;  ///< torn tail dropped at open
  std::uint64_t live_sessions = 0;
  std::uint64_t journal_bytes = 0;  ///< current on-disk size
};

/// One session materialized from the journal, ready to re-adopt.
struct RecoveredSession {
  std::uint64_t session = 0;
  std::uint64_t epoch = 0;
  std::uint64_t revision = 0;
  model::Instance instance;      ///< post-delta, as of the last commit
  model::Schedule schedule;      ///< last committed schedule
  online::SessionOptions tuning;
  std::string last_delta_json;   ///< serialized last delta ("" at rev 0)
  std::string digest;            ///< schedule_digest(schedule)
};

/// Everything replay() reconstructed.
struct RecoveredState {
  std::vector<RecoveredSession> sessions;
  /// Highest session id ever journaled (also counts closed sessions), so
  /// a restarted server never reissues an id.
  std::uint64_t max_session_id = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t truncated_bytes = 0;
};

/// Order-sensitive fingerprint of a committed schedule (Hash128 over the
/// machine count and assignment vector), 32 hex chars. This is the
/// "fingerprint-identical" of the recovery invariant: journaled with
/// every commit, verified on replay, echoed by resume_session.
std::string schedule_digest(const model::Schedule& schedule);

class SessionJournal {
 public:
  /// Opens `config.dir/journal.wal` (creating the file, never the
  /// directory) and takes an exclusive flock on `config.dir/LOCK`. Throws
  /// PersistError with an actionable message when the directory is
  /// missing, not writable, or locked by another live server.
  explicit SessionJournal(JournalConfig config);
  ~SessionJournal();

  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  /// Replays whatever open() found (snapshot record first, then the
  /// incremental records after it) into RecoveredState. Call once, before
  /// the first record_*; a fresh journal replays to an empty state.
  /// Throws PersistError on a CRC-valid but semantically corrupt record
  /// (unparseable JSON, digest mismatch) — that is a bug, not a torn tail.
  RecoveredState replay();

  /// Journals a session's birth: the instance and tuning it was opened
  /// with and its first committed schedule. Throws PersistError when the
  /// append fails — the caller must then fail the session, not ack it.
  void record_open(std::uint64_t session, std::uint64_t epoch,
                   const model::Instance& instance,
                   const online::SessionOptions& tuning,
                   const model::Schedule& schedule);

  /// Journals one committed delta; `revision` is the session's revision
  /// AFTER the commit and must advance by exactly 1. `post_instance`, when
  /// the caller already holds the post-delta instance (the live service
  /// does — its session just applied the delta), is copied into the shadow
  /// instead of re-deriving it through apply_delta, keeping the
  /// append-before-ack path free of per-commit instance rebuilds; replay
  /// re-derives from the journaled deltas either way, and the recovery
  /// tests pin both paths to fingerprint-identical results.
  void record_commit(std::uint64_t session, std::uint64_t revision,
                     const model::Delta& delta,
                     const model::Schedule& schedule,
                     const model::Instance* post_instance = nullptr);

  void record_close(std::uint64_t session);

  /// Compacts now: writes the whole live state as one snapshot record to
  /// journal.wal.tmp, fsyncs, atomically renames over journal.wal, and
  /// switches the writer. Crash-safe at every step (the old journal stays
  /// valid until the rename). Throws on failure; automatic compaction
  /// (every snapshot_every records) swallows the error and keeps
  /// appending to the old file instead.
  void snapshot();

  /// Unconditional fsync of the current file (shutdown, tests).
  void sync();

  JournalStats stats() const;
  const JournalConfig& config() const { return config_; }
  std::string wal_path() const;
  std::string lock_path() const;

 private:
  struct Shadow {
    std::uint64_t epoch = 0;
    std::uint64_t revision = 0;
    /// As of the last materialization; `pending` holds the committed
    /// deltas not yet folded in. apply_delta() rebuilds the whole
    /// instance, so folding eagerly would tax every ack with work only
    /// snapshots and recovery actually consume — deltas are batched and
    /// applied in order when (and only when) the instance is read.
    model::Instance instance;
    std::vector<model::Delta> pending;
    model::Schedule schedule;
    util::Json tuning;
    std::string last_delta_json;
    std::string digest;
  };

  /// Parses one replayed record and funnels it into the same typed
  /// mutation path (open_shadow/commit_shadow) the live appends use.
  void ingest_locked(const util::Json& record);
  /// The shared typed mutation paths: the revision invariant and shadow
  /// updates run through here whether the record arrives live or from
  /// replay (live appends validate, then write, then mutate — an append
  /// failure must leave the shadow untouched).
  void open_shadow_locked(std::uint64_t session, Shadow shadow);
  Shadow& checked_commit_shadow_locked(std::uint64_t session,
                                       std::uint64_t revision);
  void apply_commit_locked(std::uint64_t session, Shadow& shadow,
                           const model::Delta& delta, std::string delta_json,
                           const model::Schedule& schedule, std::string digest,
                           const model::Instance* post_instance);
  /// Folds `pending` into the shadow instance (PersistError on a delta
  /// that does not apply — a corrupt journal, not a torn tail).
  void materialize_locked(std::uint64_t session, Shadow& shadow);
  /// Record-count/byte bookkeeping + auto-compaction; call after append.
  void appended_locked(std::size_t payload_bytes);
  util::Json snapshot_record_locked();
  void snapshot_locked(bool rethrow);

  /// The WAL policy the file is opened with: under Interval the journal
  /// runs its own background flusher (see flusher_main) and keeps the WAL
  /// itself at Off so appends — the ack path — never block on an fsync.
  FsyncPolicy wal_policy() const;
  void flusher_main();

  JournalConfig config_;
  int lock_fd_ = -1;
  Wal wal_;
  std::vector<std::string> pending_replay_;  ///< records found at open
  bool replayed_ = false;

  std::thread flusher_;
  std::mutex flusher_mutex_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;               ///< guarded by flusher_mutex_
  bool dirty_since_flush_ = false;          ///< guarded by mutex_
  std::atomic<std::uint64_t> flusher_fsyncs_{0};

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Shadow> sessions_;  ///< ordered: stable snapshots
  std::uint64_t max_session_id_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t snapshot_failures_ = 0;
  std::uint64_t records_replayed_ = 0;
  std::uint64_t sessions_recovered_ = 0;
  std::uint64_t truncated_bytes_ = 0;
};

}  // namespace bagsched::persist
