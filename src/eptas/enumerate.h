// The paper's MILP, literally (section 3): full enumeration of the
// Definition-3 patterns and the exact constraint system (1)-(9) with
// per-pattern small-job variables y^{B_l^s}_p.
//
// This is intractable beyond small instances — exactly as the paper's
// constants predict — but it serves three purposes:
//  * fidelity: the published program, runnable and testable;
//  * cross-check: on instances where both run, the enumerated MILP and the
//    column-generated master (milp_model.h) must agree on feasibility;
//  * measurement: bench_enumerated quantifies the blow-up the practical
//    profile avoids.
//
// Enable it end-to-end with EptasConfig::use_enumerated_milp.
#pragma once

#include <optional>
#include <vector>

#include "eptas/classify.h"
#include "eptas/config.h"
#include "eptas/milp_model.h"
#include "eptas/pattern.h"
#include "eptas/transform.h"

namespace bagsched::eptas {

/// Depth-first enumeration of every valid pattern (Definition 3): at most
/// one entry per priority bag, arbitrary B_x multiplicities, height <= T'.
/// Returns nullopt when more than max_patterns exist (the theory-sized
/// blow-up; callers fall back to column generation).
std::optional<std::vector<Pattern>> enumerate_all_patterns(
    const PatternSpace& space, int max_patterns);

struct EnumeratedStats {
  int patterns = 0;
  int y_variables = 0;
  int constraints = 0;
  long long milp_nodes = 0;
};

/// Builds and solves the literal MILP (1)-(9) over all patterns.
/// Constraint mapping:
///  (1) sum x_p <= m
///  (2) coverage of every medium/large size-restricted bag (priority and
///      B_x pools)
///  (3) coverage of every small size-restricted bag by y variables
///  (4) per pattern: small area on top <= x_p * (T' - height(p))
///  (5) per (pattern, bag): count of small jobs <= x_p, zero when the
///      pattern holds an ml job of the bag
///  (6) x_p integral
///  (7)-(9) y continuous (the paper makes a vanishing subset integral —
///      sizes above eps^{2k+11}; below any practical resolution, see
///      DESIGN.md §3 — pass integral_y to force them all integral).
/// Returns the chosen patterns, or nullopt when infeasible / over budget.
std::optional<MasterSolution> solve_enumerated_master(
    const PatternSpace& space, const Transformed& transformed,
    const Classification& cls, const EptasConfig& config,
    bool integral_y = false, EnumeratedStats* stats = nullptr);

}  // namespace bagsched::eptas
