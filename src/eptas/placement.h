// Placement of medium and large jobs according to the master solution
// (paper §3.1, Lemma 7).
//
// Priority-bag jobs go into their designated pattern slots. Non-priority
// large jobs fill the B_x slots greedily (most-remaining bag first); when a
// slot would create a conflict, a same-size swap repairs it — first among
// other B_x slots, then, as in the paper's proof, against a well-placed
// priority job (such moves are recorded via `origin` so Lemma 11's repair
// can later undo their interaction with small jobs).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "eptas/classify.h"
#include "eptas/config.h"
#include "eptas/milp_model.h"
#include "eptas/pattern.h"
#include "eptas/transform.h"
#include "model/schedule.h"

namespace bagsched::eptas {

struct PlacementResult {
  /// Schedule over I' with all medium/large jobs assigned (smalls pending).
  model::Schedule schedule;
  /// Per machine: index into master.patterns (-1 = empty pattern).
  std::vector<int> machine_pattern;
  /// Per machine: load of placed ml jobs.
  std::vector<double> ml_load;
  /// Per priority ml job: the machine its pattern slot lives on (the
  /// "origin" of paper Lemma 11). Jobs moved by swaps keep their origin.
  std::unordered_map<model::JobId, int> origin;
  int swaps = 0;    ///< same-size swap repairs performed (Lemma 7)
  int rescues = 0;  ///< placements outside the pattern structure
};

/// Returns nullopt only when rescue is disabled and a conflict cannot be
/// repaired by swapping.
std::optional<PlacementResult> place_ml_jobs(const Transformed& transformed,
                                             const PatternSpace& space,
                                             const MasterSolution& master,
                                             const EptasConfig& config);

}  // namespace bagsched::eptas
