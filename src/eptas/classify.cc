#include "eptas/classify.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/grid.h"

namespace bagsched::eptas {

using model::BagId;
using model::Instance;
using model::JobId;

long long paper_b_prime(int d, double q) {
  const long long qi = static_cast<long long>(std::ceil(q));
  return (static_cast<long long>(d) * qi + 1) * qi;
}

std::optional<Classification> classify(
    const Instance& scaled, double eps, const EptasConfig& config,
    const std::vector<double>* precomputed_rounded) {
  Classification cls;
  cls.eps = eps;
  cls.target_height = 1.0 + 2.0 * eps + eps * eps;

  const util::EpsGrid grid(eps);
  const int n = scaled.num_jobs();
  const int m = scaled.num_machines();

  // --- Rounding ------------------------------------------------------------
  cls.rounded_size.resize(static_cast<std::size_t>(n));
  double rounded_area = 0.0;
  for (JobId j = 0; j < n; ++j) {
    const double rounded =
        precomputed_rounded != nullptr
            ? (*precomputed_rounded)[static_cast<std::size_t>(j)]
            : grid.round_up(scaled.job(j).size);
    cls.rounded_size[static_cast<std::size_t>(j)] = rounded;
    rounded_area += rounded;
    // A job larger than (1+eps) cannot fit below the guessed makespan.
    if (rounded > 1.0 + eps + 1e-9) return std::nullopt;
  }
  // Rounding turns an OPT=1 schedule into an OPT<=1+eps one; if even the
  // average load exceeds that, the guess is too small.
  if (rounded_area > (1.0 + eps) * m + 1e-9) return std::nullopt;

  // --- Lemma 1: choose k in N_{<= 1/eps^2} with band area <= eps^2 * m ----
  const int k_max = static_cast<int>(std::ceil(1.0 / (eps * eps)));
  int chosen_k = -1;
  for (int k = 1; k <= k_max; ++k) {
    const double hi = std::pow(eps, k);
    const double lo = std::pow(eps, k + 1);
    double band_area = 0.0;
    for (JobId j = 0; j < n; ++j) {
      const double p = cls.rounded_size[static_cast<std::size_t>(j)];
      if (p >= lo - 1e-15 && p < hi - 1e-15) band_area += p;
    }
    if (band_area <= eps * eps * m + 1e-9) {
      chosen_k = k;
      break;  // smallest k keeps the large class as coarse as possible
    }
  }
  if (chosen_k < 0) return std::nullopt;  // impossible when area <= (1+eps)m
  cls.k = chosen_k;
  cls.large_threshold = std::pow(eps, chosen_k);
  cls.medium_threshold = std::pow(eps, chosen_k + 1);

  // --- Job classes and distinct sizes --------------------------------------
  cls.job_class.resize(static_cast<std::size_t>(n));
  std::set<double> large_set, medium_set, small_set;
  for (JobId j = 0; j < n; ++j) {
    const double p = cls.rounded_size[static_cast<std::size_t>(j)];
    JobClass job_class;
    if (p >= cls.large_threshold - 1e-15) {
      job_class = JobClass::Large;
      large_set.insert(p);
    } else if (p >= cls.medium_threshold - 1e-15) {
      job_class = JobClass::Medium;
      medium_set.insert(p);
    } else {
      job_class = JobClass::Small;
      small_set.insert(p);
    }
    cls.job_class[static_cast<std::size_t>(j)] = job_class;
  }
  cls.large_sizes.assign(large_set.rbegin(), large_set.rend());
  cls.small_sizes.assign(small_set.rbegin(), small_set.rend());
  std::set<double> ml_set = large_set;
  ml_set.insert(medium_set.begin(), medium_set.end());
  cls.ml_sizes.assign(ml_set.rbegin(), ml_set.rend());

  // --- Paper constants ------------------------------------------------------
  cls.d = static_cast<int>(cls.large_sizes.size());
  cls.q = cls.target_height / cls.medium_threshold;
  cls.b_prime = paper_b_prime(cls.d, cls.q);

  // --- Large bags (>= eps*m medium-or-large jobs) --------------------------
  const int b = scaled.num_bags();
  cls.is_large_bag.assign(static_cast<std::size_t>(b), false);
  for (BagId l = 0; l < b; ++l) {
    int ml_count = 0;
    for (JobId j : scaled.bag(l)) {
      if (cls.class_of(j) != JobClass::Small) ++ml_count;
    }
    if (ml_count >= eps * m - 1e-9) {
      cls.is_large_bag[static_cast<std::size_t>(l)] = true;
    }
  }

  // --- Priority bags (Definition 2) -----------------------------------------
  // For each large size s, sort bags by |B_l^s| descending (the paper's
  // index function o_s) and mark the first `cutoff` bags as priority.
  long long cutoff = cls.b_prime;
  if (config.profile == ConstantsProfile::Practical) {
    cutoff = std::min<long long>(cutoff, config.max_priority_per_size);
  }
  cls.priority_cutoff = static_cast<int>(cutoff);

  cls.is_priority = cls.is_large_bag;  // every large bag is priority
  for (const double s : cls.large_sizes) {
    std::map<BagId, int> count;
    for (JobId j = 0; j < n; ++j) {
      if (cls.class_of(j) == JobClass::Large &&
          util::approx_eq(cls.size_of(j), s)) {
        ++count[scaled.job(j).bag];
      }
    }
    std::vector<std::pair<int, BagId>> ordered;  // (-count, bag): sort desc
    ordered.reserve(count.size());
    for (const auto& [bag, c] : count) ordered.emplace_back(-c, bag);
    std::sort(ordered.begin(), ordered.end());
    for (std::size_t i = 0;
         i < ordered.size() && i < static_cast<std::size_t>(cutoff); ++i) {
      cls.is_priority[static_cast<std::size_t>(ordered[i].second)] = true;
    }
  }

  // Practical profile: keep |A| bounded. Drop the priority flag from the
  // bags with the fewest medium-or-large jobs until the cap holds. (Large
  // bags are never dropped; their count is O(1/eps^{k+2}) by the paper.)
  if (config.profile == ConstantsProfile::Practical) {
    std::vector<std::pair<int, BagId>> priority_list;  // (ml count, bag)
    for (BagId l = 0; l < b; ++l) {
      if (!cls.is_priority[static_cast<std::size_t>(l)] ||
          cls.is_large_bag[static_cast<std::size_t>(l)]) {
        continue;
      }
      int ml_count = 0;
      for (JobId j : scaled.bag(l)) {
        if (cls.class_of(j) != JobClass::Small) ++ml_count;
      }
      priority_list.emplace_back(ml_count, l);
    }
    int total_priority = 0;
    for (BagId l = 0; l < b; ++l) {
      if (cls.is_priority[static_cast<std::size_t>(l)]) ++total_priority;
    }
    std::sort(priority_list.begin(), priority_list.end());
    for (const auto& [ml_count, bag] : priority_list) {
      if (total_priority <= config.max_priority_total) break;
      cls.is_priority[static_cast<std::size_t>(bag)] = false;
      --total_priority;
    }
  }

  return cls;
}

}  // namespace bagsched::eptas
