// Small-job scheduling (paper §4), medium re-insertion (Lemma 3) and the
// lift back to the original instance (Lemma 4).
//
// Small jobs: machines holding the same pattern form groups; per small bag,
// group-bag-LPT assigns at most |group| jobs per group (skipping groups
// whose pattern contains the bag), then bag-LPT places them inside each
// group — Lemmas 8-10. Conflicts created by earlier Lemma-7 swaps of
// priority jobs are repaired with the origin-chain walk of Lemma 11.
//
// Medium jobs removed by the transformation come back through the Lemma 3
// flow network, and filler swaps (Lemma 4) turn the I' schedule into a
// feasible schedule of the original instance.
#pragma once

#include <optional>
#include <vector>

#include "eptas/classify.h"
#include "eptas/config.h"
#include "eptas/placement.h"
#include "model/schedule.h"

namespace bagsched::eptas {

struct SmallJobStats {
  int origin_repairs = 0;   ///< Lemma 11 chain walks performed
  int lift_swaps = 0;       ///< Lemma 4 filler swaps performed
  int rescues = 0;          ///< placements outside the lemma structure
};

/// Schedules every small job of I' on top of `placement` (updates its
/// schedule in place). Returns false only when rescue is disabled and a
/// conflict cannot be repaired.
bool schedule_small_jobs(const Transformed& transformed,
                         const Classification& cls,
                         const PatternSpace& space,
                         const MasterSolution& master,
                         PlacementResult& placement,
                         const EptasConfig& config, SmallJobStats& stats);

/// Lemma 3: assigns the removed non-priority medium jobs to machines via a
/// flow network (no machine receives a job of a bag whose large-part jobs it
/// already holds, and at most one medium per original bag per machine).
/// `original` is the instance the mediums come from (only its bag structure
/// is read). Returns machine per removed medium (parallel to
/// transformed.removed_medium), or nullopt when no assignment exists or
/// `cancel` fires between capacity-ramp rounds.
std::optional<std::vector<int>> insert_medium_jobs(
    const model::Instance& original, const Transformed& transformed,
    const PlacementResult& placement,
    const util::CancellationToken* cancel = nullptr);

/// Lemma 4: resolves conflicts between small jobs and medium/large jobs of
/// the same *original* bag by swapping with filler jobs, then produces the
/// final schedule of the original (scaled) instance. `medium_machine` is
/// parallel to transformed.removed_medium.
///
/// When `cls` is given, the removed mediums' load bookkeeping (which only
/// steers rescue tie-breaks) uses their rounded sizes, making the result a
/// pure function of the rounded grid — the guess search relies on this to
/// share outcomes between guesses that round identically. Without it the
/// raw sizes of `original` are used, as before.
model::Schedule lift_solution(const model::Instance& original,
                              const Transformed& transformed,
                              PlacementResult& placement,
                              const std::vector<int>& medium_machine,
                              const EptasConfig& config,
                              SmallJobStats& stats,
                              const Classification* cls = nullptr);

}  // namespace bagsched::eptas
