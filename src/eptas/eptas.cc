#include "eptas/eptas.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "eptas/classify.h"
#include "eptas/enumerate.h"
#include "eptas/milp_model.h"
#include "eptas/pattern.h"
#include "eptas/placement.h"
#include "eptas/small_jobs.h"
#include "eptas/transform.h"
#include "model/lower_bounds.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "util/logging.h"

namespace bagsched::eptas {

using model::Instance;
using model::Schedule;

namespace {

/// Scales every size by 1/guess so the target makespan becomes 1.
Instance scale_instance(const Instance& instance, double guess) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  sizes.reserve(static_cast<std::size_t>(instance.num_jobs()));
  bags.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  return Instance::from_vectors(sizes, bags, instance.num_machines());
}

}  // namespace

std::optional<Schedule> try_makespan_guess(const Instance& instance,
                                           double eps, double guess,
                                           const EptasConfig& config,
                                           EptasStats* stats) {
  const Instance scaled = scale_instance(instance, guess);

  const auto cls = classify(scaled, eps, config);
  if (!cls) return std::nullopt;

  const Transformed transformed = transform(scaled, *cls);
  const PatternSpace space = build_pattern_space(transformed, *cls);

  std::optional<MasterSolution> master;
  if (config.use_enumerated_milp) {
    // The paper's literal MILP; on enumeration blow-up fall back to the
    // column-generated master (same program, restricted columns).
    if (enumerate_all_patterns(space, config.max_patterns)) {
      master = solve_enumerated_master(space, transformed, *cls, config);
      if (!master) return std::nullopt;  // proven infeasible at this guess
    }
  }
  if (!master) {
    master = solve_master(space, transformed, *cls, config);
  }
  if (!master) return std::nullopt;

  auto placement = place_ml_jobs(transformed, space, *master, config);
  if (!placement) return std::nullopt;

  SmallJobStats small_stats;
  if (!schedule_small_jobs(transformed, *cls, space, *master, *placement,
                           config, small_stats)) {
    return std::nullopt;
  }

  const auto medium_machine =
      insert_medium_jobs(scaled, transformed, *placement);
  if (!medium_machine) return std::nullopt;

  Schedule lifted = lift_solution(scaled, transformed, *placement,
                                  *medium_machine, config, small_stats);

  // Final gate: the lifted schedule must be a complete, bag-feasible
  // schedule of the *original* instance (assignments transfer verbatim
  // because the scaling was uniform).
  const auto validation = model::validate(instance, lifted);
  if (!validation.ok()) {
    BAGSCHED_LOG(Debug) << "guess " << guess
                        << " rejected: " << validation.message;
    return std::nullopt;
  }

  if (stats != nullptr) {
    stats->columns = master->stats.columns;
    stats->pricing_rounds = master->stats.pricing_rounds;
    stats->lp_iterations = master->stats.lp_iterations;
    stats->milp_nodes = master->stats.milp_nodes;
    stats->swaps = placement->swaps;
    stats->origin_repairs = small_stats.origin_repairs;
    stats->lift_swaps = small_stats.lift_swaps;
    stats->rescues = placement->rescues + small_stats.rescues;
  }
  return lifted;
}

EptasResult eptas_schedule(const Instance& instance, double eps,
                           const EptasConfig& config) {
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("eptas_schedule: eps must be in (0, 1)");
  }
  if (!instance.is_feasible()) {
    throw std::invalid_argument(
        "eptas_schedule: a bag has more jobs than machines");
  }

  EptasResult result;
  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0, instance.num_machines());
    return result;
  }

  // Propagate the cancellation token into the per-guess MILP when the
  // caller did not wire it explicitly.
  EptasConfig effective = config;
  if (effective.milp.cancel == nullptr) {
    effective.milp.cancel = effective.cancel;
  }

  // Bounds for the dual-approximation search.
  const double lower = model::combined_lower_bound(instance);
  Schedule fallback = sched::greedy_bags(instance);
  sched::improve(instance, fallback,
                 sched::LocalSearchOptions{.max_moves = 20000,
                                           .cancel = effective.cancel});
  const double upper = fallback.makespan(instance);
  result.stats.lower_bound = lower;
  result.stats.greedy_upper = upper;

  // Guess grid: lower * (1 + eps*step)^i, i = 0 .. covers upper.
  const double step = 1.0 + eps * effective.guess_step_fraction;
  int num_guesses = 1;
  while (lower * std::pow(step, num_guesses - 1) < upper - 1e-12) {
    ++num_guesses;
  }

  // Binary search for the smallest successful guess (the standard dual
  // approximation argument: every T >= OPT "should" succeed; failures from
  // the practical caps only push the search upward, never break
  // feasibility of the result).
  int lo = 0;
  int hi = num_guesses;  // `hi` == num_guesses means "no guess succeeded"
  std::optional<Schedule> best;
  EptasStats best_stats;
  while (lo < hi) {
    if (util::stop_requested(effective.cancel)) break;
    const int mid = lo + (hi - lo) / 2;
    const double guess = lower * std::pow(step, mid);
    EptasStats guess_stats;
    ++result.stats.guesses_tried;
    auto schedule =
        try_makespan_guess(instance, eps, guess, effective, &guess_stats);
    if (schedule) {
      best = std::move(schedule);
      best_stats = guess_stats;
      best_stats.final_guess = guess;
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  if (best) {
    const double eptas_makespan = best->makespan(instance);
    const int guesses = result.stats.guesses_tried;
    const double lb = result.stats.lower_bound;
    const double ub = result.stats.greedy_upper;
    result.stats = best_stats;
    result.stats.guesses_tried = guesses;
    result.stats.lower_bound = lb;
    result.stats.greedy_upper = ub;
    result.stats.pipeline_succeeded = true;
    result.stats.pipeline_makespan = eptas_makespan;
    if (eptas_makespan <= upper + 1e-12) {
      result.schedule = std::move(*best);
      result.makespan = eptas_makespan;
      return result;
    }
  }
  // Fallback: heuristic schedule, either because no guess succeeded or
  // because the heuristic was strictly better than the pipeline's result.
  result.schedule = std::move(fallback);
  result.makespan = upper;
  result.stats.used_fallback = true;
  return result;
}

}  // namespace bagsched::eptas
