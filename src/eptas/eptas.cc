#include "eptas/eptas.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "eptas/guess_search.h"
#include "model/lower_bounds.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"

namespace bagsched::eptas {

using model::Instance;
using model::Schedule;

EptasResult eptas_schedule(const Instance& instance, double eps,
                           const EptasConfig& config) {
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("eptas_schedule: eps must be in (0, 1)");
  }
  if (!instance.is_feasible()) {
    throw std::invalid_argument(
        "eptas_schedule: a bag has more jobs than machines");
  }

  EptasResult result;
  if (instance.num_jobs() == 0) {
    result.schedule = Schedule(0, instance.num_machines());
    return result;
  }

  // Propagate the cancellation token into the per-guess MILP when the
  // caller did not wire it explicitly.
  EptasConfig effective = config;
  if (effective.milp.cancel == nullptr) {
    effective.milp.cancel = effective.cancel;
  }

  // Bounds for the dual-approximation search.
  const double lower = model::combined_lower_bound(instance);
  Schedule fallback = sched::greedy_bags(instance);
  sched::improve(instance, fallback,
                 sched::LocalSearchOptions{.max_moves = 20000,
                                           .cancel = effective.cancel});
  const double upper = fallback.makespan(instance);
  result.stats.lower_bound = lower;
  result.stats.greedy_upper = upper;

  // Guess grid: lower * (1 + eps*step)^i, i = 0 .. covers upper.
  const double step = 1.0 + eps * effective.guess_step_fraction;
  int num_guesses = 1;
  while (lower * std::pow(step, num_guesses - 1) < upper - 1e-12) {
    ++num_guesses;
  }

  // Search for the smallest successful guess (the standard dual
  // approximation argument: every T >= OPT "should" succeed; failures from
  // the practical caps only push the search upward, never break
  // feasibility of the result). guess_search.cc probes guesses — possibly
  // speculatively in parallel, with cross-guess reuse — but consumes the
  // outcomes in the sequential binary-search order, so the result is
  // bit-identical at every thread count.
  GuessSearchResult search =
      run_guess_search(instance, eps, lower, step, num_guesses, effective);

  const int guesses = search.guesses_tried;
  result.stats = search.best_stats;
  result.stats.guesses_tried = guesses;
  result.stats.lower_bound = lower;
  result.stats.greedy_upper = upper;
  result.stats.threads_used = search.threads_used;
  result.stats.probes_launched = search.probes_launched;
  result.stats.probes_cancelled = search.probes_cancelled;
  result.stats.probes_memo_hits = search.memo_hits;
  result.stats.columns_warm_started = search.columns_warm_started;
  result.stats.pricing_rounds_saved = search.pricing_rounds_saved;

  if (search.best) {
    const double eptas_makespan = search.best->makespan(instance);
    result.stats.final_guess =
        lower * std::pow(step, search.best_index);
    result.stats.pipeline_succeeded = true;
    result.stats.pipeline_makespan = eptas_makespan;
    if (eptas_makespan <= upper + 1e-12) {
      result.schedule = std::move(*search.best);
      result.makespan = eptas_makespan;
      return result;
    }
  }
  // Fallback: heuristic schedule, either because no guess succeeded or
  // because the heuristic was strictly better than the pipeline's result.
  result.schedule = std::move(fallback);
  result.makespan = upper;
  result.stats.used_fallback = true;
  return result;
}

}  // namespace bagsched::eptas
