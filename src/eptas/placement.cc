#include "eptas/placement.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "util/cancellation.h"
#include "util/grid.h"
#include "util/logging.h"

namespace bagsched::eptas {

using model::BagId;
using model::JobId;

namespace {

/// Mutable placement state shared by the helpers below.
struct State {
  const Transformed* transformed = nullptr;
  PlacementResult result;
  /// Per machine: set of I' bags with an ml job on it.
  std::vector<std::set<BagId>> bags_on;

  bool conflicts(int machine, BagId bag) const {
    return bags_on[static_cast<std::size_t>(machine)].count(bag) > 0;
  }

  void put(JobId job, int machine) {
    const BagId bag = transformed->instance.job(job).bag;
    result.schedule.assign(job, machine);
    bags_on[static_cast<std::size_t>(machine)].insert(bag);
    result.ml_load[static_cast<std::size_t>(machine)] +=
        transformed->instance.job(job).size;
  }

  void remove(JobId job) {
    const int machine = result.schedule.machine_of(job);
    const BagId bag = transformed->instance.job(job).bag;
    result.schedule.assign(job, model::kUnassigned);
    bags_on[static_cast<std::size_t>(machine)].erase(bag);
    result.ml_load[static_cast<std::size_t>(machine)] -=
        transformed->instance.job(job).size;
  }
};

/// Tries the paper's Lemma-7 swap: find an already-placed ml job `other` of
/// the same size on machine d such that `other`'s bag is absent from
/// `machine` and `bag` is absent from d. On success `other` moves to
/// `machine` and the caller may place the new job on d. Returns d or -1.
int find_swap_partner(State& state, double size, BagId bag, int machine,
                      const std::vector<JobId>& candidates) {
  const auto& inst = state.transformed->instance;
  for (JobId other : candidates) {
    if (!state.result.schedule.is_assigned(other)) continue;
    if (!util::approx_eq(inst.job(other).size, size)) continue;
    const int d = state.result.schedule.machine_of(other);
    if (d == machine) continue;
    const BagId other_bag = inst.job(other).bag;
    if (other_bag == bag) continue;
    if (state.conflicts(machine, other_bag)) continue;
    if (state.conflicts(d, bag)) continue;
    state.remove(other);
    state.put(other, machine);
    ++state.result.swaps;
    return d;
  }
  return -1;
}

/// Least-ml-loaded machine without the bag; -1 when every machine conflicts.
int rescue_machine(const State& state, BagId bag) {
  int best = -1;
  double best_load = std::numeric_limits<double>::infinity();
  for (int machine = 0;
       machine < state.transformed->instance.num_machines(); ++machine) {
    if (state.conflicts(machine, bag)) continue;
    if (state.result.ml_load[static_cast<std::size_t>(machine)] <
        best_load) {
      best_load = state.result.ml_load[static_cast<std::size_t>(machine)];
      best = machine;
    }
  }
  return best;
}

}  // namespace

std::optional<PlacementResult> place_ml_jobs(const Transformed& transformed,
                                             const PatternSpace& space,
                                             const MasterSolution& master,
                                             const EptasConfig& config) {
  const model::Instance& inst = transformed.instance;
  const int m = inst.num_machines();

  State state;
  state.transformed = &transformed;
  state.result.schedule = model::Schedule(inst.num_jobs(), m);
  state.result.machine_pattern.assign(static_cast<std::size_t>(m), -1);
  state.result.ml_load.assign(static_cast<std::size_t>(m), 0.0);
  state.bags_on.assign(static_cast<std::size_t>(m), {});

  // Expand patterns to machines.
  {
    int machine = 0;
    for (std::size_t p = 0; p < master.patterns.size(); ++p) {
      for (int c = 0; c < master.multiplicity[p]; ++c) {
        if (machine >= m) return std::nullopt;  // master violated R1
        state.result.machine_pattern[static_cast<std::size_t>(machine)] =
            static_cast<int>(p);
        ++machine;
      }
    }
  }

  // ---- Priority bags: jobs into their designated slots (with origin). ----
  for (int i = 0; i < space.num_priority(); ++i) {
    // A deadline or a dominated-probe cancel must not stall for the whole
    // placement stage; an aborted placement reads as a failed guess.
    if (util::stop_requested(config.cancel)) return std::nullopt;
    const auto& pbag = space.priority_bags[static_cast<std::size_t>(i)];
    for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
      // Jobs of this size-restricted bag.
      std::vector<JobId> jobs;
      for (JobId j : inst.bag(pbag.bag)) {
        if (transformed.class_of(j) != JobClass::Small &&
            util::approx_eq(inst.job(j).size, pbag.sizes[s])) {
          jobs.push_back(j);
        }
      }
      // Slots: machines whose pattern chose (i, s).
      std::size_t next = 0;
      for (int machine = 0; machine < m && next < jobs.size(); ++machine) {
        const int p = state.result
                          .machine_pattern[static_cast<std::size_t>(machine)];
        if (p < 0) continue;
        if (master.patterns[static_cast<std::size_t>(p)]
                .pchoice[static_cast<std::size_t>(i)] !=
            static_cast<int>(s)) {
          continue;
        }
        state.put(jobs[next], machine);
        state.result.origin[jobs[next]] = machine;
        ++next;
      }
      if (next < jobs.size()) {
        // Coverage row guaranteed enough slots; only a master violation can
        // leave jobs over. Rescue or fail.
        for (; next < jobs.size(); ++next) {
          if (!config.enable_rescue) return std::nullopt;
          const int machine = rescue_machine(state, pbag.bag);
          if (machine < 0) return std::nullopt;
          state.put(jobs[next], machine);
          state.result.origin[jobs[next]] = machine;
          ++state.result.rescues;
        }
      }
    }
  }

  // ---- Non-priority (B_x) large jobs: greedy + swap repair (Lemma 7). ----
  // Candidates for priority-side swaps, per size: all priority ml jobs.
  std::vector<JobId> priority_ml;
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    const BagId bag = inst.job(j).bag;
    if (transformed.is_priority[static_cast<std::size_t>(bag)] &&
        transformed.class_of(j) != JobClass::Small) {
      priority_ml.push_back(j);
    }
  }

  for (int s = 0; s < space.num_x_sizes(); ++s) {
    const double size = space.x_sizes[static_cast<std::size_t>(s)];
    // Jobs of this x size grouped by (large-part) bag.
    std::vector<std::vector<JobId>> by_bag;
    {
      std::vector<JobId> jobs;
      for (JobId j = 0; j < inst.num_jobs(); ++j) {
        const BagId bag = inst.job(j).bag;
        if (!transformed.is_priority[static_cast<std::size_t>(bag)] &&
            transformed.class_of(j) == JobClass::Large &&
            util::approx_eq(inst.job(j).size, size)) {
          jobs.push_back(j);
        }
      }
      std::map<BagId, std::vector<JobId>> grouped;
      for (JobId j : jobs) grouped[inst.job(j).bag].push_back(j);
      for (auto& [bag, list] : grouped) by_bag.push_back(std::move(list));
    }
    // Slot queue: (machine) repeated xcount times.
    std::vector<int> slots;
    for (int machine = 0; machine < m; ++machine) {
      const int p =
          state.result.machine_pattern[static_cast<std::size_t>(machine)];
      if (p < 0) continue;
      const int count = master.patterns[static_cast<std::size_t>(p)]
                            .xcount[static_cast<std::size_t>(s)];
      for (int c = 0; c < count; ++c) slots.push_back(machine);
    }
    // Already-placed x jobs of this size (swap candidates).
    std::vector<JobId> placed_here;

    std::size_t slot_index = 0;
    auto jobs_remaining = [&]() {
      std::size_t total = 0;
      for (const auto& list : by_bag) total += list.size();
      return total;
    };
    while (jobs_remaining() > 0) {
      if (util::stop_requested(config.cancel)) return std::nullopt;
      // Pick the bag with the most remaining jobs (the paper's greedy).
      std::size_t best_bag = 0;
      for (std::size_t g = 1; g < by_bag.size(); ++g) {
        if (by_bag[g].size() > by_bag[best_bag].size()) best_bag = g;
      }
      JobId job = by_bag[best_bag].back();
      BagId bag = inst.job(job).bag;

      if (slot_index < slots.size()) {
        const int machine = slots[slot_index++];
        if (!state.conflicts(machine, bag)) {
          state.put(job, machine);
          by_bag[best_bag].pop_back();
          placed_here.push_back(job);
          continue;
        }
        // Prefer a different bag that fits this slot conflict-free.
        bool placed = false;
        for (std::size_t g = 0; g < by_bag.size(); ++g) {
          if (by_bag[g].empty()) continue;
          const BagId other_bag = inst.job(by_bag[g].back()).bag;
          if (!state.conflicts(machine, other_bag)) {
            const JobId other = by_bag[g].back();
            by_bag[g].pop_back();
            state.put(other, machine);
            placed_here.push_back(other);
            placed = true;
            break;
          }
        }
        if (placed) continue;
        // Lemma 7 swap: same-size x job first, then a priority job.
        int d = find_swap_partner(state, size, bag, machine, placed_here);
        if (d < 0) {
          d = find_swap_partner(state, size, bag, machine, priority_ml);
        }
        if (d >= 0) {
          state.put(job, d);
          by_bag[best_bag].pop_back();
          placed_here.push_back(job);
          continue;
        }
        // Unrepairable under the practical caps: rescue or fail.
        if (!config.enable_rescue) return std::nullopt;
        const int rescue = rescue_machine(state, bag);
        if (rescue < 0) return std::nullopt;
        state.put(job, rescue);
        by_bag[best_bag].pop_back();
        placed_here.push_back(job);
        ++state.result.rescues;
        continue;
      }
      // Out of slots (coverage shortfall): rescue or fail.
      if (!config.enable_rescue) return std::nullopt;
      const int rescue = rescue_machine(state, bag);
      if (rescue < 0) return std::nullopt;
      state.put(job, rescue);
      by_bag[best_bag].pop_back();
      placed_here.push_back(job);
      ++state.result.rescues;
    }
  }

  return state.result;
}

}  // namespace bagsched::eptas
