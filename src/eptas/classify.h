// Preprocessing of the scaled instance (paper §2.1):
//  * round all sizes up onto the (1+eps)-grid,
//  * pick k per Lemma 1 (the medium band [eps^{k+1}, eps^k) has area
//    <= eps^2 * m),
//  * classify jobs large/medium/small,
//  * classify bags large/small and priority/non-priority (Definition 2).
//
// Everything here assumes the instance has been scaled so the target
// makespan is 1 (sizes are p_j / T).
#pragma once

#include <optional>
#include <vector>

#include "eptas/config.h"
#include "model/instance.h"

namespace bagsched::eptas {

enum class JobClass { Large, Medium, Small };

struct Classification {
  double eps = 0.0;
  int k = 0;                      ///< Lemma 1 parameter
  double large_threshold = 0.0;   ///< eps^k
  double medium_threshold = 0.0;  ///< eps^{k+1}
  double target_height = 0.0;     ///< T' = 1 + 2*eps + eps^2 (paper's T)

  std::vector<double> rounded_size;  ///< per job, power of (1+eps)
  std::vector<JobClass> job_class;   ///< per job

  std::vector<bool> is_large_bag;  ///< >= eps*m medium-or-large jobs
  std::vector<bool> is_priority;   ///< Definition 2 (includes large bags)

  /// Distinct rounded sizes present, descending. "ml" = medium or large.
  std::vector<double> large_sizes;
  std::vector<double> ml_sizes;
  std::vector<double> small_sizes;

  /// Paper constants for reporting: q (jobs per machine bound), d (#large
  /// sizes), b' (priority bags per size). The *effective* per-size priority
  /// cut-off actually used (after the profile cap) is priority_cutoff.
  double q = 0.0;
  int d = 0;
  long long b_prime = 0;
  int priority_cutoff = 0;

  JobClass class_of(model::JobId job) const {
    return job_class[static_cast<std::size_t>(job)];
  }
  double size_of(model::JobId job) const {
    return rounded_size[static_cast<std::size_t>(job)];
  }
};

/// Returns nullopt when no valid k exists (the guessed makespan is too
/// small: total rounded area already exceeds (1+eps) * m).
///
/// When `precomputed_rounded` is given (one grid value per job, as produced
/// by util::EpsGrid::round_up on the scaled sizes), the rounding pass is
/// skipped and `scaled` is only consulted for its bag structure and machine
/// count — the guess search uses this to classify directly from a cached
/// grid signature without materializing a scaled instance.
std::optional<Classification> classify(
    const model::Instance& scaled, double eps, const EptasConfig& config,
    const std::vector<double>* precomputed_rounded = nullptr);

/// The paper's b' = (d*q + 1) * q for given d and q (used by tests and by
/// the PaperExact profile).
long long paper_b_prime(int d, double q);

}  // namespace bagsched::eptas
