#include "eptas/milp_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "lp/simplex.h"
#include "milp/branch_and_bound.h"
#include "sched/greedy_bags.h"
#include "util/logging.h"

namespace bagsched::eptas {

using model::BagId;
using model::JobId;

namespace {

constexpr double kPenaltyCost = 1e4;

/// Everything needed to instantiate the master LP for a pattern pool.
struct MasterShape {
  int num_machines = 0;
  double free_area_rhs = 0.0;  ///< m*T' - small/medium area (row R4 rhs)
  /// Small-job count per priority-bag index (row R5 rhs = m - count).
  std::vector<int> priority_small_count;
};

MasterShape compute_shape(const PatternSpace& space,
                          const Transformed& transformed,
                          const Classification& cls) {
  MasterShape shape;
  const model::Instance& inst = transformed.instance;
  shape.num_machines = inst.num_machines();

  double needed_area = 0.0;
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    if (transformed.class_of(j) == JobClass::Small) {
      needed_area += inst.job(j).size;
    }
  }
  for (JobId j : transformed.removed_medium) {
    needed_area += cls.size_of(j);
  }
  shape.free_area_rhs =
      shape.num_machines * cls.target_height - needed_area;

  shape.priority_small_count.assign(
      static_cast<std::size_t>(space.num_priority()), 0);
  for (int i = 0; i < space.num_priority(); ++i) {
    const BagId bag = space.priority_bags[static_cast<std::size_t>(i)].bag;
    for (JobId j : inst.bag(bag)) {
      if (transformed.class_of(j) == JobClass::Small) {
        ++shape.priority_small_count[static_cast<std::size_t>(i)];
      }
    }
  }
  return shape;
}

/// Builds the master model for the given pattern pool. Returns the model,
/// the variable index of the first pattern column (they are contiguous) and
/// the indices of the penalty variables.
struct BuiltMaster {
  lp::Model model;
  int first_pattern_var = 0;
  std::vector<int> penalty_vars;
  // Row ids for dual extraction.
  int row_machine = 0;
  std::vector<std::vector<int>> rows_priority;  ///< per (pbag, size)
  std::vector<int> rows_x;
  int row_area = 0;
  std::vector<int> rows_small;  ///< -1 when the bag has no small jobs
};

BuiltMaster build_master(const PatternSpace& space, const MasterShape& shape,
                         const std::vector<Pattern>& pool) {
  BuiltMaster built;
  lp::Model& model = built.model;
  model.set_objective(lp::Objective::Minimize);

  built.first_pattern_var = 0;
  for (const Pattern& pattern : pool) {
    model.add_variable(pattern_cost(pattern));
  }

  // R1: sum x_p <= m.
  {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      terms.emplace_back(static_cast<int>(p), 1.0);
    }
    built.row_machine = model.add_constraint(std::move(terms),
                                             lp::Sense::LessEqual,
                                             shape.num_machines);
  }

  // R2: priority coverage (with penalty).
  built.rows_priority.resize(
      static_cast<std::size_t>(space.num_priority()));
  for (int i = 0; i < space.num_priority(); ++i) {
    const auto& pbag = space.priority_bags[static_cast<std::size_t>(i)];
    for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t p = 0; p < pool.size(); ++p) {
        if (pool[p].pchoice[static_cast<std::size_t>(i)] ==
            static_cast<int>(s)) {
          terms.emplace_back(static_cast<int>(p), 1.0);
        }
      }
      const int penalty = model.add_variable(kPenaltyCost);
      built.penalty_vars.push_back(penalty);
      terms.emplace_back(penalty, 1.0);
      built.rows_priority[static_cast<std::size_t>(i)].push_back(
          model.add_constraint(std::move(terms), lp::Sense::GreaterEqual,
                               pbag.counts[s]));
    }
  }

  // R3: x-size coverage (with penalty).
  for (int s = 0; s < space.num_x_sizes(); ++s) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      const int count = pool[p].xcount[static_cast<std::size_t>(s)];
      if (count > 0) terms.emplace_back(static_cast<int>(p), count);
    }
    const int penalty = model.add_variable(kPenaltyCost);
    built.penalty_vars.push_back(penalty);
    terms.emplace_back(penalty, 1.0);
    built.rows_x.push_back(model.add_constraint(
        std::move(terms), lp::Sense::GreaterEqual,
        space.x_avail[static_cast<std::size_t>(s)]));
  }

  // R4: aggregate free-area.
  {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      if (pool[p].height > 0.0) {
        terms.emplace_back(static_cast<int>(p), pool[p].height);
      }
    }
    built.row_area = model.add_constraint(std::move(terms),
                                          lp::Sense::LessEqual,
                                          shape.free_area_rhs);
  }

  // R5: per priority bag with small jobs.
  built.rows_small.assign(static_cast<std::size_t>(space.num_priority()),
                          -1);
  for (int i = 0; i < space.num_priority(); ++i) {
    const int small_count =
        shape.priority_small_count[static_cast<std::size_t>(i)];
    if (small_count == 0) continue;
    std::vector<std::pair<int, double>> terms;
    for (std::size_t p = 0; p < pool.size(); ++p) {
      if (pool[p].contains_priority(i)) {
        terms.emplace_back(static_cast<int>(p), 1.0);
      }
    }
    built.rows_small[static_cast<std::size_t>(i)] = model.add_constraint(
        std::move(terms), lp::Sense::LessEqual,
        shape.num_machines - small_count);
  }
  return built;
}

PricingDuals extract_duals(const PatternSpace& space,
                           const BuiltMaster& built,
                           const lp::LpResult& lp_result) {
  PricingDuals duals;
  auto dual_of = [&](int row) {
    return row >= 0 ? lp_result.duals[static_cast<std::size_t>(row)] : 0.0;
  };
  duals.machine = dual_of(built.row_machine);
  duals.priority.resize(static_cast<std::size_t>(space.num_priority()));
  for (int i = 0; i < space.num_priority(); ++i) {
    for (int row : built.rows_priority[static_cast<std::size_t>(i)]) {
      duals.priority[static_cast<std::size_t>(i)].push_back(dual_of(row));
    }
  }
  for (int row : built.rows_x) duals.x_size.push_back(dual_of(row));
  duals.area = dual_of(built.row_area);
  duals.small_block.resize(static_cast<std::size_t>(space.num_priority()));
  for (int i = 0; i < space.num_priority(); ++i) {
    duals.small_block[static_cast<std::size_t>(i)] =
        dual_of(built.rows_small[static_cast<std::size_t>(i)]);
  }
  return duals;
}

/// Seed columns: the empty pattern, one singleton per entry, and the ml
/// content of every machine of a greedy schedule of I' (when within T').
std::vector<Pattern> seed_pool(const PatternSpace& space,
                               const Transformed& transformed) {
  std::vector<Pattern> pool;
  std::set<std::vector<int>> seen;
  auto push = [&](const Pattern& pattern) {
    if (seen.insert(pattern.signature()).second) pool.push_back(pattern);
  };

  push(empty_pattern(space));
  for (int i = 0; i < space.num_priority(); ++i) {
    const auto& pbag = space.priority_bags[static_cast<std::size_t>(i)];
    for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
      if (pbag.sizes[s] > space.max_height + 1e-12) continue;
      Pattern pattern = empty_pattern(space);
      pattern.pchoice[static_cast<std::size_t>(i)] = static_cast<int>(s);
      pattern.height = pbag.sizes[s];
      push(pattern);
    }
  }
  for (int s = 0; s < space.num_x_sizes(); ++s) {
    const double size = space.x_sizes[static_cast<std::size_t>(s)];
    const int max_count = std::min(
        space.x_avail[static_cast<std::size_t>(s)],
        static_cast<int>(std::floor(space.max_height / size + 1e-12)));
    for (int c = 1; c <= max_count; ++c) {
      Pattern pattern = empty_pattern(space);
      pattern.xcount[static_cast<std::size_t>(s)] = c;
      pattern.height = size * c;
      push(pattern);
    }
  }
  // Greedy schedule of I' as a warm start.
  if (transformed.instance.is_feasible()) {
    const model::Schedule greedy =
        sched::greedy_bags(transformed.instance);
    for (const auto& machine_jobs : greedy.machine_jobs()) {
      const auto pattern =
          pattern_from_machine(space, transformed, machine_jobs);
      if (pattern) push(*pattern);
    }
  }
  return pool;
}

}  // namespace

std::optional<MasterSolution> solve_master(
    const PatternSpace& space, const Transformed& transformed,
    const Classification& cls, const EptasConfig& config,
    const std::vector<std::vector<model::JobId>>* warm_machines) {
  const MasterShape shape = compute_shape(space, transformed, cls);
  if (shape.free_area_rhs < -1e-9) return std::nullopt;  // area alone fails
  for (int i = 0; i < space.num_priority(); ++i) {
    if (shape.priority_small_count[static_cast<std::size_t>(i)] >
        shape.num_machines) {
      return std::nullopt;
    }
  }

  MasterStats stats;
  std::vector<Pattern> pool = seed_pool(space, transformed);
  std::set<std::vector<int>> signatures;
  for (const Pattern& pattern : pool) signatures.insert(pattern.signature());

  // --- Cross-guess warm start: previous probe's machines as columns. -------
  std::set<std::size_t> warm_indices;
  if (warm_machines != nullptr) {
    for (const auto& machine_jobs : *warm_machines) {
      if (static_cast<int>(pool.size()) >= config.max_milp_patterns) break;
      const auto pattern =
          pattern_from_machine(space, transformed, machine_jobs);
      if (!pattern) continue;
      if (!signatures.insert(pattern->signature()).second) continue;
      warm_indices.insert(pool.size());
      pool.push_back(*pattern);
    }
    stats.warm_columns = static_cast<int>(warm_indices.size());
  }

  // --- Column generation at the root ---------------------------------------
  const int max_rounds = 80;
  for (int round = 0; round < max_rounds; ++round) {
    if (util::stop_requested(config.milp.cancel)) break;
    if (static_cast<int>(pool.size()) >= config.max_milp_patterns) break;
    BuiltMaster built = build_master(space, shape, pool);
    const lp::LpResult lp_result = lp::solve(built.model);
    stats.lp_iterations += lp_result.iterations;
    if (lp_result.status != lp::SolveStatus::Optimal) break;
    ++stats.pricing_rounds;

    const PricingDuals duals = extract_duals(space, built, lp_result);
    const auto column = price_pattern(space, duals);
    if (!column) break;  // LP optimal over all patterns
    if (!signatures.insert(column->signature()).second) break;  // repeat
    pool.push_back(*column);
  }
  stats.columns = static_cast<int>(pool.size());

  // --- Integral solve over the generated pool ------------------------------
  BuiltMaster built = build_master(space, shape, pool);
  std::vector<int> integer_vars;
  integer_vars.reserve(pool.size());
  for (std::size_t p = 0; p < pool.size(); ++p) {
    integer_vars.push_back(static_cast<int>(p));
  }
  const milp::MilpResult milp_result =
      milp::solve(built.model, integer_vars, config.milp);
  stats.milp_nodes = milp_result.nodes_explored;
  if (milp_result.status != milp::MilpStatus::Optimal &&
      milp_result.status != milp::MilpStatus::Feasible) {
    return std::nullopt;
  }
  // Any active penalty means some coverage row could not be met.
  for (int penalty : built.penalty_vars) {
    if (milp_result.x[static_cast<std::size_t>(penalty)] > 1e-6) {
      return std::nullopt;
    }
  }

  MasterSolution solution;
  for (std::size_t p = 0; p < pool.size(); ++p) {
    const int count = static_cast<int>(
        std::llround(milp_result.x[static_cast<std::size_t>(p)]));
    if (count > 0) {
      solution.patterns.push_back(pool[p]);
      solution.multiplicity.push_back(count);
      if (warm_indices.count(p) > 0) ++stats.warm_columns_used;
    }
  }
  solution.stats = stats;
  return solution;
}

}  // namespace bagsched::eptas
