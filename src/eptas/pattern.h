// Patterns (paper Definition 3) and the pricing problem used to generate
// them on demand.
//
// A pattern describes the medium/large content of one machine:
//  * for each priority bag: nothing, or exactly one job of one of the bag's
//    medium/large sizes ("at most one entry of a size-restricted bag of B_l"),
//  * for each large size s: a count of B_x slots (jobs of arbitrary
//    non-priority large-part bags).
// Height (sum of entry sizes) is at most T' = 1 + 2eps + eps^2.
//
// The paper enumerates all patterns; their number is a (gigantic) function
// of eps only. We instead generate the profitable ones by solving a pricing
// problem inside a column-generation loop (see milp_model.h) — the MILP that
// results is the same program restricted to the generated columns.
#pragma once

#include <optional>
#include <vector>

#include "eptas/classify.h"
#include "eptas/transform.h"
#include "model/job.h"

namespace bagsched::eptas {

/// The universe of pattern entries for one transformed instance.
struct PatternSpace {
  struct PriorityBag {
    model::BagId bag;            ///< I' bag id
    std::vector<double> sizes;   ///< distinct ml sizes present, descending
    std::vector<int> counts;     ///< jobs per size
  };
  std::vector<PriorityBag> priority_bags;

  std::vector<double> x_sizes;  ///< large sizes with non-priority jobs, desc
  std::vector<int> x_avail;     ///< jobs per x size

  double max_height = 0.0;  ///< T'

  int num_priority() const {
    return static_cast<int>(priority_bags.size());
  }
  int num_x_sizes() const { return static_cast<int>(x_sizes.size()); }
};

/// One pattern. `pchoice[i]` is the chosen size index for priority bag i
/// (-1 for none); `xcount[s]` is the number of B_x slots of x-size s.
struct Pattern {
  std::vector<int> pchoice;
  std::vector<int> xcount;
  double height = 0.0;

  bool contains_priority(int i) const {
    return pchoice[static_cast<std::size_t>(i)] >= 0;
  }
  int jobs_in_pattern() const;

  /// Canonical key for deduplication.
  std::vector<int> signature() const;
};

/// Builds the entry universe from the transformed instance.
PatternSpace build_pattern_space(const Transformed& transformed,
                                 const Classification& cls);

Pattern empty_pattern(const PatternSpace& space);

/// Interprets one machine of an existing feasible schedule of I' as a
/// pattern (used to seed the column pool). Returns nullopt when the
/// machine's ml content exceeds T' or violates the one-per-priority-bag rule.
std::optional<Pattern> pattern_from_machine(
    const PatternSpace& space, const Transformed& transformed,
    const std::vector<model::JobId>& machine_jobs);

/// Dual prices for the master rows (see milp_model.cc for the row layout).
struct PricingDuals {
  double machine = 0.0;                       ///< row R1
  std::vector<std::vector<double>> priority;  ///< R2 per (pbag, size)
  std::vector<double> x_size;                 ///< R3 per x size
  double area = 0.0;                          ///< R4 (coefficient: height)
  std::vector<double> small_block;            ///< R5 per pbag (coeff: l in p)
};

struct PricingOptions {
  long long max_nodes = 200000;
  /// Only patterns with score above this improve the master.
  double improvement_tolerance = 1e-7;
};

/// Finds a pattern maximizing  sum(duals * column) - cost(pattern)  where
/// cost(p) = height(p)^2 (the master objective). Returns nullopt when no
/// pattern beats the tolerance, i.e. the master LP is optimal.
std::optional<Pattern> price_pattern(const PatternSpace& space,
                                     const PricingDuals& duals,
                                     const PricingOptions& options = {});

/// cost(p) = height^2: prefers spreading ml jobs over stacking them, which
/// is what keeps room for small jobs (paper constraint (4) in spirit).
double pattern_cost(const Pattern& pattern);

}  // namespace bagsched::eptas
