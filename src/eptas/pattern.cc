#include "eptas/pattern.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/grid.h"

namespace bagsched::eptas {

using model::BagId;
using model::JobId;

int Pattern::jobs_in_pattern() const {
  int total = 0;
  for (int c : pchoice) {
    if (c >= 0) ++total;
  }
  for (int c : xcount) total += c;
  return total;
}

std::vector<int> Pattern::signature() const {
  std::vector<int> key;
  key.reserve(pchoice.size() + xcount.size());
  key.insert(key.end(), pchoice.begin(), pchoice.end());
  key.insert(key.end(), xcount.begin(), xcount.end());
  return key;
}

PatternSpace build_pattern_space(const Transformed& transformed,
                                 const Classification& cls) {
  PatternSpace space;
  space.max_height = cls.target_height;
  const model::Instance& inst = transformed.instance;

  // Priority bags: distinct ml sizes with counts.
  for (BagId l = 0; l < inst.num_bags(); ++l) {
    if (!transformed.is_priority[static_cast<std::size_t>(l)]) continue;
    std::map<double, int, std::greater<>> counts;
    for (JobId j : inst.bag(l)) {
      if (transformed.class_of(j) != JobClass::Small) {
        ++counts[inst.job(j).size];
      }
    }
    if (counts.empty()) continue;  // no ml jobs: irrelevant for patterns
    PatternSpace::PriorityBag pbag;
    pbag.bag = l;
    for (const auto& [size, count] : counts) {
      pbag.sizes.push_back(size);
      pbag.counts.push_back(count);
    }
    space.priority_bags.push_back(std::move(pbag));
  }

  // X sizes: large jobs of non-priority (large-part) bags.
  std::map<double, int, std::greater<>> x_counts;
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    const BagId bag = inst.job(j).bag;
    if (transformed.is_priority[static_cast<std::size_t>(bag)]) continue;
    if (transformed.class_of(j) == JobClass::Large) {
      ++x_counts[inst.job(j).size];
    }
  }
  for (const auto& [size, count] : x_counts) {
    space.x_sizes.push_back(size);
    space.x_avail.push_back(count);
  }
  return space;
}

Pattern empty_pattern(const PatternSpace& space) {
  Pattern pattern;
  pattern.pchoice.assign(
      static_cast<std::size_t>(space.num_priority()), -1);
  pattern.xcount.assign(static_cast<std::size_t>(space.num_x_sizes()), 0);
  pattern.height = 0.0;
  return pattern;
}

std::optional<Pattern> pattern_from_machine(
    const PatternSpace& space, const Transformed& transformed,
    const std::vector<JobId>& machine_jobs) {
  const model::Instance& inst = transformed.instance;
  Pattern pattern = empty_pattern(space);

  // Index helpers.
  std::map<BagId, int> pbag_index;
  for (int i = 0; i < space.num_priority(); ++i) {
    pbag_index[space.priority_bags[static_cast<std::size_t>(i)].bag] = i;
  }

  for (JobId j : machine_jobs) {
    if (transformed.class_of(j) == JobClass::Small) continue;
    const BagId bag = inst.job(j).bag;
    const double size = inst.job(j).size;
    const auto it = pbag_index.find(bag);
    if (it != pbag_index.end()) {
      const int i = it->second;
      if (pattern.contains_priority(i)) return std::nullopt;  // two of one bag
      const auto& sizes =
          space.priority_bags[static_cast<std::size_t>(i)].sizes;
      int size_index = -1;
      for (std::size_t s = 0; s < sizes.size(); ++s) {
        if (util::approx_eq(sizes[s], size)) {
          size_index = static_cast<int>(s);
          break;
        }
      }
      if (size_index < 0) return std::nullopt;
      pattern.pchoice[static_cast<std::size_t>(i)] = size_index;
    } else {
      // Non-priority ml job: must be large (mediums were removed).
      int size_index = -1;
      for (int s = 0; s < space.num_x_sizes(); ++s) {
        if (util::approx_eq(space.x_sizes[static_cast<std::size_t>(s)],
                            size)) {
          size_index = s;
          break;
        }
      }
      if (size_index < 0) return std::nullopt;
      ++pattern.xcount[static_cast<std::size_t>(size_index)];
    }
    pattern.height += size;
  }
  if (pattern.height > space.max_height + 1e-9) return std::nullopt;
  return pattern;
}

double pattern_cost(const Pattern& pattern) {
  return pattern.height * pattern.height;
}

namespace {

/// Depth-first branch-and-bound for the pricing problem.
///
/// Decision levels: one per priority bag (choose none or one size), then one
/// per x size (choose a count). Score of a complete pattern:
///   duals.machine
///   + sum over chosen priority entries of (priority dual + small_block dual)
///   + sum over x entries of x_size dual
///   + duals.area * height          (R4 coefficient is the height)
///   - height^2                      (master objective cost)
class Pricer {
 public:
  Pricer(const PatternSpace& space, const PricingDuals& duals,
         const PricingOptions& options)
      : space_(space), duals_(duals), options_(options) {
    best_ = empty_pattern(space_);
    best_score_ = score_of(best_);
    current_ = best_;

    // Optimistic per-level gains for pruning: the best possible additional
    // score from the remaining levels, ignoring the height budget and the
    // quadratic cost growth (both only reduce the true score).
    const int levels = space_.num_priority() + space_.num_x_sizes();
    optimistic_suffix_.assign(static_cast<std::size_t>(levels) + 1, 0.0);
    for (int level = levels - 1; level >= 0; --level) {
      double gain = 0.0;
      if (level < space_.num_priority()) {
        const auto& pbag =
            space_.priority_bags[static_cast<std::size_t>(level)];
        for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
          gain = std::max(
              gain, entry_gain_priority(level, static_cast<int>(s)));
        }
      } else {
        const int xs = level - space_.num_priority();
        const double unit = entry_gain_x(xs);
        if (unit > 0) {
          gain = unit * space_.x_avail[static_cast<std::size_t>(xs)];
        }
      }
      optimistic_suffix_[static_cast<std::size_t>(level)] =
          optimistic_suffix_[static_cast<std::size_t>(level) + 1] +
          std::max(0.0, gain);
    }
  }

  std::optional<Pattern> run() {
    dfs(0, 0.0);
    if (best_score_ > options_.improvement_tolerance) return best_;
    return std::nullopt;
  }

 private:
  /// Linear part of the gain of one priority entry (excluding quadratic
  /// cost): coverage dual + block dual + area dual * size.
  double entry_gain_priority(int pbag, int size_index) const {
    const double size = space_.priority_bags[static_cast<std::size_t>(pbag)]
                            .sizes[static_cast<std::size_t>(size_index)];
    return duals_.priority[static_cast<std::size_t>(pbag)]
                          [static_cast<std::size_t>(size_index)] +
           duals_.small_block[static_cast<std::size_t>(pbag)] +
           duals_.area * size;
  }

  double entry_gain_x(int x_index) const {
    const double size = space_.x_sizes[static_cast<std::size_t>(x_index)];
    return duals_.x_size[static_cast<std::size_t>(x_index)] +
           duals_.area * size;
  }

  /// Full score of a complete pattern (reduced-cost numerator).
  double score_of(const Pattern& pattern) const {
    double score = duals_.machine + duals_.area * pattern.height -
                   pattern_cost(pattern);
    for (int i = 0; i < space_.num_priority(); ++i) {
      const int choice = pattern.pchoice[static_cast<std::size_t>(i)];
      if (choice >= 0) {
        score += duals_.priority[static_cast<std::size_t>(i)]
                                [static_cast<std::size_t>(choice)] +
                 duals_.small_block[static_cast<std::size_t>(i)];
      }
    }
    for (int s = 0; s < space_.num_x_sizes(); ++s) {
      score += duals_.x_size[static_cast<std::size_t>(s)] *
               pattern.xcount[static_cast<std::size_t>(s)];
    }
    return score;
  }

  /// `linear` accumulates all gains except the quadratic height cost.
  void dfs(int level, double linear) {
    if (++nodes_ > options_.max_nodes) return;
    const double here =
        duals_.machine + linear - current_.height * current_.height;
    if (here > best_score_) {
      best_score_ = here;
      best_ = current_;
    }
    const int levels = space_.num_priority() + space_.num_x_sizes();
    if (level >= levels) return;
    // Prune: even with every remaining gain and no extra cost we lose.
    if (here + optimistic_suffix_[static_cast<std::size_t>(level)] <=
        best_score_ + 1e-12) {
      return;
    }

    if (level < space_.num_priority()) {
      const auto& pbag =
          space_.priority_bags[static_cast<std::size_t>(level)];
      // Option: skip this bag.
      dfs(level + 1, linear);
      // Option: take one of its sizes.
      for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
        const double size = pbag.sizes[s];
        if (current_.height + size > space_.max_height + 1e-12) continue;
        current_.pchoice[static_cast<std::size_t>(level)] =
            static_cast<int>(s);
        current_.height += size;
        dfs(level + 1, linear + entry_gain_priority(level,
                                                    static_cast<int>(s)));
        current_.height -= size;
        current_.pchoice[static_cast<std::size_t>(level)] = -1;
      }
    } else {
      const int xs = level - space_.num_priority();
      const double size = space_.x_sizes[static_cast<std::size_t>(xs)];
      const double unit = entry_gain_x(xs);
      const int max_count = std::min(
          space_.x_avail[static_cast<std::size_t>(xs)],
          static_cast<int>(std::floor(
              (space_.max_height - current_.height) / size + 1e-12)));
      // count = 0 first, then increasing.
      dfs(level + 1, linear);
      for (int c = 1; c <= max_count; ++c) {
        current_.xcount[static_cast<std::size_t>(xs)] = c;
        current_.height += size;
        dfs(level + 1, linear + unit * c);
      }
      current_.height -= size * current_.xcount[static_cast<std::size_t>(xs)];
      current_.xcount[static_cast<std::size_t>(xs)] = 0;
    }
  }

  const PatternSpace& space_;
  const PricingDuals& duals_;
  PricingOptions options_;
  Pattern best_;
  Pattern current_;
  double best_score_ = 0.0;
  long long nodes_ = 0;
  std::vector<double> optimistic_suffix_;
};

}  // namespace

std::optional<Pattern> price_pattern(const PatternSpace& space,
                                     const PricingDuals& duals,
                                     const PricingOptions& options) {
  Pricer pricer(space, duals, options);
  return pricer.run();
}

}  // namespace bagsched::eptas
