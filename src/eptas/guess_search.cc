#include "eptas/guess_search.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "eptas/classify.h"
#include "eptas/enumerate.h"
#include "eptas/milp_model.h"
#include "eptas/pattern.h"
#include "eptas/placement.h"
#include "eptas/small_jobs.h"
#include "eptas/transform.h"
#include "util/cancellation.h"
#include "util/grid.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace bagsched::eptas {

using model::Instance;
using model::JobId;
using model::Schedule;

namespace {

/// Warm-start payload of a certified probe: the medium/large content of
/// every machine as *original* job ids (pattern-relevant jobs only, i.e.
/// the I' ml jobs — priority mediums/larges and large-part larges).
struct ProbePayload {
  std::vector<std::vector<JobId>> machines;
};

/// Outcome of one dual-approximation probe. With cross-guess reuse on,
/// outcomes are pure functions of the grid signature (plus the fixed
/// anchor seeds), which is what makes both the memo and the speculative
/// consumption order-independent.
struct ProbeOutcome {
  bool success = false;
  /// The probe's token fired and the pipeline may have been truncated; the
  /// outcome is not reproducible and must never enter the memo. (A probe
  /// that *succeeded* despite a late-firing token passed the full
  /// validation gate and is kept as a regular success.)
  bool cancelled = false;
  Schedule schedule;  ///< valid iff success
  EptasStats stats;   ///< per-guess pipeline stats
  int warm_columns = 0;
  int warm_columns_used = 0;
  std::shared_ptr<const ProbePayload> payload;  ///< set iff success
  /// Grid signature of the probe's guess. The controller counts a consumed
  /// probe as a memo hit when an earlier *consumed* probe had the same
  /// signature — that matches the sequential run exactly, whereas the
  /// run-time memo state depends on speculation timing.
  std::vector<int> signature;
};

/// Reusable per-probe scratch buffers (hoisted out of the per-guess loop).
struct Workspace {
  std::vector<int> signature;     ///< grid index per job
  std::vector<double> rounded;    ///< grid value per job
};

struct PipelineResult {
  std::optional<Schedule> schedule;
  std::shared_ptr<const ProbePayload> payload;
  int warm_columns = 0;
  int warm_columns_used = 0;
};

/// The per-guess pipeline of try_makespan_guess, operating directly on the
/// original instance plus the guess's rounded sizes (the scaled instance is
/// never materialized: scaling only ever fed the rounding, and the bag
/// structure and machine count are scale-invariant).
PipelineResult run_pipeline(const Instance& instance, double eps,
                            const std::vector<double>& rounded,
                            const EptasConfig& config,
                            const ProbePayload* warm, EptasStats* stats) {
  PipelineResult result;

  const auto cls = classify(instance, eps, config, &rounded);
  if (!cls) return result;

  const Transformed transformed = transform(instance, *cls);
  const PatternSpace space = build_pattern_space(transformed, *cls);

  // Map the anchor's original job ids onto this guess's I' jobs. Removed
  // mediums have no I' twin and drop out; solve_master's pattern parser
  // re-validates everything else against this guess's pattern space.
  std::vector<std::vector<JobId>> warm_prime;
  if (warm != nullptr) {
    std::vector<JobId> prime_of(
        static_cast<std::size_t>(instance.num_jobs()), model::kUnassigned);
    for (JobId j = 0; j < transformed.instance.num_jobs(); ++j) {
      const JobId orig = transformed.orig_job[static_cast<std::size_t>(j)];
      if (orig != model::kUnassigned) {
        prime_of[static_cast<std::size_t>(orig)] = j;
      }
    }
    warm_prime.reserve(warm->machines.size());
    for (const auto& machine : warm->machines) {
      std::vector<JobId> mapped;
      mapped.reserve(machine.size());
      for (const JobId orig : machine) {
        const JobId prime = prime_of[static_cast<std::size_t>(orig)];
        if (prime != model::kUnassigned) mapped.push_back(prime);
      }
      if (!mapped.empty()) warm_prime.push_back(std::move(mapped));
    }
  }

  std::optional<MasterSolution> master;
  if (config.use_enumerated_milp) {
    // The paper's literal MILP; on enumeration blow-up fall back to the
    // column-generated master (same program, restricted columns).
    if (enumerate_all_patterns(space, config.max_patterns)) {
      master = solve_enumerated_master(space, transformed, *cls, config);
      if (!master) return result;  // proven infeasible at this guess
    }
  }
  if (!master) {
    master = solve_master(space, transformed, *cls, config,
                          warm_prime.empty() ? nullptr : &warm_prime);
  }
  if (!master) return result;
  result.warm_columns = master->stats.warm_columns;
  result.warm_columns_used = master->stats.warm_columns_used;

  auto placement = place_ml_jobs(transformed, space, *master, config);
  if (!placement) return result;

  SmallJobStats small_stats;
  if (!schedule_small_jobs(transformed, *cls, space, *master, *placement,
                           config, small_stats)) {
    return result;
  }

  const auto medium_machine =
      insert_medium_jobs(instance, transformed, *placement, config.cancel);
  if (!medium_machine) return result;

  Schedule lifted = lift_solution(instance, transformed, *placement,
                                  *medium_machine, config, small_stats,
                                  &*cls);

  // Final gate: the lifted schedule must be a complete, bag-feasible
  // schedule of the *original* instance (assignments transfer verbatim
  // because the scaling was uniform).
  const auto validation = model::validate(instance, lifted);
  if (!validation.ok()) {
    BAGSCHED_LOG(Debug) << "guess rejected: " << validation.message;
    return result;
  }

  // Warm-start payload: ml content per machine, as original job ids (small
  // jobs and fillers are not pattern content; later stages never move ml
  // jobs, so the placement schedule still holds the pattern assignment).
  auto payload = std::make_shared<ProbePayload>();
  payload->machines.assign(
      static_cast<std::size_t>(instance.num_machines()), {});
  for (JobId j = 0; j < transformed.instance.num_jobs(); ++j) {
    if (transformed.class_of(j) == JobClass::Small) continue;
    const JobId orig = transformed.orig_job[static_cast<std::size_t>(j)];
    if (orig == model::kUnassigned) continue;
    const model::MachineId machine = placement->schedule.machine_of(j);
    if (machine == model::kUnassigned) continue;
    payload->machines[static_cast<std::size_t>(machine)].push_back(orig);
  }

  if (stats != nullptr) {
    stats->columns = master->stats.columns;
    stats->pricing_rounds = master->stats.pricing_rounds;
    stats->lp_iterations = master->stats.lp_iterations;
    stats->milp_nodes = master->stats.milp_nodes;
    stats->swaps = placement->swaps;
    stats->origin_repairs = small_stats.origin_repairs;
    stats->lift_swaps = small_stats.lift_swaps;
    stats->rescues = placement->rescues + small_stats.rescues;
  }
  result.schedule = std::move(lifted);
  result.payload = std::move(payload);
  return result;
}

/// Shared state of one search run: the inputs, the grid-signature memo and
/// the workspace freelist.
class SearchContext {
 public:
  SearchContext(const Instance& instance, double eps, double lower,
                double step, const EptasConfig& config)
      : instance_(instance), config_(config), grid_(eps), eps_(eps),
        lower_(lower), step_(step) {}

  double guess_at(int index) const {
    return lower_ * std::pow(step_, index);
  }

  void set_anchor(std::shared_ptr<const ProbePayload> payload) {
    anchor_ = std::move(payload);
  }

  /// Runs (or memo-serves) the probe at `index`. `token` is the probe's
  /// cancellation token (already chained to the caller's token). Outcomes
  /// are shared — memo hits are a pointer copy, not a schedule copy.
  std::shared_ptr<const ProbeOutcome> run_probe(
      int index, const util::CancellationToken* token) {
    if (util::stop_requested(token)) {
      auto out = std::make_shared<ProbeOutcome>();
      out->cancelled = true;
      return out;
    }
    const double guess = guess_at(index);
    std::unique_ptr<Workspace> ws = acquire_workspace();

    // Grid signature: the rounded scaled size of job j is
    // (1+eps)^signature[j]; every downstream stage sees only these values.
    const int n = instance_.num_jobs();
    ws->signature.resize(static_cast<std::size_t>(n));
    ws->rounded.resize(static_cast<std::size_t>(n));
    for (JobId j = 0; j < n; ++j) {
      const int idx = grid_.index_above(instance_.job(j).size / guess);
      ws->signature[static_cast<std::size_t>(j)] = idx;
      ws->rounded[static_cast<std::size_t>(j)] = grid_.value(idx);
    }

    if (config_.warm_start) {
      std::lock_guard<std::mutex> lock(memo_mutex_);
      const auto it = memo_.find(ws->signature);
      if (it != memo_.end()) {
        auto hit = it->second;
        release_workspace(std::move(ws));
        return hit;
      }
    }

    EptasConfig probe_config = config_;
    probe_config.cancel = token;
    // The probe token must reach the master's column generation and MILP —
    // the dominant pipeline cost — or a moot speculative probe would hold
    // its worker until the master finishes. It already chains the caller's
    // token, so only a *distinct* explicit milp token is preserved.
    if (probe_config.milp.cancel == nullptr ||
        probe_config.milp.cancel == config_.cancel) {
      probe_config.milp.cancel = token;
    }
    probe_config.on_probe = nullptr;

    auto out = std::make_shared<ProbeOutcome>();
    PipelineResult pipeline =
        run_pipeline(instance_, eps_, ws->rounded, probe_config,
                     anchor_.get(), &out->stats);
    out->success = pipeline.schedule.has_value();
    out->warm_columns = pipeline.warm_columns;
    out->warm_columns_used = pipeline.warm_columns_used;
    if (out->success) {
      out->schedule = std::move(*pipeline.schedule);
      out->payload = std::move(pipeline.payload);
    }
    const bool token_fired = util::stop_requested(token);
    // A failure with a fired token may be a truncated pipeline rather than
    // a proven reject; it must not be trusted.
    out->cancelled = !out->success && token_fired;

    out->signature = ws->signature;
    // Never memoize any outcome produced under a fired token — even a
    // "successful" one: a stage may have been truncated (e.g. an early
    // MILP incumbent) into a valid-but-different schedule, and a
    // timing-dependent entry would break the bit-identical contract.
    if (config_.warm_start && !token_fired) {
      std::lock_guard<std::mutex> lock(memo_mutex_);
      memo_.emplace(ws->signature, out);
    }
    release_workspace(std::move(ws));
    return out;
  }

 private:
  std::unique_ptr<Workspace> acquire_workspace() {
    std::lock_guard<std::mutex> lock(ws_mutex_);
    if (!workspaces_.empty()) {
      auto ws = std::move(workspaces_.back());
      workspaces_.pop_back();
      return ws;
    }
    return std::make_unique<Workspace>();
  }

  void release_workspace(std::unique_ptr<Workspace> ws) {
    std::lock_guard<std::mutex> lock(ws_mutex_);
    workspaces_.push_back(std::move(ws));
  }

  const Instance& instance_;
  const EptasConfig& config_;
  const util::EpsGrid grid_;
  const double eps_;
  const double lower_;
  const double step_;

  /// Fixed warm-start seeds; written once by the controller before any
  /// concurrent probe launches.
  std::shared_ptr<const ProbePayload> anchor_;

  std::mutex memo_mutex_;
  std::map<std::vector<int>, std::shared_ptr<const ProbeOutcome>> memo_;

  std::mutex ws_mutex_;
  std::vector<std::unique_ptr<Workspace>> workspaces_;
};

/// The guess indices a binary search over [lo, hi) may visit next, given
/// that `mid` is in flight: breadth-first over the windows both possible
/// outcomes of every pending probe leave behind.
std::vector<int> speculative_indices(int lo, int hi, int mid, int limit) {
  std::vector<int> out;
  std::deque<std::pair<int, int>> windows;
  windows.emplace_back(lo, mid);        // `mid` succeeds
  windows.emplace_back(mid + 1, hi);    // `mid` fails
  while (!windows.empty() && static_cast<int>(out.size()) < limit) {
    const auto [l, h] = windows.front();
    windows.pop_front();
    if (l >= h) continue;
    const int m = l + (h - l) / 2;
    out.push_back(m);
    windows.emplace_back(l, m);
    windows.emplace_back(m + 1, h);
  }
  return out;
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

GuessSearchResult run_guess_search(const Instance& instance, double eps,
                                   double lower, double step,
                                   int num_guesses,
                                   const EptasConfig& config) {
  GuessSearchResult result;
  const int threads = resolve_threads(config.num_threads);
  result.threads_used = threads;

  SearchContext ctx(instance, eps, lower, step, config);

  // Consumes one probe outcome in the deterministic replay order. A probe
  // counts as a memo hit when an earlier consumed probe shared its grid
  // signature — identical to what the sequential run's memo serves, and
  // independent of speculation timing.
  std::set<std::vector<int>> consumed_signatures;
  auto consume = [&](int index, const ProbeOutcome& out, bool is_anchor) {
    ++result.guesses_tried;
    const bool memo_hit =
        config.warm_start &&
        !consumed_signatures.insert(out.signature).second;
    if (memo_hit) ++result.memo_hits;
    result.columns_warm_started += out.warm_columns;
    result.pricing_rounds_saved += out.warm_columns_used;
    if (config.on_probe) {
      GuessProbeEvent event;
      event.index = index;
      event.guess = ctx.guess_at(index);
      event.success = out.success;
      event.memo_hit = memo_hit;
      event.anchor = is_anchor;
      event.warm_columns = out.warm_columns;
      event.pricing_rounds = out.stats.pricing_rounds;
      config.on_probe(event);
    }
  };

  auto adopt = [&](int index, const ProbeOutcome& out) {
    result.best = out.schedule;  // outcomes are shared (memo): copy
    result.best_index = index;
    result.best_stats = out.stats;
  };

  int lo = 0;
  int hi = num_guesses;  // == num_guesses means "no guess succeeded"

  // --- Warm-start anchor: probe the top guess first. -----------------------
  // The top guess is the most likely to certify; its patterns seed every
  // other probe's column pool, and under the same monotonicity assumption
  // the binary search already makes, its success bounds the search window.
  // It runs to completion before any other probe launches, so the seeds
  // are fixed for the whole (possibly concurrent) search.
  if (config.warm_start && num_guesses > 1) {
    const int anchor_index = num_guesses - 1;
    util::CancellationToken anchor_token(config.cancel);
    ++result.probes_launched;
    const auto out = ctx.run_probe(anchor_index, &anchor_token);
    if (out->cancelled) {
      result.cancelled = true;
      return result;
    }
    consume(anchor_index, *out, /*is_anchor=*/true);
    if (out->success) {
      ctx.set_anchor(out->payload);
      hi = anchor_index;
      adopt(anchor_index, *out);
    }
    // An anchor failure is no evidence about lower guesses (practical-cap
    // failures are not monotone downward); the window stays [0, G).
  }

  // More workers than remaining guesses is pure oversubscription; this
  // also keeps the common tight-window searches (1-2 guesses) on the
  // pool-free sequential path.
  const int effective_threads = std::min(threads, std::max(1, hi - lo));

  if (effective_threads <= 1) {
    // --- Sequential replay (the reference semantics). ----------------------
    while (lo < hi) {
      if (util::stop_requested(config.cancel)) {
        result.cancelled = true;
        break;
      }
      const int mid = lo + (hi - lo) / 2;
      util::CancellationToken token(config.cancel);
      ++result.probes_launched;
      const auto out = ctx.run_probe(mid, &token);
      if (out->cancelled) {
        result.cancelled = true;
        break;
      }
      consume(mid, *out, /*is_anchor=*/false);
      if (out->success) {
        adopt(mid, *out);
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return result;
  }

  // --- Speculative parallel replay. ----------------------------------------
  // Probes run on the pool; the controller consumes them in the exact
  // sequential order, so identical outcomes imply identical results.
  struct Inflight {
    std::future<std::shared_ptr<const ProbeOutcome>> future;
    std::unique_ptr<util::CancellationToken> token;
    bool cancelled = false;
  };
  util::ThreadPool pool(static_cast<std::size_t>(effective_threads));
  std::map<int, Inflight> inflight;
  std::map<int, std::shared_ptr<const ProbeOutcome>> done;

  auto ensure_launched = [&](int index) {
    if (done.count(index) > 0 || inflight.count(index) > 0) return;
    Inflight entry;
    entry.token = std::make_unique<util::CancellationToken>(config.cancel);
    const util::CancellationToken* token = entry.token.get();
    entry.future = pool.submit(
        [&ctx, index, token] { return ctx.run_probe(index, token); });
    inflight.emplace(index, std::move(entry));
    ++result.probes_launched;
  };

  // Every in-flight probe must finish before the context and the tokens
  // (captured by reference) go away — also on the exception path, where a
  // throwing probe would otherwise unwind past still-running workers.
  auto drain = [&inflight]() noexcept {
    for (auto& [idx, entry] : inflight) {
      entry.token->request_stop();
      entry.future.wait();
    }
  };

  try {
    while (lo < hi) {
      if (util::stop_requested(config.cancel)) {
        result.cancelled = true;
        break;
      }
      const int mid = lo + (hi - lo) / 2;
      if (done.count(mid) == 0) {
        ensure_launched(mid);
        // Fill the remaining workers with the indices the search may need
        // next, whichever way the pending probes resolve.
        for (const int idx :
             speculative_indices(lo, hi, mid, 2 * effective_threads)) {
          ensure_launched(idx);
        }
        auto node = inflight.extract(mid);
        auto out = node.mapped().future.get();
        if (out->cancelled) {
          result.cancelled = true;
          break;
        }
        done.emplace(mid, std::move(out));
      }
      const ProbeOutcome& out = *done.at(mid);
      consume(mid, out, /*is_anchor=*/false);
      if (out.success) {
        adopt(mid, out);
        hi = mid;
      } else {
        lo = mid + 1;
      }
      // Probes outside the remaining window can no longer be consumed:
      // stop them so their workers free up for useful speculation.
      for (auto& [idx, entry] : inflight) {
        if (!entry.cancelled && (idx < lo || idx >= hi)) {
          entry.token->request_stop();
          entry.cancelled = true;
          ++result.probes_cancelled;
        }
      }
    }
  } catch (...) {
    drain();
    throw;
  }
  drain();
  return result;
}

std::optional<Schedule> try_makespan_guess(const Instance& instance,
                                           double eps, double guess,
                                           const EptasConfig& config,
                                           EptasStats* stats) {
  const util::EpsGrid grid(eps);
  std::vector<double> rounded;
  rounded.reserve(static_cast<std::size_t>(instance.num_jobs()));
  for (const auto& job : instance.jobs()) {
    rounded.push_back(grid.round_up(job.size / guess));
  }
  PipelineResult pipeline =
      run_pipeline(instance, eps, rounded, config, nullptr, stats);
  return std::move(pipeline.schedule);
}

}  // namespace bagsched::eptas
