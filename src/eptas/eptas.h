// Public entry point of the EPTAS for machine scheduling with
// bag-constraints (Grage, Jansen, Klein — SPAA 2019).
//
// eptas_schedule() runs the full pipeline of the paper:
//   binary search over the makespan guess T (dual approximation), and per
//   guess: scale to OPT=1, round sizes onto the (1+eps)-grid, pick k
//   (Lemma 1), classify bags (Def. 2), transform the instance (§2.2),
//   solve the pattern MILP (§3, via column generation + branch-and-bound),
//   place medium/large jobs with swap repair (Lemma 7), schedule small jobs
//   with group-bag-LPT (§4, Lemmas 8-10), repair residual conflicts
//   (Lemma 11), re-insert the removed mediums through the Lemma 3 flow, and
//   lift the solution back to the original instance (Lemma 4).
//
// The returned schedule is always feasible. When every guess fails (possible
// under the Practical constant caps, see DESIGN.md §3) the result falls back
// to the best constructive heuristic and says so in the stats.
#pragma once

#include <optional>

#include "eptas/config.h"
#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::eptas {

struct EptasStats {
  int guesses_tried = 0;       ///< makespan guesses probed
  double final_guess = 0.0;    ///< smallest successful guess T
  double lower_bound = 0.0;    ///< combined lower bound on OPT
  double greedy_upper = 0.0;   ///< greedy/local-search upper bound
  /// Some guess produced a full pipeline schedule (even if the heuristic
  /// happened to beat it and was returned instead).
  bool pipeline_succeeded = false;
  /// Makespan of the pipeline's own schedule (0 when no guess succeeded).
  double pipeline_makespan = 0.0;
  /// The returned schedule is the heuristic, either because every guess
  /// failed or because the heuristic was strictly better.
  bool used_fallback = false;

  // Accumulated over the successful guess:
  int columns = 0;
  int pricing_rounds = 0;
  long long lp_iterations = 0;
  long long milp_nodes = 0;
  int swaps = 0;           ///< Lemma 7 swap repairs
  int origin_repairs = 0;  ///< Lemma 11 chain walks
  int lift_swaps = 0;      ///< Lemma 4 filler swaps
  int rescues = 0;         ///< structure-breaking placements (measured)

  // Speculative search / cross-guess reuse. The deterministic counters
  // (memo hits, warm columns, rounds saved) aggregate over the probes the
  // binary-search replay consumed, so they are identical at every thread
  // count; probes_launched/cancelled describe the actual execution
  // (speculation included) and legitimately vary with thread count.
  /// Configured worker budget (num_threads resolved against the
  /// hardware); the search may use fewer when the guess window is small.
  int threads_used = 1;
  int probes_launched = 0;     ///< pipeline probes started (incl. specul.)
  int probes_cancelled = 0;    ///< in-flight probes made moot and stopped
  int probes_memo_hits = 0;    ///< probes served from the grid-signature memo
  int columns_warm_started = 0;///< anchor columns accepted into master pools
  /// Warm-started columns the final master actually used (each one stands
  /// in for at least one pricing round the probe did not have to run).
  int pricing_rounds_saved = 0;
};

struct EptasResult {
  model::Schedule schedule;
  double makespan = 0.0;
  EptasStats stats;
};

/// Schedules the instance with approximation target (1 + O(eps)).
/// Requires a feasible instance (every bag at most m jobs); throws
/// std::invalid_argument otherwise.
EptasResult eptas_schedule(const model::Instance& instance, double eps,
                           const EptasConfig& config = {});

/// One dual-approximation probe: attempts to build a schedule of makespan
/// close to the guess T. Exposed for tests and component benchmarks.
std::optional<model::Schedule> try_makespan_guess(
    const model::Instance& instance, double eps, double guess,
    const EptasConfig& config, EptasStats* stats = nullptr);

}  // namespace bagsched::eptas
