#include "eptas/small_jobs.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>

#include "flow/assignment.h"
#include "sched/bag_lpt.h"
#include "util/logging.h"

namespace bagsched::eptas {

using model::BagId;
using model::JobId;
using model::MachineId;

namespace {

/// Least-loaded machine where `bag` has no job at all; -1 if none exists.
int least_loaded_free(const model::Instance& inst,
                      const model::Schedule& schedule,
                      const std::vector<double>& loads, BagId bag) {
  std::vector<bool> blocked(static_cast<std::size_t>(inst.num_machines()),
                            false);
  for (JobId j : inst.bag(bag)) {
    const MachineId machine = schedule.machine_of(j);
    if (machine != model::kUnassigned) {
      blocked[static_cast<std::size_t>(machine)] = true;
    }
  }
  int best = -1;
  double best_load = std::numeric_limits<double>::infinity();
  for (int machine = 0; machine < inst.num_machines(); ++machine) {
    if (blocked[static_cast<std::size_t>(machine)]) continue;
    if (loads[static_cast<std::size_t>(machine)] < best_load) {
      best_load = loads[static_cast<std::size_t>(machine)];
      best = machine;
    }
  }
  return best;
}

}  // namespace

bool schedule_small_jobs(const Transformed& transformed,
                         const Classification& cls,
                         const PatternSpace& space,
                         const MasterSolution& master,
                         PlacementResult& placement,
                         const EptasConfig& config, SmallJobStats& stats) {
  const model::Instance& inst = transformed.instance;
  const int m = inst.num_machines();

  // --- Machine groups: same pattern id (empty machines form group of -1). --
  std::map<int, std::vector<int>> groups_by_pattern;
  for (int machine = 0; machine < m; ++machine) {
    groups_by_pattern[placement
                          .machine_pattern[static_cast<std::size_t>(machine)]]
        .push_back(machine);
  }
  struct Group {
    int pattern = -1;  ///< index into master.patterns, -1 = empty
    std::vector<int> machines;
    std::vector<std::vector<JobId>> assigned;  ///< per small bag processed
    double pending_area = 0.0;
  };
  std::vector<Group> groups;
  for (auto& [pattern, machines] : groups_by_pattern) {
    Group group;
    group.pattern = pattern;
    group.machines = std::move(machines);
    groups.push_back(std::move(group));
  }

  // Priority-bag index per I' bag (for pattern-blocking lookups).
  std::map<BagId, int> pbag_index;
  for (int i = 0; i < space.num_priority(); ++i) {
    pbag_index[space.priority_bags[static_cast<std::size_t>(i)].bag] = i;
  }

  std::vector<double> loads = placement.ml_load;

  auto group_load = [&](const Group& group) {
    double total = group.pending_area;
    for (int machine : group.machines) {
      total += loads[static_cast<std::size_t>(machine)];
    }
    return total / static_cast<double>(group.machines.size());
  };
  auto blocked_for = [&](const Group& group, BagId bag) {
    if (group.pattern < 0) return false;
    const auto it = pbag_index.find(bag);
    if (it == pbag_index.end()) return false;
    return master.patterns[static_cast<std::size_t>(group.pattern)]
        .contains_priority(it->second);
  };

  // --- group-bag-LPT: assign each small bag's jobs to groups. -------------
  // Bags processed by descending small area (heavy bags first).
  std::vector<std::pair<double, BagId>> small_bags;
  for (BagId l = 0; l < inst.num_bags(); ++l) {
    double area = 0.0;
    bool any = false;
    for (JobId j : inst.bag(l)) {
      if (transformed.class_of(j) == JobClass::Small) {
        area += inst.job(j).size;
        any = true;
      }
    }
    if (any) small_bags.emplace_back(-area, l);
  }
  std::sort(small_bags.begin(), small_bags.end());

  struct PendingBag {
    BagId bag;
    std::vector<std::vector<JobId>> per_group;  ///< parallel to `groups`
  };
  std::vector<PendingBag> pending;

  for (const auto& [neg_area, bag] : small_bags) {
    (void)neg_area;
    if (util::stop_requested(config.cancel)) return false;
    std::vector<JobId> jobs;
    for (JobId j : inst.bag(bag)) {
      if (transformed.class_of(j) == JobClass::Small) jobs.push_back(j);
    }
    std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
      if (inst.job(a).size != inst.job(b).size) {
        return inst.job(a).size > inst.job(b).size;
      }
      return a < b;
    });

    // Groups ascending by average (placed + pending) load.
    std::vector<std::size_t> order(groups.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return group_load(groups[a]) < group_load(groups[b]);
    });

    PendingBag pending_bag;
    pending_bag.bag = bag;
    pending_bag.per_group.resize(groups.size());
    std::size_t next_job = 0;
    for (std::size_t g : order) {
      if (next_job >= jobs.size()) break;
      if (blocked_for(groups[g], bag)) continue;
      const std::size_t take = std::min(jobs.size() - next_job,
                                        groups[g].machines.size());
      for (std::size_t t = 0; t < take; ++t) {
        const JobId job = jobs[next_job++];
        pending_bag.per_group[g].push_back(job);
        groups[g].pending_area += inst.job(job).size;
      }
    }
    if (next_job < jobs.size()) {
      // Blocked groups ate the capacity the master's R5 promised: rescue by
      // allowing blocked groups too (conflicts fixed by Lemma 11 below).
      if (!config.enable_rescue) return false;
      for (std::size_t g : order) {
        if (next_job >= jobs.size()) break;
        if (!blocked_for(groups[g], bag)) continue;
        std::size_t already = pending_bag.per_group[g].size();
        const std::size_t take =
            std::min(jobs.size() - next_job,
                     groups[g].machines.size() - already);
        for (std::size_t t = 0; t < take; ++t) {
          const JobId job = jobs[next_job++];
          pending_bag.per_group[g].push_back(job);
          groups[g].pending_area += inst.job(job).size;
          ++stats.rescues;
        }
      }
      if (next_job < jobs.size()) return false;  // |B_l| > m: impossible
    }
    pending.push_back(std::move(pending_bag));
  }

  // --- bag-LPT inside each group. ------------------------------------------
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (util::stop_requested(config.cancel)) return false;
    const Group& group = groups[g];
    std::vector<sched::LptBag> bags;
    std::vector<BagId> bag_ids;
    for (const PendingBag& pending_bag : pending) {
      if (pending_bag.per_group[g].empty()) continue;
      bags.push_back(sched::LptBag{pending_bag.per_group[g]});
      bag_ids.push_back(pending_bag.bag);
    }
    if (bags.empty()) continue;
    std::vector<double> group_loads;
    group_loads.reserve(group.machines.size());
    for (int machine : group.machines) {
      group_loads.push_back(loads[static_cast<std::size_t>(machine)]);
    }
    const auto assignment =
        sched::bag_lpt_assign(inst, bags, group_loads);
    for (std::size_t b = 0; b < bags.size(); ++b) {
      for (std::size_t j = 0; j < bags[b].jobs.size(); ++j) {
        const JobId job = bags[b].jobs[j];
        const int machine =
            group.machines[static_cast<std::size_t>(assignment[b][j])];
        placement.schedule.assign(job, machine);
        loads[static_cast<std::size_t>(machine)] += inst.job(job).size;
      }
    }
  }

  // --- Lemma 11: repair small-vs-ml conflicts inside priority bags. --------
  // (Only priority bags can conflict: non-priority small-part bags hold no
  // ml jobs in I'.)
  for (int i = 0; i < space.num_priority(); ++i) {
    if (util::stop_requested(config.cancel)) return false;
    const BagId bag = space.priority_bags[static_cast<std::size_t>(i)].bag;
    // Machine -> ml job of this bag.
    std::map<int, JobId> ml_on;
    std::vector<JobId> smalls;
    for (JobId j : inst.bag(bag)) {
      if (transformed.class_of(j) == JobClass::Small) {
        smalls.push_back(j);
      } else if (placement.schedule.is_assigned(j)) {
        ml_on[placement.schedule.machine_of(j)] = j;
      }
    }
    std::set<int> small_on;  // machines already holding a small of this bag
    for (JobId j : smalls) {
      if (placement.schedule.is_assigned(j)) {
        small_on.insert(placement.schedule.machine_of(j));
      }
    }
    for (JobId job : smalls) {
      const int machine = placement.schedule.machine_of(job);
      const auto it = ml_on.find(machine);
      if (it == ml_on.end()) continue;  // no conflict

      // Origin-chain walk (paper Lemma 11): follow origins of the large
      // jobs until a machine free of this bag appears.
      JobId blocking = it->second;
      int target = -1;
      std::set<int> visited;
      for (int steps = 0; steps < m; ++steps) {
        const auto origin_it = placement.origin.find(blocking);
        if (origin_it == placement.origin.end()) break;
        const int candidate = origin_it->second;
        if (!visited.insert(candidate).second) break;  // cycle: give up
        const bool has_small = small_on.count(candidate) > 0;
        const auto ml_it = ml_on.find(candidate);
        if (ml_it == ml_on.end() && !has_small) {
          target = candidate;
          break;
        }
        if (ml_it == ml_on.end()) break;  // blocked by a small: chain ends
        blocking = ml_it->second;
      }
      if (target < 0) {
        if (!config.enable_rescue) return false;
        target = least_loaded_free(inst, placement.schedule, loads, bag);
        if (target < 0) return false;
        ++stats.rescues;
      } else {
        ++stats.origin_repairs;
      }
      loads[static_cast<std::size_t>(machine)] -= inst.job(job).size;
      loads[static_cast<std::size_t>(target)] += inst.job(job).size;
      placement.schedule.assign(job, target);
      small_on.erase(machine);
      small_on.insert(target);
    }
  }
  return true;
}

std::optional<std::vector<int>> insert_medium_jobs(
    const model::Instance& original, const Transformed& transformed,
    const PlacementResult& placement,
    const util::CancellationToken* cancel) {
  const model::Instance& inst = transformed.instance;
  const int m = inst.num_machines();
  if (transformed.removed_medium.empty()) return std::vector<int>{};

  // Original bag -> its large-part I' bag (if any).
  std::map<BagId, BagId> large_part_of;
  for (BagId l = 0; l < inst.num_bags(); ++l) {
    if (transformed.is_large_part[static_cast<std::size_t>(l)]) {
      large_part_of[transformed.orig_bag[static_cast<std::size_t>(l)]] = l;
    }
  }

  // Group removed mediums by original bag.
  std::map<BagId, std::vector<std::size_t>> by_bag;  // -> medium indices
  for (std::size_t i = 0; i < transformed.removed_medium.size(); ++i) {
    const JobId orig = transformed.removed_medium[i];
    by_bag[original.job(orig).bag].push_back(i);
  }

  // Machines forbidden per original bag: those holding a large-part job.
  std::vector<BagId> group_bags;
  std::vector<std::vector<bool>> forbidden;  // per group, per machine
  std::vector<int> demands;
  for (const auto& [bag, indices] : by_bag) {
    group_bags.push_back(bag);
    demands.push_back(static_cast<int>(indices.size()));
    std::vector<bool> blocked(static_cast<std::size_t>(m), false);
    const auto it = large_part_of.find(bag);
    if (it != large_part_of.end()) {
      for (JobId j : inst.bag(it->second)) {
        const MachineId machine = placement.schedule.machine_of(j);
        if (machine != model::kUnassigned) {
          blocked[static_cast<std::size_t>(machine)] = true;
        }
      }
    }
    forbidden.push_back(std::move(blocked));
  }

  const int total = static_cast<int>(transformed.removed_medium.size());
  // Ramp the per-machine capacity until the flow saturates all demands.
  for (int cap = std::max(1, (total + m - 1) / m); cap <= total; ++cap) {
    if (util::stop_requested(cancel)) return std::nullopt;
    flow::AssignmentProblem problem;
    problem.demands = demands;
    problem.capacities.assign(static_cast<std::size_t>(m), cap);
    problem.allowed = [&](int group, int machine) {
      return !forbidden[static_cast<std::size_t>(group)]
                       [static_cast<std::size_t>(machine)];
    };
    const auto assignment = flow::solve_assignment(problem);
    if (!assignment) continue;
    // Read the machines back per medium job. Within one (bag, machine)
    // pair at most one medium lands (middle edges have capacity 1).
    std::vector<int> result(transformed.removed_medium.size(), -1);
    for (std::size_t g = 0; g < group_bags.size(); ++g) {
      const auto& indices = by_bag[group_bags[g]];
      const auto& machines = (*assignment)[g];
      for (std::size_t i = 0; i < indices.size(); ++i) {
        result[indices[i]] = machines[i];
      }
    }
    return result;
  }
  return std::nullopt;
}

model::Schedule lift_solution(const model::Instance& original,
                              const Transformed& transformed,
                              PlacementResult& placement,
                              const std::vector<int>& medium_machine,
                              const EptasConfig& config,
                              SmallJobStats& stats,
                              const Classification* cls) {
  const model::Instance& inst = transformed.instance;
  const int m = inst.num_machines();
  const int orig_bags = original.num_bags();

  // Loads including mediums (for rescue decisions).
  std::vector<double> loads(static_cast<std::size_t>(m), 0.0);
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    const MachineId machine = placement.schedule.machine_of(j);
    if (machine != model::kUnassigned) {
      loads[static_cast<std::size_t>(machine)] += inst.job(j).size;
    }
  }
  for (std::size_t i = 0; i < medium_machine.size(); ++i) {
    const JobId orig = transformed.removed_medium[i];
    loads[static_cast<std::size_t>(medium_machine[i])] +=
        cls != nullptr ? cls->size_of(orig) : original.job(orig).size;
  }

  // ml_of[l][machine] = true when machine holds a medium/large job of
  // ORIGINAL bag l (large-part jobs + inserted mediums + priority ml jobs).
  std::vector<std::set<int>> ml_of(static_cast<std::size_t>(orig_bags));
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    if (transformed.class_of(j) == JobClass::Small) continue;
    const MachineId machine = placement.schedule.machine_of(j);
    if (machine == model::kUnassigned) continue;
    const BagId orig =
        transformed.orig_bag[static_cast<std::size_t>(inst.job(j).bag)];
    ml_of[static_cast<std::size_t>(orig)].insert(machine);
  }
  for (std::size_t i = 0; i < medium_machine.size(); ++i) {
    const BagId orig = original.job(transformed.removed_medium[i]).bag;
    ml_of[static_cast<std::size_t>(orig)].insert(medium_machine[i]);
  }

  // Small jobs of each original bag: machine -> I' job (at most one real
  // small plus possibly fillers; the bag-LPT stages never co-locate two).
  for (BagId orig = 0; orig < orig_bags; ++orig) {
    if (util::stop_requested(config.cancel)) break;  // keep schedule valid
    if (ml_of[static_cast<std::size_t>(orig)].empty()) continue;
    // Collect this original bag's I' small jobs (same bag id: the
    // transformation keeps small-part bags under the original id).
    std::vector<JobId> smalls;
    std::vector<JobId> fillers;
    for (JobId j : inst.bag(orig)) {
      if (transformed.class_of(j) != JobClass::Small) continue;
      if (transformed.is_filler[static_cast<std::size_t>(j)]) {
        fillers.push_back(j);
      } else {
        smalls.push_back(j);
      }
    }
    // Machines with any small of this bag (for rescue feasibility).
    std::set<int> small_on;
    for (JobId j : inst.bag(orig)) {
      if (transformed.class_of(j) == JobClass::Small &&
          placement.schedule.is_assigned(j)) {
        small_on.insert(placement.schedule.machine_of(j));
      }
    }

    for (JobId job : smalls) {
      const int machine = placement.schedule.machine_of(job);
      if (ml_of[static_cast<std::size_t>(orig)].count(machine) == 0) {
        continue;  // no conflict with a medium/large of the same orig bag
      }
      // Find a filler of this bag on a machine free of ml-of-bag jobs.
      JobId partner = model::kUnassigned;
      for (JobId filler : fillers) {
        const int d = placement.schedule.machine_of(filler);
        if (d == model::kUnassigned || d == machine) continue;
        if (ml_of[static_cast<std::size_t>(orig)].count(d) > 0) continue;
        partner = filler;
        break;
      }
      if (partner != model::kUnassigned) {
        const int d = placement.schedule.machine_of(partner);
        // Swap: the real small job moves to d, the filler to `machine`.
        // Loads: filler is at least as large as the small job by
        // construction, so d does not grow.
        loads[static_cast<std::size_t>(machine)] +=
            inst.job(partner).size - inst.job(job).size;
        loads[static_cast<std::size_t>(d)] +=
            inst.job(job).size - inst.job(partner).size;
        placement.schedule.swap_jobs(job, partner);
        small_on.erase(machine);
        small_on.insert(d);
        ++stats.lift_swaps;
      } else {
        if (!config.enable_rescue) {
          // Leave the conflict; final validation will reject the guess.
          continue;
        }
        // Rescue: any machine without this original bag entirely.
        int best = -1;
        double best_load = std::numeric_limits<double>::infinity();
        for (int d = 0; d < m; ++d) {
          if (d == machine) continue;
          if (ml_of[static_cast<std::size_t>(orig)].count(d) > 0) continue;
          if (small_on.count(d) > 0) continue;
          if (loads[static_cast<std::size_t>(d)] < best_load) {
            best_load = loads[static_cast<std::size_t>(d)];
            best = d;
          }
        }
        if (best < 0) continue;  // validation will reject
        loads[static_cast<std::size_t>(machine)] -= inst.job(job).size;
        loads[static_cast<std::size_t>(best)] += inst.job(job).size;
        placement.schedule.assign(job, best);
        small_on.erase(machine);
        small_on.insert(best);
        ++stats.rescues;
      }
    }
  }

  // --- Assemble the original-instance schedule (fillers vanish). ----------
  model::Schedule final_schedule(original.num_jobs(), m);
  for (JobId j = 0; j < inst.num_jobs(); ++j) {
    const JobId orig = transformed.orig_job[static_cast<std::size_t>(j)];
    if (orig == model::kUnassigned) continue;  // filler
    final_schedule.assign(orig, placement.schedule.machine_of(j));
  }
  for (std::size_t i = 0; i < medium_machine.size(); ++i) {
    final_schedule.assign(transformed.removed_medium[i], medium_machine[i]);
  }
  return final_schedule;
}

}  // namespace bagsched::eptas
