#include "eptas/transform.h"

#include <algorithm>

namespace bagsched::eptas {

using model::BagId;
using model::Instance;
using model::Job;
using model::JobId;

Transformed transform(const Instance& scaled, const Classification& cls) {
  const int b = scaled.num_bags();

  Transformed out;
  std::vector<Job> jobs;
  out.orig_bag.resize(static_cast<std::size_t>(b));
  out.is_large_part.assign(static_cast<std::size_t>(b), false);
  out.is_priority.resize(static_cast<std::size_t>(b));
  for (BagId l = 0; l < b; ++l) {
    out.orig_bag[static_cast<std::size_t>(l)] = l;
    out.is_priority[static_cast<std::size_t>(l)] =
        cls.is_priority[static_cast<std::size_t>(l)];
  }

  BagId next_bag = b;
  auto push_job = [&](double size, BagId bag, JobId orig, bool filler) {
    Job job;
    job.size = size;
    job.bag = bag;
    jobs.push_back(job);
    out.orig_job.push_back(orig);
    out.is_filler.push_back(filler);
  };

  for (BagId l = 0; l < b; ++l) {
    if (cls.is_priority[static_cast<std::size_t>(l)]) {
      // Priority bags are copied verbatim (rounded sizes).
      for (JobId j : scaled.bag(l)) {
        push_job(cls.size_of(j), l, j, /*filler=*/false);
      }
      continue;
    }
    // Non-priority bag: split by class.
    double pmax_small = 0.0;
    int ml_count = 0;
    for (JobId j : scaled.bag(l)) {
      if (cls.class_of(j) == JobClass::Small) {
        pmax_small = std::max(pmax_small, cls.size_of(j));
      } else {
        ++ml_count;
      }
    }
    BagId large_part = model::kUnassigned;
    for (JobId j : scaled.bag(l)) {
      switch (cls.class_of(j)) {
        case JobClass::Small:
          push_job(cls.size_of(j), l, j, /*filler=*/false);
          break;
        case JobClass::Large:
          if (large_part == model::kUnassigned) {
            large_part = next_bag++;
            out.orig_bag.push_back(l);
            out.is_large_part.push_back(true);
            out.is_priority.push_back(false);
          }
          push_job(cls.size_of(j), large_part, j, /*filler=*/false);
          break;
        case JobClass::Medium:
          out.removed_medium.push_back(j);
          break;
      }
    }
    // Fillers only exist when the bag has small jobs (paper: bags without
    // small jobs are not modified in this respect — there is nothing for a
    // filler to collide with).
    if (pmax_small > 0.0 && ml_count > 0) {
      for (int f = 0; f < ml_count; ++f) {
        push_job(pmax_small, l, model::kUnassigned, /*filler=*/true);
      }
    }
  }

  out.instance = Instance(std::move(jobs), scaled.num_machines(), next_bag);

  // Classify the I' jobs with the same thresholds.
  out.job_class.resize(static_cast<std::size_t>(out.instance.num_jobs()));
  for (JobId j = 0; j < out.instance.num_jobs(); ++j) {
    const double p = out.instance.job(j).size;
    JobClass job_class;
    if (p >= cls.large_threshold - 1e-15) {
      job_class = JobClass::Large;
    } else if (p >= cls.medium_threshold - 1e-15) {
      job_class = JobClass::Medium;
    } else {
      job_class = JobClass::Small;
    }
    out.job_class[static_cast<std::size_t>(j)] = job_class;
  }
  return out;
}

}  // namespace bagsched::eptas
