#include "eptas/enumerate.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "milp/branch_and_bound.h"

namespace bagsched::eptas {

using model::BagId;
using model::JobId;

namespace {

/// DFS over priority-bag choices, then B_x multiplicities.
class Enumerator {
 public:
  Enumerator(const PatternSpace& space, int max_patterns)
      : space_(space), max_patterns_(max_patterns) {}

  std::optional<std::vector<Pattern>> run() {
    current_ = empty_pattern(space_);
    if (!priority_level(0)) return std::nullopt;
    return std::move(result_);
  }

 private:
  bool emit() {
    if (static_cast<int>(result_.size()) >= max_patterns_) return false;
    result_.push_back(current_);
    return true;
  }

  bool priority_level(int level) {
    if (level == space_.num_priority()) return x_level(0);
    // Option: no entry from this bag.
    if (!priority_level(level + 1)) return false;
    const auto& pbag = space_.priority_bags[static_cast<std::size_t>(level)];
    for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
      if (current_.height + pbag.sizes[s] > space_.max_height + 1e-12) {
        continue;
      }
      current_.pchoice[static_cast<std::size_t>(level)] =
          static_cast<int>(s);
      current_.height += pbag.sizes[s];
      const bool ok = priority_level(level + 1);
      current_.height -= pbag.sizes[s];
      current_.pchoice[static_cast<std::size_t>(level)] = -1;
      if (!ok) return false;
    }
    return true;
  }

  bool x_level(int level) {
    if (level == space_.num_x_sizes()) return emit();
    if (!x_level(level + 1)) return false;  // count 0
    const double size = space_.x_sizes[static_cast<std::size_t>(level)];
    const int max_count = std::min(
        space_.x_avail[static_cast<std::size_t>(level)],
        static_cast<int>(
            std::floor((space_.max_height - current_.height) / size +
                       1e-12)));
    for (int c = 1; c <= max_count; ++c) {
      current_.xcount[static_cast<std::size_t>(level)] = c;
      current_.height += size;
      if (!x_level(level + 1)) {
        current_.height -= size * c;
        current_.xcount[static_cast<std::size_t>(level)] = 0;
        return false;
      }
    }
    current_.height -=
        size * current_.xcount[static_cast<std::size_t>(level)];
    current_.xcount[static_cast<std::size_t>(level)] = 0;
    return true;
  }

  const PatternSpace& space_;
  int max_patterns_;
  Pattern current_;
  std::vector<Pattern> result_;
};

}  // namespace

std::optional<std::vector<Pattern>> enumerate_all_patterns(
    const PatternSpace& space, int max_patterns) {
  Enumerator enumerator(space, max_patterns);
  return enumerator.run();
}

std::optional<MasterSolution> solve_enumerated_master(
    const PatternSpace& space, const Transformed& transformed,
    const Classification& cls, const EptasConfig& config, bool integral_y,
    EnumeratedStats* stats) {
  const model::Instance& inst = transformed.instance;
  const int m = inst.num_machines();

  const auto patterns =
      enumerate_all_patterns(space, config.max_patterns);
  if (!patterns) return std::nullopt;  // theory-sized blow-up

  // Small size-restricted bags: (bag, size) -> count.
  struct SmallClass {
    BagId bag;
    double size;
    int count;
  };
  std::vector<SmallClass> small_classes;
  {
    std::map<std::pair<BagId, double>, int> counts;
    for (JobId j = 0; j < inst.num_jobs(); ++j) {
      if (transformed.class_of(j) == JobClass::Small) {
        ++counts[{inst.job(j).bag, inst.job(j).size}];
      }
    }
    for (const auto& [key, count] : counts) {
      small_classes.push_back(SmallClass{key.first, key.second, count});
    }
  }

  // Priority-bag index per I' bag for chi_p lookups.
  std::map<BagId, int> pbag_index;
  for (int i = 0; i < space.num_priority(); ++i) {
    pbag_index[space.priority_bags[static_cast<std::size_t>(i)].bag] = i;
  }
  auto chi = [&](const Pattern& pattern, BagId bag) {
    const auto it = pbag_index.find(bag);
    return it != pbag_index.end() && pattern.contains_priority(it->second);
  };

  lp::Model model;
  model.set_objective(lp::Objective::Minimize);

  // x_p variables (6).
  std::vector<int> x_vars;
  x_vars.reserve(patterns->size());
  for (const Pattern& pattern : *patterns) {
    x_vars.push_back(model.add_variable(pattern_cost(pattern), 0.0,
                                        static_cast<double>(m)));
  }
  // y^{B_l^s}_p variables (7)-(9): skipped when chi_p(B_l) = 1 (they are
  // forced to zero by (5)) or the size cannot fit the free space.
  // y_vars[c][p] = variable index or -1.
  std::vector<std::vector<int>> y_vars(
      small_classes.size(),
      std::vector<int>(patterns->size(), -1));
  int y_count = 0;
  for (std::size_t c = 0; c < small_classes.size(); ++c) {
    for (std::size_t p = 0; p < patterns->size(); ++p) {
      const Pattern& pattern = (*patterns)[p];
      if (chi(pattern, small_classes[c].bag)) continue;
      if (small_classes[c].size >
          cls.target_height - pattern.height + 1e-12) {
        continue;
      }
      y_vars[c][p] = model.add_variable(0.0);
      ++y_count;
    }
  }

  // (1)
  {
    std::vector<std::pair<int, double>> terms;
    for (int var : x_vars) terms.emplace_back(var, 1.0);
    model.add_constraint(std::move(terms), lp::Sense::LessEqual, m);
  }
  // (2) priority part.
  for (int i = 0; i < space.num_priority(); ++i) {
    const auto& pbag = space.priority_bags[static_cast<std::size_t>(i)];
    for (std::size_t s = 0; s < pbag.sizes.size(); ++s) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t p = 0; p < patterns->size(); ++p) {
        if ((*patterns)[p].pchoice[static_cast<std::size_t>(i)] ==
            static_cast<int>(s)) {
          terms.emplace_back(x_vars[p], 1.0);
        }
      }
      model.add_constraint(std::move(terms), lp::Sense::GreaterEqual,
                           pbag.counts[s]);
    }
  }
  // (2) B_x part.
  for (int s = 0; s < space.num_x_sizes(); ++s) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t p = 0; p < patterns->size(); ++p) {
      const int count = (*patterns)[p].xcount[static_cast<std::size_t>(s)];
      if (count > 0) terms.emplace_back(x_vars[p], count);
    }
    model.add_constraint(std::move(terms), lp::Sense::GreaterEqual,
                         space.x_avail[static_cast<std::size_t>(s)]);
  }
  // (3)
  for (std::size_t c = 0; c < small_classes.size(); ++c) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t p = 0; p < patterns->size(); ++p) {
      if (y_vars[c][p] >= 0) terms.emplace_back(y_vars[c][p], 1.0);
    }
    model.add_constraint(std::move(terms), lp::Sense::GreaterEqual,
                         small_classes[c].count);
  }
  // (4)
  for (std::size_t p = 0; p < patterns->size(); ++p) {
    std::vector<std::pair<int, double>> terms;
    for (std::size_t c = 0; c < small_classes.size(); ++c) {
      if (y_vars[c][p] >= 0) {
        terms.emplace_back(y_vars[c][p], small_classes[c].size);
      }
    }
    if (terms.empty()) continue;
    terms.emplace_back(x_vars[p],
                       -(cls.target_height - (*patterns)[p].height));
    model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
  }
  // (5): group small classes by bag.
  {
    std::map<BagId, std::vector<std::size_t>> classes_of_bag;
    for (std::size_t c = 0; c < small_classes.size(); ++c) {
      classes_of_bag[small_classes[c].bag].push_back(c);
    }
    for (const auto& [bag, classes] : classes_of_bag) {
      for (std::size_t p = 0; p < patterns->size(); ++p) {
        std::vector<std::pair<int, double>> terms;
        for (std::size_t c : classes) {
          if (y_vars[c][p] >= 0) terms.emplace_back(y_vars[c][p], 1.0);
        }
        if (terms.empty()) continue;
        terms.emplace_back(x_vars[p], -1.0);
        model.add_constraint(std::move(terms), lp::Sense::LessEqual, 0.0);
      }
    }
  }

  std::vector<int> integer_vars = x_vars;
  if (integral_y) {
    for (const auto& row : y_vars) {
      for (int var : row) {
        if (var >= 0) integer_vars.push_back(var);
      }
    }
  }

  const milp::MilpResult milp_result =
      milp::solve(model, integer_vars, config.milp);
  if (stats != nullptr) {
    stats->patterns = static_cast<int>(patterns->size());
    stats->y_variables = y_count;
    stats->constraints = model.num_constraints();
    stats->milp_nodes = milp_result.nodes_explored;
  }
  if (milp_result.status != milp::MilpStatus::Optimal &&
      milp_result.status != milp::MilpStatus::Feasible) {
    return std::nullopt;
  }

  MasterSolution solution;
  solution.stats.columns = static_cast<int>(patterns->size());
  solution.stats.milp_nodes = milp_result.nodes_explored;
  for (std::size_t p = 0; p < patterns->size(); ++p) {
    const int count = static_cast<int>(std::llround(
        milp_result.x[static_cast<std::size_t>(x_vars[p])]));
    if (count > 0) {
      solution.patterns.push_back((*patterns)[p]);
      solution.multiplicity.push_back(count);
    }
  }
  return solution;
}

}  // namespace bagsched::eptas
