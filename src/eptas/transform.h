// Instance transformation of paper §2.2 (Figure 2) and the bookkeeping
// needed to lift a solution of the modified instance I' back to the original
// instance I (Lemmas 2-4).
//
// For every non-priority bag B_l:
//  * its large jobs move to a fresh "large-part" bag B'_l,
//  * its medium jobs are removed entirely (re-inserted later via the
//    Lemma 3 flow network),
//  * if B_l contains small jobs, one small "filler" job of size
//    pmax(small jobs of B_l) is added to B_l for every removed large or
//    medium job.
//
// Priority bags are untouched. All sizes in I' are the *rounded* sizes from
// the classification (the algorithm never sees raw sizes again until the
// final schedule is evaluated).
#pragma once

#include <vector>

#include "eptas/classify.h"
#include "model/instance.h"

namespace bagsched::eptas {

struct Transformed {
  model::Instance instance;  ///< the modified instance I'

  /// Per I'-job: the original job id, or -1 for filler jobs.
  std::vector<model::JobId> orig_job;
  std::vector<bool> is_filler;

  /// Per I'-bag: the original bag it derives from. Large-part bags map to
  /// the non-priority bag whose large jobs they hold.
  std::vector<model::BagId> orig_bag;
  std::vector<bool> is_large_part;  ///< per I'-bag: is a B'_l bag
  std::vector<bool> is_priority;    ///< per I'-bag (new bags: non-priority)

  /// Original job ids of removed non-priority medium jobs.
  std::vector<model::JobId> removed_medium;

  /// Per I'-job: class under the classification thresholds.
  std::vector<JobClass> job_class;

  JobClass class_of(model::JobId j) const {
    return job_class[static_cast<std::size_t>(j)];
  }
};

/// Applies the transformation to the scaled instance using its
/// classification. The result's instance uses rounded sizes.
Transformed transform(const model::Instance& scaled,
                      const Classification& cls);

}  // namespace bagsched::eptas
