// The pattern MILP (paper section 3) in aggregated, column-generated form.
//
// Row layout (the paper's constraint numbers in parentheses):
//   R1  sum_p x_p <= m                                  (1)
//   R2  per priority (bag, ml size): coverage >= count  (2), priority part
//   R3  per large x size: coverage >= count             (2), B_x part
//   R4  sum_p height(p) * x_p <= m*T' - small_and_medium_area
//       — the aggregate of (3)+(4): free area across all machines must hold
//       every small job (and the removed mediums re-inserted by Lemma 3)
//   R5  per priority bag l with small jobs:
//       sum_{p : l in p} x_p <= m - #small(l)
//       — the aggregate of (5): enough machines without ml jobs of B_l must
//       remain for B_l's small jobs.
//
// The paper's per-pattern fractional y variables are replaced by these two
// aggregate families; the small-job scheduling stage (small_jobs.h) then
// recovers an explicit distribution with group-bag-LPT, exactly as the
// paper's Lemmas 8-10 do on top of the y values. See DESIGN.md §3.
//
// Coverage rows carry high-cost penalty variables so the master LP is always
// feasible; a guess T is declared infeasible when the integral optimum still
// uses penalties.
#pragma once

#include <optional>
#include <vector>

#include "eptas/classify.h"
#include "eptas/config.h"
#include "eptas/pattern.h"
#include "eptas/transform.h"

namespace bagsched::eptas {

struct MasterStats {
  int columns = 0;
  int pricing_rounds = 0;
  long long lp_iterations = 0;
  long long milp_nodes = 0;
  /// Warm-start columns accepted into the pool (cross-guess reuse).
  int warm_columns = 0;
  /// Warm-start columns the integral optimum uses with positive
  /// multiplicity — each stands in for at least one pricing round.
  int warm_columns_used = 0;
};

struct MasterSolution {
  /// Chosen patterns with positive multiplicity; sum of multiplicities <= m.
  std::vector<Pattern> patterns;
  std::vector<int> multiplicity;
  MasterStats stats;
};

/// Runs column generation + branch-and-bound. Returns nullopt when the
/// guessed makespan T (implicit in space.max_height) admits no solution.
///
/// `warm_machines`, when given, lists the medium/large content of each
/// machine of a previously certified probe as I'-job-id lists; every list
/// that still parses as a valid pattern of `space` (height <= T', one entry
/// per priority bag) is added to the seed pool before column generation.
/// Seeding is best-effort and deterministic — unparsable machines are
/// skipped — and the accepted/used counts land in MasterStats.
std::optional<MasterSolution> solve_master(
    const PatternSpace& space, const Transformed& transformed,
    const Classification& cls, const EptasConfig& config,
    const std::vector<std::vector<model::JobId>>* warm_machines = nullptr);

}  // namespace bagsched::eptas
