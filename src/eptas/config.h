// Tunable constants of the EPTAS implementation.
//
// The paper's constants make the algorithm a pure theory result (DESIGN.md
// §3); ConstantsProfile::Practical keeps the identical pipeline but caps the
// combinatorial blow-up. PaperExact uses the published formulas and is only
// tractable on toy instances — it exists so tests can exercise the formulas.
#pragma once

#include <cstdint>

#include "milp/branch_and_bound.h"
#include "util/cancellation.h"

namespace bagsched::eptas {

enum class ConstantsProfile { Practical, PaperExact };

struct EptasConfig {
  ConstantsProfile profile = ConstantsProfile::Practical;

  // --- Practical-profile caps -------------------------------------------
  /// Priority bags taken per large size (paper: b' = (dq+1)q).
  int max_priority_per_size = 3;
  /// Hard cap on the total number of priority bags |A|.
  int max_priority_total = 10;
  /// Abort pattern enumeration beyond this many patterns.
  int max_patterns = 20000;
  /// Fail the makespan guess when more than this many patterns reach the
  /// MILP (keeps the LP tractable for the dense simplex).
  int max_milp_patterns = 700;

  /// Solve the makespan guesses with the paper's literal MILP over fully
  /// enumerated patterns (eptas/enumerate.h) instead of column generation.
  /// Falls back to column generation when the enumeration exceeds
  /// max_patterns. Tractable only on small instances.
  bool use_enumerated_milp = false;

  // --- Behaviour ----------------------------------------------------------
  /// When a repair step cannot find the swap the lemmas promise (possible
  /// only under Practical caps), place the job on the least-loaded feasible
  /// machine instead of failing the guess. The schedule stays feasible; the
  /// height excess is recorded in the stats.
  bool enable_rescue = true;

  /// Binary-search granularity: consecutive makespan guesses differ by a
  /// factor (1 + eps * guess_step_fraction).
  double guess_step_fraction = 0.5;

  /// Cooperative cancellation: checked between makespan guesses and inside
  /// the fallback local search; eptas_schedule forwards it to milp.cancel
  /// when that is unset, so the per-guess MILP aborts promptly too.
  const util::CancellationToken* cancel = nullptr;

  milp::MilpOptions milp;

  EptasConfig() {
    milp.max_nodes = 2000;
    milp.time_limit_seconds = 20.0;
  }
};

}  // namespace bagsched::eptas
