// Tunable constants of the EPTAS implementation.
//
// The paper's constants make the algorithm a pure theory result (DESIGN.md
// §3); ConstantsProfile::Practical keeps the identical pipeline but caps the
// combinatorial blow-up. PaperExact uses the published formulas and is only
// tractable on toy instances — it exists so tests can exercise the formulas.
#pragma once

#include <cstdint>
#include <functional>

#include "milp/branch_and_bound.h"
#include "util/cancellation.h"

namespace bagsched::eptas {

enum class ConstantsProfile { Practical, PaperExact };

/// One consumed dual-approximation probe, reported in the deterministic
/// binary-search order regardless of how many worker threads ran it.
struct GuessProbeEvent {
  int index = 0;          ///< guess index on the search grid
  double guess = 0.0;     ///< makespan guess T = lower * step^index
  bool success = false;   ///< the pipeline certified a schedule at T
  bool memo_hit = false;  ///< served from the rounded-grid probe memo
  bool anchor = false;    ///< this was the warm-start anchor probe
  int warm_columns = 0;   ///< anchor columns accepted into the master pool
  int pricing_rounds = 0; ///< column-generation rounds this probe ran
};

struct EptasConfig {
  ConstantsProfile profile = ConstantsProfile::Practical;

  // --- Practical-profile caps -------------------------------------------
  /// Priority bags taken per large size (paper: b' = (dq+1)q).
  int max_priority_per_size = 3;
  /// Hard cap on the total number of priority bags |A|.
  int max_priority_total = 10;
  /// Abort pattern enumeration beyond this many patterns.
  int max_patterns = 20000;
  /// Fail the makespan guess when more than this many patterns reach the
  /// MILP (keeps the LP tractable for the dense simplex).
  int max_milp_patterns = 700;

  /// Solve the makespan guesses with the paper's literal MILP over fully
  /// enumerated patterns (eptas/enumerate.h) instead of column generation.
  /// Falls back to column generation when the enumeration exceeds
  /// max_patterns. Tractable only on small instances.
  bool use_enumerated_milp = false;

  // --- Behaviour ----------------------------------------------------------
  /// When a repair step cannot find the swap the lemmas promise (possible
  /// only under Practical caps), place the job on the least-loaded feasible
  /// machine instead of failing the guess. The schedule stays feasible; the
  /// height excess is recorded in the stats.
  bool enable_rescue = true;

  /// Binary-search granularity: consecutive makespan guesses differ by a
  /// factor (1 + eps * guess_step_fraction).
  double guess_step_fraction = 0.5;

  // --- Dual-approximation search ------------------------------------------
  /// Worker threads for the speculative parallel guess search (1 =
  /// sequential, 0 = hardware concurrency). The returned final_guess,
  /// makespan and schedule are bit-identical at every thread count: probe
  /// outcomes are pure functions of the guess's rounded grid, and the
  /// search consumes them in the sequential binary-search order.
  int num_threads = 1;

  /// Cross-guess reuse: probe the top guess first as a warm-start anchor
  /// (its master patterns seed every other probe's column pool), memoize
  /// probe outcomes per rounded-size grid signature (adjacent guesses often
  /// round identically), and reuse per-probe scratch buffers. Off = every
  /// probe runs cold, as the pre-reuse pipeline did.
  bool warm_start = true;

  /// Observer for consumed probes (deterministic order; called on the
  /// search's controller thread). Used by the api layer to stream per-guess
  /// progress. Empty = no reporting.
  std::function<void(const GuessProbeEvent&)> on_probe;

  /// Cooperative cancellation: checked between makespan guesses, inside the
  /// per-guess pipeline stages (placement, small jobs, repair, lift) and
  /// the fallback local search; eptas_schedule forwards it to milp.cancel
  /// when that is unset, so the per-guess MILP aborts promptly too.
  const util::CancellationToken* cancel = nullptr;

  milp::MilpOptions milp;

  EptasConfig() {
    milp.max_nodes = 2000;
    milp.time_limit_seconds = 20.0;
  }
};

}  // namespace bagsched::eptas
