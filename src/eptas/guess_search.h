// Speculative parallel dual-approximation search with cross-guess reuse.
//
// The binary search over makespan guesses is the EPTAS's outer loop; this
// module runs it so that
//  * several guesses probe concurrently on a util::ThreadPool (a success at
//    guess index i makes every in-flight probe above i moot, a failure makes
//    those below moot; both are cancelled through per-probe
//    util::CancellationTokens), and
//  * adjacent guesses share work: probe outcomes are memoized per
//    rounded-size grid signature (guesses that round every job identically
//    share one pipeline run verbatim), and a warm-start anchor probe at the
//    top guess seeds every other probe's column-generation pool with its
//    certified machine patterns.
//
// Determinism contract: the returned best index, schedule and makespan are
// bit-identical at every thread count. Probe outcomes are pure functions of
// the guess's grid signature (the pipeline only ever sees rounded sizes,
// see lift_solution's cls parameter), the anchor — the only probe with
// different inputs — completes before any other probe launches, and the
// controller consumes outcomes in the exact sequential binary-search order,
// so speculation can only pre-compute results, never change them. See
// DESIGN.md §4.
#pragma once

#include <optional>

#include "eptas/config.h"
#include "eptas/eptas.h"
#include "model/instance.h"
#include "model/schedule.h"

namespace bagsched::eptas {

struct GuessSearchResult {
  /// Best certified schedule of the *original* instance, if any guess on
  /// the binary-search path (or the anchor) succeeded.
  std::optional<model::Schedule> best;
  int best_index = -1;
  /// Pipeline stats of the best probe (columns, pricing rounds, repairs…).
  EptasStats best_stats;

  // Deterministic counters (identical at every thread count).
  int guesses_tried = 0;       ///< probes consumed by the replay
  int memo_hits = 0;           ///< consumed probes served from the memo
  int columns_warm_started = 0;
  int pricing_rounds_saved = 0;

  // Execution telemetry (legitimately varies with thread count).
  int probes_launched = 0;
  int probes_cancelled = 0;
  int threads_used = 1;

  /// The caller's cancellation token stopped the search; `best` may still
  /// hold the best certified schedule found before the stop.
  bool cancelled = false;
};

/// Runs the dual-approximation search over guesses lower * step^i,
/// i in [0, num_guesses). `config.num_threads` sets the worker count
/// (1 = sequential, 0 = hardware concurrency); `config.warm_start` gates
/// every cross-guess reuse mechanism. `config.cancel` / `config.milp`
/// must already be the effective (chained) settings.
GuessSearchResult run_guess_search(const model::Instance& instance,
                                   double eps, double lower, double step,
                                   int num_guesses,
                                   const EptasConfig& config);

}  // namespace bagsched::eptas
