// Streaming progress for long-running solves.
//
// A ProgressFn observes a solve while it runs: the scheduling service emits
// lifecycle events (Queued / Started / Finished), solver adapters emit
// Phase transitions, and the solvers that maintain an incumbent (exact,
// milp, local-search) emit an Incumbent event every time their best
// makespan improves. Callbacks fire on worker threads — they must be
// thread-safe and cheap (they run inside solver hot paths).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace bagsched::api {

struct SolveResult;  // api/solver.h

enum class ProgressKind {
  Queued,     ///< request accepted by the service queue (never emitted for
              ///< backpressure-rejected submits, which only see Finished)
  Started,    ///< request left the queue; a worker is running it
  Phase,      ///< solver pipeline entered a named phase
  Incumbent,  ///< the solver's best-known makespan improved
  Finished,   ///< terminal; `result` points at the final SolveResult
};

const char* to_string(ProgressKind kind);

struct ProgressEvent {
  ProgressKind kind = ProgressKind::Phase;
  /// Service request id; 0 when the solve runs outside a service.
  std::uint64_t request_id = 0;
  /// Registry name of the reporting solver ("" for service-level events).
  std::string solver;
  /// Phase name (Phase events only), e.g. "pipeline", "fallback".
  std::string phase;
  /// Best makespan known so far (Incumbent events only).
  double incumbent_makespan = 0.0;
  /// Seconds since the request was submitted (or the solve started when
  /// running outside a service).
  double elapsed_seconds = 0.0;
  /// Finished events only: the final result. Valid for the duration of the
  /// callback — copy what you need, do not retain the pointer.
  const SolveResult* result = nullptr;
};

/// Observer callback; invoked from worker threads, possibly concurrently
/// for different requests — and, for Queued events, while the service
/// holds its internal lock. Callbacks must be cheap, thread-safe, and must
/// never call back into the service. An empty function disables streaming.
using ProgressFn = std::function<void(const ProgressEvent&)>;

}  // namespace bagsched::api
