// Adapters wrapping every legacy entry point behind the Solver interface.
//
// Each adapter maps the shared SolveOptions onto the native option struct,
// runs the algorithm, and reports the native statistics as typed telemetry.
// Instance validation has already happened in Solver::solve.
#include "api/solvers.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "eptas/eptas.h"
#include "lp/model.h"
#include "milp/branch_and_bound.h"
#include "sched/bag_lpt.h"
#include "sched/exact.h"
#include "sched/exact_parallel.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "sched/lpt.h"
#include "sched/multifit.h"
#include "util/stopwatch.h"

namespace bagsched::api {

namespace {

/// Incumbent emitter for the streaming solvers: adapts the native
/// `on_incumbent(double)` hooks onto the caller's ProgressFn. Returns an
/// empty function when no observer is installed, so the native layers skip
/// the calls entirely.
std::function<void(double)> incumbent_emitter(const SolveOptions& options,
                                              std::string solver) {
  if (!options.progress) return {};
  // The stopwatch is shared by every emission of this solve.
  auto timer = std::make_shared<util::Stopwatch>();
  return [progress = options.progress, solver = std::move(solver),
          timer](double makespan) {
    ProgressEvent event;
    event.kind = ProgressKind::Incumbent;
    event.solver = solver;
    event.incumbent_makespan = makespan;
    event.elapsed_seconds = timer->seconds();
    progress(event);
  };
}

void emit_phase(const SolveOptions& options, const std::string& solver,
                std::string phase, double elapsed_seconds = 0.0) {
  if (!options.progress) return;
  ProgressEvent event;
  event.kind = ProgressKind::Phase;
  event.solver = solver;
  event.phase = std::move(phase);
  event.elapsed_seconds = elapsed_seconds;
  options.progress(event);
}

class EptasSolver final : public Solver {
 public:
  EptasSolver()
      : Solver({.name = "eptas",
                .summary = "SPAA'19 EPTAS: dual approximation + pattern MILP",
                .guarantee = Guarantee::Eptas,
                .exact = false,
                .respects_bags = true,
                .guarantee_text = "(1+eps)*OPT when the pipeline certifies",
                .typical_scale = "n <= ~1000"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    eptas::EptasConfig config = options.eptas;
    if (config.cancel == nullptr) config.cancel = options.cancel;
    config.milp.time_limit_seconds = std::min(
        config.milp.time_limit_seconds, options.time_limit_seconds);
    if (config.milp.cancel == nullptr) config.milp.cancel = config.cancel;
    // Speculative parallel guess search: same semantics as exact-parallel
    // (0 = hardware concurrency). Results are bit-identical at every
    // thread count, so this only affects wall time.
    config.num_threads = options.num_threads;

    util::Stopwatch timer;
    emit_phase(options, name(), "pipeline");
    if (options.progress && !config.on_probe) {
      // Stream every consumed dual-approximation probe as a Phase event
      // (deterministic order; emitted from the search's controller thread).
      config.on_probe = [&options, this,
                         &timer](const eptas::GuessProbeEvent& event) {
        std::ostringstream phase;
        phase << "guess[" << event.index << "] T="
              << event.guess << (event.success ? " ok" : " fail");
        if (event.anchor) phase << " anchor";
        if (event.memo_hit) phase << " memo";
        if (event.warm_columns > 0) {
          phase << " warm=" << event.warm_columns;
        }
        emit_phase(options, name(), phase.str(), timer.seconds());
      };
    }
    const auto native = eptas::eptas_schedule(instance, options.eps, config);
    if (native.stats.used_fallback) {
      emit_phase(options, name(), "fallback", timer.seconds());
    }
    result.schedule = native.schedule;
    // A fired token only affected this run when it forced the fallback; a
    // pipeline-certified result completed before the stop.
    result.cancelled = util::stop_requested(config.cancel) &&
                       native.stats.used_fallback;

    const auto& stats = native.stats;
    result.stats["guesses"] = static_cast<long long>(stats.guesses_tried);
    result.stats["final_guess"] = stats.final_guess;
    result.stats["greedy_upper"] = stats.greedy_upper;
    result.stats["pipeline_succeeded"] = stats.pipeline_succeeded;
    result.stats["pipeline_makespan"] = stats.pipeline_makespan;
    result.stats["used_fallback"] = stats.used_fallback;
    result.stats["columns"] = static_cast<long long>(stats.columns);
    result.stats["pricing_rounds"] =
        static_cast<long long>(stats.pricing_rounds);
    result.stats["lp_iterations"] = stats.lp_iterations;
    result.stats["milp_nodes"] = stats.milp_nodes;
    result.stats["swaps"] = static_cast<long long>(stats.swaps);
    result.stats["origin_repairs"] =
        static_cast<long long>(stats.origin_repairs);
    result.stats["lift_swaps"] = static_cast<long long>(stats.lift_swaps);
    result.stats["rescues"] = static_cast<long long>(stats.rescues);
    // Speculative search / cross-guess reuse telemetry. probes_launched
    // and probes_cancelled describe the actual execution (speculation
    // included) and vary with the thread count; the rest is deterministic.
    result.stats["threads"] = static_cast<long long>(stats.threads_used);
    result.stats["probes_launched"] =
        static_cast<long long>(stats.probes_launched);
    result.stats["probes_cancelled"] =
        static_cast<long long>(stats.probes_cancelled);
    result.stats["probes_memo_hits"] =
        static_cast<long long>(stats.probes_memo_hits);
    result.stats["columns_warm_started"] =
        static_cast<long long>(stats.columns_warm_started);
    result.stats["pricing_rounds_saved"] =
        static_cast<long long>(stats.pricing_rounds_saved);
  }
};

class ExactSolver final : public Solver {
 public:
  ExactSolver()
      : Solver({.name = "exact",
                .summary = "branch-and-bound over job->machine assignments",
                .guarantee = Guarantee::Exact,
                .exact = true,
                .respects_bags = true,
                .guarantee_text = "optimal within node/time budget",
                .typical_scale = "n <= ~24"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    sched::ExactOptions native_options;
    native_options.max_nodes = options.max_nodes;
    native_options.time_limit_seconds = options.time_limit_seconds;
    native_options.cancel = options.cancel;
    native_options.on_incumbent = incumbent_emitter(options, name());

    const auto native = sched::solve_exact(instance, native_options);
    result.schedule = native.schedule;
    result.proven_optimal = native.proven_optimal;
    result.cancelled = native.cancelled;
    result.stats["nodes"] = native.nodes;
    result.stats["proven_optimal"] = native.proven_optimal;
  }
};

class ExactParallelSolver final : public Solver {
 public:
  ExactParallelSolver()
      : Solver({.name = "exact-parallel",
                .summary = "work-stealing parallel branch-and-bound",
                .guarantee = Guarantee::Exact,
                .exact = true,
                .respects_bags = true,
                .guarantee_text = "optimal within node/time budget",
                .typical_scale = "n <= ~28 (threads permitting)"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    sched::ExactParallelOptions native_options;
    native_options.base.max_nodes = options.max_nodes;
    native_options.base.time_limit_seconds = options.time_limit_seconds;
    native_options.base.cancel = options.cancel;
    native_options.base.on_incumbent = incumbent_emitter(options, name());
    native_options.num_threads = options.num_threads;

    const auto native =
        sched::solve_exact_parallel(instance, native_options);
    result.schedule = native.schedule;
    result.proven_optimal = native.proven_optimal;
    result.cancelled = native.cancelled;
    result.stats["nodes"] = native.nodes;
    result.stats["proven_optimal"] = native.proven_optimal;
    result.stats["threads"] = static_cast<long long>(
        native_options.num_threads > 0
            ? native_options.num_threads
            : static_cast<int>(std::max(
                  1u, std::thread::hardware_concurrency())));
  }
};

class MilpSolver final : public Solver {
 public:
  MilpSolver()
      : Solver({.name = "milp",
                .summary = "assignment MILP (x_ji binaries) via in-repo B&B",
                .guarantee = Guarantee::Exact,
                .exact = true,
                .respects_bags = true,
                .guarantee_text = "optimal within node/time budget",
                .typical_scale = "n*m <= ~150"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    const int n = instance.num_jobs();
    const int m = instance.num_machines();

    // min C  s.t.  sum_i x_ji = 1         for every job j
    //              sum_j p_j x_ji <= C    for every machine i
    //              sum_{j in B_l} x_ji <= 1  for every bag l, machine i
    lp::Model lp_model;
    const int c_var = lp_model.add_variable(1.0, 0.0, lp::kInfinity, "C");
    std::vector<int> x(static_cast<std::size_t>(n) *
                       static_cast<std::size_t>(std::max(m, 1)));
    std::vector<int> integer_variables;
    integer_variables.reserve(x.size());
    auto x_at = [&](int job, int machine) -> int& {
      return x[static_cast<std::size_t>(job) * static_cast<std::size_t>(m) +
               static_cast<std::size_t>(machine)];
    };
    for (int job = 0; job < n; ++job) {
      for (int machine = 0; machine < m; ++machine) {
        x_at(job, machine) = lp_model.add_variable(0.0, 0.0, 1.0);
        integer_variables.push_back(x_at(job, machine));
      }
    }
    for (int job = 0; job < n; ++job) {
      std::vector<std::pair<int, double>> row;
      for (int machine = 0; machine < m; ++machine) {
        row.emplace_back(x_at(job, machine), 1.0);
      }
      lp_model.add_constraint(std::move(row), lp::Sense::Equal, 1.0);
    }
    for (int machine = 0; machine < m; ++machine) {
      std::vector<std::pair<int, double>> row;
      for (int job = 0; job < n; ++job) {
        row.emplace_back(x_at(job, machine), instance.job(job).size);
      }
      row.emplace_back(c_var, -1.0);
      lp_model.add_constraint(std::move(row), lp::Sense::LessEqual, 0.0);
    }
    for (model::BagId bag = 0; bag < instance.num_bags(); ++bag) {
      if (instance.bag_size(bag) < 2) continue;
      for (int machine = 0; machine < m; ++machine) {
        std::vector<std::pair<int, double>> row;
        for (const model::JobId job : instance.bag(bag)) {
          row.emplace_back(x_at(job, machine), 1.0);
        }
        lp_model.add_constraint(std::move(row), lp::Sense::LessEqual, 1.0);
      }
    }

    milp::MilpOptions native_options;
    native_options.max_nodes = options.max_nodes;
    native_options.time_limit_seconds = options.time_limit_seconds;
    native_options.cancel = options.cancel;
    // The objective variable C is the makespan, so MILP incumbents stream
    // directly as incumbent makespans.
    native_options.on_incumbent = incumbent_emitter(options, name());

    const auto native =
        milp::solve(lp_model, integer_variables, native_options);
    result.stats["nodes"] = native.nodes_explored;
    result.stats["lp_iterations"] = native.lp_iterations;
    result.stats["milp_status"] = std::string(milp::to_string(native.status));
    // Exact attribution from the search itself: a token that fired after
    // the budget already stopped the run doesn't count as a cancellation.
    result.cancelled = native.cancelled;

    if (native.status == milp::MilpStatus::Optimal ||
        native.status == milp::MilpStatus::Feasible) {
      result.schedule = model::Schedule(n, m);
      for (int job = 0; job < n; ++job) {
        for (int machine = 0; machine < m; ++machine) {
          if (native.x[static_cast<std::size_t>(x_at(job, machine))] > 0.5) {
            result.schedule.assign(job, machine);
            break;
          }
        }
      }
      result.proven_optimal = native.status == milp::MilpStatus::Optimal;
      // best_bound is -inf when the search stopped before bounding the
      // root; infinities don't survive JSON telemetry, so only report
      // proven finite bounds.
      if (std::isfinite(native.best_bound)) {
        result.stats["best_bound"] = native.best_bound;
      }
      return;
    }
    if (result.cancelled) {
      result.status = SolveStatus::Cancelled;
      return;
    }
    // Budget ran out before any incumbent: fall back to the greedy so the
    // caller still gets a feasible schedule; the telemetry says what
    // happened.
    result.schedule = sched::greedy_bags(instance);
    result.stats["milp_fallback"] = true;
  }
};

class LocalSearchSolver final : public Solver {
 public:
  LocalSearchSolver()
      : Solver({.name = "local-search",
                .summary = "relocate+swap descent from the greedy start",
                .guarantee = Guarantee::Heuristic,
                .exact = false,
                .respects_bags = true,
                .guarantee_text = "local optimum of the move neighbourhood",
                .typical_scale = "n <= ~1e5"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    sched::LocalSearchOptions native_options;
    native_options.max_moves = options.max_moves;
    native_options.seed = options.seed;
    native_options.cancel = options.cancel;
    native_options.on_incumbent = incumbent_emitter(options, name());
    result.schedule = sched::greedy_bags(instance);
    const auto descent =
        sched::improve(instance, result.schedule, native_options);
    // Exact: improve() reports a cancellation only when the token stopped
    // the descent before convergence, so a token firing after the local
    // optimum was reached doesn't inflate PortfolioResult::cancelled_count.
    result.cancelled = descent.cancelled;
    result.stats["moves"] = descent.accepted_moves;
  }
};

class GreedyBagsSolver final : public Solver {
 public:
  GreedyBagsSolver()
      : Solver({.name = "greedy-bags",
                .summary = "LPT list scheduling onto feasible machines",
                .guarantee = Guarantee::Heuristic,
                .exact = false,
                .respects_bags = true,
                .guarantee_text = "feasible; no ratio bound with bags",
                .typical_scale = "n <= ~1e6"}) {}

  void run(const model::Instance& instance, const SolveOptions&,
           SolveResult& result) const override {
    result.schedule = sched::greedy_bags(instance);
  }
};

class BagLptSolver final : public Solver {
 public:
  BagLptSolver()
      : Solver({.name = "bag-lpt",
                .summary = "paper section-4 bag-LPT over whole bags",
                .guarantee = Guarantee::Heuristic,
                .exact = false,
                .respects_bags = true,
                .guarantee_text = "machine spread <= p_max (Lemma 8)",
                .typical_scale = "n <= ~1e6"}) {}

  void run(const model::Instance& instance, const SolveOptions&,
           SolveResult& result) const override {
    result.schedule = sched::bag_lpt(instance);
  }
};

class MultifitSolver final : public Solver {
 public:
  MultifitSolver()
      : Solver({.name = "multifit",
                .summary = "MULTIFIT capacity search with bag-aware FFD",
                .guarantee = Guarantee::Heuristic,
                .exact = false,
                .respects_bags = true,
                .guarantee_text = "empirical; 13/11 bound unproven with bags",
                .typical_scale = "n <= ~1e6"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    sched::MultifitOptions native_options;
    native_options.iterations = options.multifit_iterations;
    result.schedule = sched::multifit(instance, native_options);
    result.stats["iterations"] =
        static_cast<long long>(options.multifit_iterations);
  }
};

class LptSolver final : public Solver {
 public:
  LptSolver()
      : Solver({.name = "lpt",
                .summary = "Graham LPT ignoring bags (reference bound)",
                .guarantee = Guarantee::Reference,
                .exact = false,
                .respects_bags = false,
                .guarantee_text = "4/3-OPT of the UNconstrained problem",
                .typical_scale = "n <= ~1e6"}) {}

  void run(const model::Instance& instance, const SolveOptions&,
           SolveResult& result) const override {
    result.schedule = sched::lpt(instance);
  }
};

class GreedyStackSolver final : public Solver {
 public:
  GreedyStackSolver()
      : Solver({.name = "greedy-stack",
                .summary = "Figure-1 trap: stack large jobs first-fit",
                .guarantee = Guarantee::Heuristic,
                .exact = false,
                .respects_bags = true,
                .guarantee_text = "adversarial baseline (5/3*OPT on Fig. 1)",
                .typical_scale = "n <= ~1e6"}) {}

  void run(const model::Instance& instance, const SolveOptions& options,
           SolveResult& result) const override {
    result.schedule =
        sched::greedy_stack_large_first(instance, options.stack_threshold);
    result.stats["stack_threshold"] = options.stack_threshold;
  }
};

}  // namespace

std::vector<std::unique_ptr<Solver>> make_builtin_solvers() {
  std::vector<std::unique_ptr<Solver>> solvers;
  solvers.push_back(std::make_unique<EptasSolver>());
  solvers.push_back(std::make_unique<ExactSolver>());
  solvers.push_back(std::make_unique<ExactParallelSolver>());
  solvers.push_back(std::make_unique<MilpSolver>());
  solvers.push_back(std::make_unique<LptSolver>());
  solvers.push_back(std::make_unique<BagLptSolver>());
  solvers.push_back(std::make_unique<GreedyBagsSolver>());
  solvers.push_back(std::make_unique<MultifitSolver>());
  solvers.push_back(std::make_unique<LocalSearchSolver>());
  solvers.push_back(std::make_unique<GreedyStackSolver>());
  return solvers;
}

}  // namespace bagsched::api
