// Typed key/value telemetry attached to every SolveResult.
//
// Each solver adapter reports its native statistics (EptasStats fields, B&B
// node counts, local-search moves, ...) under stable string keys so callers
// can log, tabulate or assert on them without knowing the solver's concrete
// result struct.
#pragma once

#include <map>
#include <string>
#include <variant>

namespace bagsched::api {

using TelemetryValue = std::variant<long long, double, bool, std::string>;
using Telemetry = std::map<std::string, TelemetryValue>;

/// Integer statistic, or `fallback` when absent / differently typed.
inline long long stat_int(const Telemetry& stats, const std::string& key,
                          long long fallback = 0) {
  const auto it = stats.find(key);
  if (it == stats.end()) return fallback;
  if (const auto* value = std::get_if<long long>(&it->second)) return *value;
  if (const auto* value = std::get_if<double>(&it->second)) {
    return static_cast<long long>(*value);
  }
  return fallback;
}

/// Real-valued statistic, or `fallback` when absent / differently typed.
inline double stat_real(const Telemetry& stats, const std::string& key,
                        double fallback = 0.0) {
  const auto it = stats.find(key);
  if (it == stats.end()) return fallback;
  if (const auto* value = std::get_if<double>(&it->second)) return *value;
  if (const auto* value = std::get_if<long long>(&it->second)) {
    return static_cast<double>(*value);
  }
  return fallback;
}

/// Boolean statistic, or `fallback` when absent / differently typed.
inline bool stat_bool(const Telemetry& stats, const std::string& key,
                      bool fallback = false) {
  const auto it = stats.find(key);
  if (it == stats.end()) return fallback;
  if (const auto* value = std::get_if<bool>(&it->second)) return *value;
  return fallback;
}

/// String statistic, or `fallback` when absent / differently typed.
inline std::string stat_str(const Telemetry& stats, const std::string& key,
                            std::string fallback = {}) {
  const auto it = stats.find(key);
  if (it == stats.end()) return fallback;
  if (const auto* value = std::get_if<std::string>(&it->second)) {
    return *value;
  }
  return fallback;
}

/// Human-readable rendering for logs and tables.
std::string to_string(const TelemetryValue& value);

}  // namespace bagsched::api
