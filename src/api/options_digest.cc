#include "api/options_digest.h"

#include <bit>

namespace bagsched::api {

namespace {

std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

#define BAGSCHED_DIGEST_FIELD(name, expr)                              \
  DigestField {                                                        \
    name, [](util::Hash128& hash, const SolveOptions& options) {       \
      (void)options;                                                   \
      hash.update(expr);                                               \
    }                                                                  \
  }

const std::vector<DigestField>& registry() {
  // Result-relevant core options first, then the EPTAS knobs: the constants
  // profile and its caps, the reuse/enumeration toggles, the guess grid and
  // the nested MILP budgets all steer which schedule comes out.
  static const std::vector<DigestField> fields = {
      BAGSCHED_DIGEST_FIELD("eps", bits(options.eps)),
      BAGSCHED_DIGEST_FIELD("time_limit_seconds",
                            bits(options.time_limit_seconds)),
      BAGSCHED_DIGEST_FIELD(
          "max_nodes", static_cast<std::uint64_t>(options.max_nodes)),
      BAGSCHED_DIGEST_FIELD(
          "max_moves", static_cast<std::uint64_t>(options.max_moves)),
      BAGSCHED_DIGEST_FIELD(
          "multifit_iterations",
          static_cast<std::uint64_t>(options.multifit_iterations)),
      BAGSCHED_DIGEST_FIELD("seed", options.seed),
      BAGSCHED_DIGEST_FIELD("stack_threshold",
                            bits(options.stack_threshold)),
      BAGSCHED_DIGEST_FIELD(
          "eptas.profile",
          static_cast<std::uint64_t>(options.eptas.profile)),
      BAGSCHED_DIGEST_FIELD(
          "eptas.max_priority_per_size",
          static_cast<std::uint64_t>(options.eptas.max_priority_per_size)),
      BAGSCHED_DIGEST_FIELD(
          "eptas.max_priority_total",
          static_cast<std::uint64_t>(options.eptas.max_priority_total)),
      BAGSCHED_DIGEST_FIELD(
          "eptas.max_patterns",
          static_cast<std::uint64_t>(options.eptas.max_patterns)),
      BAGSCHED_DIGEST_FIELD(
          "eptas.max_milp_patterns",
          static_cast<std::uint64_t>(options.eptas.max_milp_patterns)),
      BAGSCHED_DIGEST_FIELD("eptas.enable_rescue",
                            options.eptas.enable_rescue ? 1ULL : 0ULL),
      BAGSCHED_DIGEST_FIELD("eptas.warm_start",
                            options.eptas.warm_start ? 1ULL : 0ULL),
      BAGSCHED_DIGEST_FIELD("eptas.use_enumerated_milp",
                            options.eptas.use_enumerated_milp ? 1ULL : 0ULL),
      BAGSCHED_DIGEST_FIELD("eptas.guess_step_fraction",
                            bits(options.eptas.guess_step_fraction)),
      BAGSCHED_DIGEST_FIELD(
          "eptas.milp.max_nodes",
          static_cast<std::uint64_t>(options.eptas.milp.max_nodes)),
      BAGSCHED_DIGEST_FIELD("eptas.milp.time_limit_seconds",
                            bits(options.eptas.milp.time_limit_seconds)),
  };
  return fields;
}

#undef BAGSCHED_DIGEST_FIELD

}  // namespace

const std::vector<DigestField>& digest_fields() { return registry(); }

std::vector<std::string> digest_field_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const DigestField& field : registry()) names.emplace_back(field.name);
  return names;
}

std::uint64_t options_digest(const SolveOptions& options) {
  util::Hash128 hash(0x0d16e57ULL);
  for (const DigestField& field : registry()) field.mix(hash, options);
  return hash.lo();
}

}  // namespace bagsched::api
