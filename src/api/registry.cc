#include "api/registry.h"

#include <sstream>
#include <stdexcept>

#include "api/solvers.h"

namespace bagsched::api {

SolverRegistry::SolverRegistry() : solvers_(make_builtin_solvers()) {}

const SolverRegistry& SolverRegistry::global() {
  static const SolverRegistry registry;
  return registry;
}

const Solver* SolverRegistry::find(const std::string& name) const {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

const Solver& SolverRegistry::resolve(const std::string& name) const {
  if (const Solver* solver = find(name)) return *solver;
  std::ostringstream message;
  message << "unknown solver \"" << name << "\"; registered solvers:";
  for (const auto& solver : solvers_) {
    message << " " << solver->name();
  }
  throw std::invalid_argument(message.str());
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(solvers_.size());
  for (const auto& solver : solvers_) {
    result.push_back(solver->name());
  }
  return result;
}

std::vector<const Solver*> SolverRegistry::all() const {
  std::vector<const Solver*> result;
  result.reserve(solvers_.size());
  for (const auto& solver : solvers_) {
    result.push_back(solver.get());
  }
  return result;
}

}  // namespace bagsched::api
