// JSON serialization for the service boundary: SolveRequest in,
// SolveResult (with Telemetry) out, so results cross process boundaries
// machine-readably. See README "JSON result schema" for the shapes.
//
//   const util::Json doc = api::to_json(result);
//   socket << doc.dump();
//   ...
//   const api::SolveResult back =
//       api::solve_result_from_json(util::Json::parse(text));
//
// Notes on fidelity:
//   * Telemetry round-trips exactly (type tags distinguish int/real/bool/
//     string values; integers beyond 2^53 — like uint64 seeds — are
//     written as decimal strings so no precision is lost in a double).
//   * SolveOptions round-trips its scalar fields; the cancellation token,
//     progress callback and the advanced EptasConfig are process-local and
//     are not serialized.
//   * A request's absolute deadline is serialized as "deadline_seconds"
//     (seconds remaining at serialization time) and re-anchored to now()
//     when parsed — steady-clock time points don't cross processes.
#pragma once

#include "api/request.h"
#include "api/solver.h"
#include "util/json.h"

namespace bagsched::api {

util::Json to_json(const Telemetry& telemetry);
Telemetry telemetry_from_json(const util::Json& json);

/// SolveOptions round-trip (scalar fields only; tokens/callbacks are
/// process-local). Exposed for the session journal, which persists a
/// session's solve configuration alongside its instance.
util::Json options_to_json(const SolveOptions& options);
SolveOptions options_from_json(const util::Json& json);

/// `include_schedule=false` drops the per-job assignment (makespan and
/// telemetry only) for lighter result streams.
util::Json to_json(const SolveResult& result, bool include_schedule = true);
SolveResult solve_result_from_json(const util::Json& json);

util::Json to_json(const SolveRequest& request);
SolveRequest solve_request_from_json(const util::Json& json);

/// Delta shape: {"arrivals":[{"size":s,"bag":b},...], "departures":[ids],
/// "resizes":[{"job":j,"size":s},...], "machines_added":k,
/// "failed_machines":[ids]} — empty fields are omitted on the way out and
/// default on the way in, so "{}" parses as the noop delta.
util::Json to_json(const model::Delta& delta);
model::Delta delta_from_json(const util::Json& json);

/// DeltaRequest carries {"session": id, "delta": {...}} plus the shared
/// base fields (priority, deadline_seconds).
util::Json to_json(const DeltaRequest& request);
DeltaRequest delta_request_from_json(const util::Json& json);

/// Inverse of to_string(SolveStatus); throws std::runtime_error on an
/// unknown name.
SolveStatus solve_status_from_string(const std::string& name);

}  // namespace bagsched::api
