// Internal factory producing one instance of every built-in solver adapter.
// Used by SolverRegistry; callers resolve solvers through the registry.
#pragma once

#include <memory>
#include <vector>

#include "api/solver.h"

namespace bagsched::api {

std::vector<std::unique_ptr<Solver>> make_builtin_solvers();

}  // namespace bagsched::api
