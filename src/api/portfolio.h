// Parallel solver portfolio: fan several registered solvers out over a
// thread pool, return the best feasible schedule, and cancel stragglers as
// soon as one solver delivers an optimality certificate.
//
//   api::Portfolio portfolio({"eptas", "local-search", "multifit"});
//   const auto run = portfolio.solve(instance, {.eps = 0.25});
//   run.best.makespan;              // minimum over the feasible results
//   run.runs[0].stats;              // per-solver telemetry, one per name
//
// Certificates that trigger cancellation of the remaining solvers:
//   * a solver proves optimality (exact / MILP, or makespan == lower bound);
//   * the EPTAS pipeline certifies, so the result is within (1+O(eps))*OPT.
// Cancellation is cooperative: the losers observe the shared token inside
// their hot loops and return their best incumbent so far.
#pragma once

#include <string>
#include <vector>

#include "api/solver.h"
#include "model/instance.h"

namespace bagsched::api {

struct PortfolioOptions {
  /// Worker threads; 0 = one per portfolio member (capped by hardware).
  std::size_t num_threads = 0;
  /// Cancel the remaining solvers once a certificate is in hand.
  bool cancel_on_certificate = true;
  /// An EPTAS result counts as a certificate only when its pipeline
  /// succeeded (fallback results carry no (1+eps) guarantee).
  bool eptas_certificate = true;
};

struct PortfolioResult {
  /// The minimum-makespan feasible result; status Infeasible when no
  /// portfolio member produced a feasible schedule.
  SolveResult best;
  /// One result per requested solver, in request order.
  std::vector<SolveResult> runs;
  double wall_seconds = 0.0;
  int cancelled_count = 0;  ///< solvers that observed the cancellation

  bool ok() const { return best.ok(); }
};

class Portfolio {
 public:
  /// Default portfolio: eptas + local-search + multifit + bag-lpt +
  /// greedy-bags (every scale-friendly bag-respecting solver).
  Portfolio();
  /// Portfolio over the given registry names; throws like
  /// SolverRegistry::resolve on unknown names.
  explicit Portfolio(std::vector<std::string> solvers,
                     PortfolioOptions portfolio_options = {});

  const std::vector<std::string>& solvers() const { return solvers_; }

  /// Runs every member on the instance with the shared options (the
  /// caller's options.cancel token is honoured on top of the internal
  /// certificate cancellation).
  PortfolioResult solve(const model::Instance& instance,
                        const SolveOptions& options = {}) const;

 private:
  std::vector<std::string> solvers_;
  PortfolioOptions portfolio_options_;
};

}  // namespace bagsched::api
