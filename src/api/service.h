// Long-lived asynchronous scheduling service — the production entry point
// of the library.
//
//   api::SchedulingService service({.num_threads = 8});
//   auto request = api::make_request(instance, {.eps = 0.25}, {"eptas"});
//   request.deadline = api::deadline_in(0.5);
//   api::SolveHandle handle = service.submit(std::move(request));
//   ... do other work ...
//   const api::SolveResult& result = handle.wait();
//
// The service owns one shared util::ThreadPool and a priority/deadline-
// aware request queue with a configurable concurrency cap. Every request
// gets its own CancellationToken chained onto the caller's: deadline
// expiry (tracked by a watchdog thread) and SolveHandle::cancel() both
// request a cooperative stop, and the handle then resolves with
// SolveStatus::Cancelled carrying the best incumbent found before the
// stop. submit_batch() fans a vector of requests through the queue and
// returns all handles at once. Progress (Queued / Started / Phase /
// Incumbent / Finished) streams to the request's on_progress callback.
//
// Portfolio::solve is a thin client of this service, so single solves,
// portfolio races and batched service traffic all go through one
// scheduling path.
//
// Requests that opt in via SolveOptions::cache_mode additionally pass
// through a canonicalizing solve cache (src/cache): results are keyed by
// the instance's symmetry-invariant fingerprint, so a repeat of a solved
// request — even job-permuted, bag-relabeled, or (for approximation
// solvers) eps-rounded-equal — resolves from the cache without running a
// solver, and concurrent identical requests single-flight onto one
// underlying solve.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/request.h"
#include "api/solver.h"
#include "cache/solve_cache.h"
#include "online/session.h"
#include "util/thread_pool.h"

namespace bagsched::persist {
class SessionJournal;
struct RecoveredState;
}  // namespace bagsched::persist

namespace bagsched::api {

namespace detail {
struct RequestState;
struct SessionState;
}

/// Caller's view of one submitted request. Cheap to copy (shared state);
/// all methods are thread-safe. A default-constructed handle is invalid:
/// wait()/wait_for() throw std::logic_error on it, try_get() returns
/// nullopt, done() returns false and cancel() is a no-op.
class SolveHandle {
 public:
  SolveHandle() = default;

  bool valid() const { return state_ != nullptr; }
  /// Service-assigned id (1-based, unique per service); 0 when invalid.
  std::uint64_t id() const;

  /// Blocks until the request resolves; the reference stays valid for the
  /// handle's lifetime.
  const SolveResult& wait();
  /// Non-blocking: the result when resolved, std::nullopt while in flight.
  std::optional<SolveResult> try_get() const;
  /// Blocks up to `seconds`; true when the request resolved in time.
  bool wait_for(double seconds) const;
  bool done() const;

  /// Cooperative cancellation: requests a stop; the handle still resolves
  /// (with SolveStatus::Cancelled and the best incumbent, if any).
  void cancel();

 private:
  friend class SchedulingService;
  explicit SolveHandle(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::RequestState> state_;
};

struct ServiceConfig {
  /// Worker threads in the shared pool (hardware concurrency when 0).
  std::size_t num_threads = 0;
  /// Requests running concurrently; queue the rest (pool size when 0).
  std::size_t max_concurrent = 0;
  /// Pending-queue cap; submits beyond it resolve immediately with
  /// status Cancelled and error "rejected: ..." (0 = unbounded).
  std::size_t max_queue_depth = 0;
  /// Canonicalizing solve cache (shards, byte budget). Consulted only by
  /// requests whose SolveOptions::cache_mode is not Off.
  cache::CacheConfig cache;
  /// Durable session journal (persist/journal.h), not owned; nullptr = no
  /// durability. When set, every session open/commit/close is appended
  /// BEFORE its handle resolves (append-before-ack), so an acked commit
  /// survives a crash. An append failure poisons the session: the op
  /// resolves with status Error and the session closes.
  persist::SessionJournal* journal = nullptr;
};

/// One consistent snapshot: stats() captures every field under a single
/// acquisition of the service lock (all counters are updated under that
/// same lock), so exported values — e.g. the /metrics endpoint of
/// net::SchedServer — are never torn against each other: a drained
/// service always shows submitted == finished and queue_depth == active
/// == 0 in the same snapshot.
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted requests (excludes rejected)
  std::uint64_t rejected = 0;   ///< bounced off the max_queue_depth cap
  std::size_t queue_depth = 0;  ///< gauge: waiting for a slot right now
  std::size_t active = 0;       ///< gauge: in flight right now
  std::uint64_t finished = 0;   ///< accepted requests that resolved —
                                ///< submitted == finished once drained;
                                ///< rejected handles resolve too but are
                                ///< counted under rejected, not here
  std::uint64_t cache_hits = 0;  ///< requests served from the solve cache
                                 ///< (without running a solver)
  std::uint64_t cache_rounded_hits = 0;  ///< subset of cache_hits that came
                                         ///< through the eps-rounded key
  std::uint64_t dedup_shared = 0;  ///< single-flight followers resolved
                                   ///< from another request's solve
  /// Exponential moving average of queue wait (seconds), updated at every
  /// dispatch. The overload signal for net::SchedServer's brown-out mode:
  /// it rises when requests sit in the queue and decays as dispatch
  /// latency recovers, without a scrape-window dependency.
  double queue_wait_ewma_seconds = 0.0;
  // --- Online sessions (v2) ---------------------------------------------
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::size_t open_sessions = 0;     ///< gauge
  std::uint64_t session_deltas = 0;  ///< resolved delta requests
  /// Deltas settled without a full solve (noop / memo / repair / region).
  std::uint64_t session_repaired = 0;
  /// Deltas that fell through to a fresh portfolio solve.
  std::uint64_t session_fresh = 0;
  // --- Durability (v3) ---------------------------------------------------
  /// Sessions re-adopted from the journal at boot (restore_sessions).
  std::uint64_t sessions_restored = 0;
  /// Deltas answered from the previous commit via expect_revision dedupe
  /// (the commit was applied but its ack was lost).
  std::uint64_t session_duplicates = 0;
};

class SchedulingService {
 public:
  using Config = ServiceConfig;
  using Stats = ServiceStats;

  explicit SchedulingService(Config config = {});
  /// Cancels everything in flight, resolves all pending handles with
  /// status Cancelled, and joins the workers.
  ~SchedulingService();

  SchedulingService(const SchedulingService&) = delete;
  SchedulingService& operator=(const SchedulingService&) = delete;

  /// Validates eagerly — throws std::invalid_argument on a null instance
  /// or an unknown solver name (like SolverRegistry::resolve), and
  /// std::logic_error after shutdown began. Backpressure does NOT throw:
  /// past max_queue_depth the handle resolves immediately as rejected.
  SolveHandle submit(SolveRequest request);

  /// Fans a vector of requests through the queue atomically (they are
  /// prioritised against each other before any of them dispatches) and
  /// returns all handles at once, in request order.
  std::vector<SolveHandle> submit_batch(std::vector<SolveRequest> requests);

  // --- Online sessions (v2) ------------------------------------------------

  /// A freshly opened session: the id to address deltas to, plus the handle
  /// of the initial solve (the session's first committed schedule). The
  /// session accepts deltas immediately — they queue behind the initial
  /// solve in the session's FIFO. When the initial solve fails (infeasible
  /// instance), its handle carries the error and the session closes itself;
  /// queued deltas then resolve with "unknown session".
  struct SessionOpening {
    std::uint64_t session = 0;
    /// Resume token: proves to resume_session that a client's session id
    /// is from THIS journal lineage, not a recycled id of a later boot.
    std::uint64_t epoch = 0;
    SolveHandle initial;
  };

  /// Opens a schedule session on the request's instance. The request's
  /// options/solvers become the session's solve configuration; the repair
  /// knobs (regret bound, budgets, memo size) come from `tuning` — its
  /// solve/solvers fields are overwritten from the request. Throws like
  /// submit() on a null instance or unknown solver names.
  SessionOpening open_session(SolveRequest request,
                              online::SessionOptions tuning = {});

  /// Routes a delta to its session. Deltas are serialized per session in
  /// submit order (FIFO); the handle resolves with the repaired schedule
  /// and migration cost, status Error on an unknown/closed session, or
  /// status Infeasible when the delta makes the instance bag-infeasible
  /// (the session then keeps its previous commit and stays open).
  SolveHandle submit(DeltaRequest request);

  /// Closes a session: already-queued deltas still resolve, new ones get
  /// "unknown session". False when the id is unknown (or already closed).
  bool close_session(std::uint64_t session);

  /// What resume_session needs to validate a reconnecting client.
  struct SessionInfo {
    std::uint64_t session = 0;
    std::uint64_t epoch = 0;
    std::uint64_t revision = 0;  ///< committed revisions so far
    std::string digest;          ///< persist::schedule_digest of the commit
  };

  /// Snapshot of an OPEN session's resume-relevant state; nullopt when the
  /// id is unknown or the session is closed/failed.
  std::optional<SessionInfo> session_info(std::uint64_t session) const;

  /// Re-adopts journal-recovered sessions (boot-time, before traffic).
  /// Each session comes back with its committed schedule, revision, epoch
  /// and tuning exactly as journaled — no re-solving. Returns the number
  /// adopted; sessions whose journaled schedule fails validation are
  /// skipped defensively. Also advances the session id counter past every
  /// journaled id so restarted servers never reissue one.
  std::size_t restore_sessions(const persist::RecoveredState& recovered);

  /// Blocks until no request is queued or running.
  void wait_idle();

  Stats stats() const;
  /// Counters of the canonicalizing solve cache (hits/misses/evictions and
  /// the resident footprint). Lookup counts include the service's own
  /// second-chance lookups at dispatch time, so they can exceed
  /// stats().cache_hits + misses of first-time submits.
  cache::CacheStats cache_stats() const { return cache_.stats(); }
  std::size_t num_threads() const { return pool_.size(); }

 private:
  void dispatch_locked();
  void prepare_cache(detail::RequestState& state);
  std::optional<SolveResult> cache_lookup(detail::RequestState& state);
  /// Single-flight admission: attach to an in-flight leader with the same
  /// key as a follower, or become the leader and enter the queue.
  void lead_or_follow_locked(std::shared_ptr<detail::RequestState> state);
  void run_request(std::shared_ptr<detail::RequestState> state);
  SolveResult execute(detail::RequestState& state);
  void resolve(const std::shared_ptr<detail::RequestState>& state,
               SolveResult result, bool emit_finished);
  void watchdog_loop();
  void run_session_op(std::shared_ptr<detail::SessionState> session,
                      std::shared_ptr<detail::RequestState> state);
  /// Pops the session's next pending op onto the pool (or retires the
  /// session when it is closed and drained). Requires mutex_.
  void pump_session_locked(const std::shared_ptr<detail::SessionState>& s);

  Config config_;
  std::size_t max_concurrent_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::condition_variable watchdog_cv_;
  std::vector<std::shared_ptr<detail::RequestState>> queue_;
  std::vector<std::shared_ptr<detail::RequestState>> running_;
  /// Single-flight registry: exact cache key -> the leader request
  /// currently queued or solving it. Guarded by mutex_ (as are the
  /// leaders' follower lists).
  std::unordered_map<cache::CacheKey, std::shared_ptr<detail::RequestState>,
                     cache::CacheKeyHash>
      inflight_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t finished_ = 0;
  // Guarded by mutex_ (like the fields above) so stats() is one coherent
  // cut; bumped where the owning request settles under the lock, not at
  // the lock-free lookup sites.
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_rounded_hits_ = 0;
  std::uint64_t dedup_shared_ = 0;
  double queue_wait_ewma_ = 0.0;
  std::atomic<std::uint64_t> next_id_{0};

  /// Open sessions by id; entries outlive close_session until their FIFO
  /// drains. Guarded by mutex_ (the ScheduleSession object itself is only
  /// touched by the single in-flight op of its session).
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::SessionState>>
      sessions_;
  std::uint64_t next_session_id_ = 0;
  std::size_t session_ops_active_ = 0;  ///< ops on the pool right now
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_closed_ = 0;
  std::uint64_t session_deltas_ = 0;
  std::uint64_t session_repaired_ = 0;
  std::uint64_t session_fresh_ = 0;
  std::uint64_t sessions_restored_ = 0;
  std::uint64_t session_duplicates_ = 0;
  /// Per-boot random nonce mixed into every session epoch, so epochs from
  /// a previous boot never validate against recycled session ids.
  std::uint64_t boot_nonce_ = 0;

  cache::SolveCache cache_;
  util::ThreadPool pool_;
  std::thread watchdog_;
};

}  // namespace bagsched::api
