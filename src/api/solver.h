// The unified solver surface: every scheduling algorithm in the library is
// reachable through Solver::solve(instance, options) -> SolveResult.
//
// Adapters wrap the legacy entry points (eptas::eptas_schedule,
// sched::solve_exact, the heuristics, the assignment MILP) behind one
// contract:
//   * the instance is validated exactly once, up front; malformed or
//     bag-infeasible instances yield a structured SolveStatus::Infeasible
//     result instead of a throw from one solver and garbage from another;
//   * options (eps, budgets, time limit, seed, cancellation) plumb into the
//     native option structs;
//   * results carry the schedule, makespan, lower bound, optimality gap,
//     wall time and per-solver telemetry in one shape.
#pragma once

#include <cstdint>
#include <string>

#include "api/progress.h"
#include "api/telemetry.h"
#include "eptas/config.h"
#include "model/instance.h"
#include "model/schedule.h"
#include "util/cancellation.h"

namespace bagsched::api {

/// What a solver promises about its output.
enum class Guarantee {
  Exact,      ///< proven optimal when the budget allows
  Eptas,      ///< (1 + eps) * OPT when the pipeline certifies
  Heuristic,  ///< feasible, no a-priori ratio
  Reference,  ///< ignores the bag-constraints; lower-bound reference only
};

const char* to_string(Guarantee guarantee);

/// Enumerable metadata describing a registered solver.
struct SolverInfo {
  std::string name;         ///< registry key, e.g. "eptas"
  std::string summary;      ///< one-line description
  Guarantee guarantee = Guarantee::Heuristic;
  bool exact = false;         ///< can prove optimality
  bool respects_bags = true;  ///< output satisfies the bag-constraints
  std::string guarantee_text;  ///< e.g. "(1+eps)*OPT", "optimal"
  std::string typical_scale;   ///< e.g. "n <= 24", "n <= 1e6"
};

/// How a request interacts with the service's canonicalizing solve cache
/// (src/cache). The cache key is the instance's canonical fingerprint —
/// invariant under job re-ordering and bag relabeling — plus the solver
/// selection and the result-relevant options, so "identical request" means
/// identical up to those symmetries.
enum class CacheMode {
  Off,        ///< bypass the cache entirely (default)
  Read,       ///< serve hits, but never store this request's result
  ReadWrite,  ///< serve hits and store cacheable results
};

const char* to_string(CacheMode mode);

/// Options shared by every solver; each adapter reads the fields that apply
/// to it and ignores the rest.
struct SolveOptions {
  /// EPTAS approximation parameter in (0, 1).
  double eps = 0.5;
  /// Wall-clock budget for exact search / MILP (seconds).
  double time_limit_seconds = 30.0;
  /// Node budget for the exact branch-and-bound.
  long long max_nodes = 50'000'000;
  /// Accepted-move budget for local search.
  long long max_moves = 200'000;
  /// Worker threads for the parallel solvers ("exact-parallel", and the
  /// "eptas" speculative guess search — whose results are bit-identical at
  /// every thread count); 0 = hardware concurrency.
  int num_threads = 0;
  /// Binary-search refinements for multifit.
  int multifit_iterations = 24;
  /// PRNG seed: reaches gen::generators (via make_instance) and the
  /// local-search scan order so runs are reproducible.
  std::uint64_t seed = 1;
  /// Large-job threshold for the "greedy-stack" adversarial baseline.
  double stack_threshold = 0.5;
  /// Solve-cache interaction when the request runs through a
  /// SchedulingService (direct Solver::solve calls never consult a cache).
  /// Requests also single-flight: concurrent identical requests share one
  /// underlying solve when their cache_mode is not Off.
  CacheMode cache_mode = CacheMode::Off;
  /// Cooperative cancellation, polled inside the solver hot loops.
  const util::CancellationToken* cancel = nullptr;
  /// Streaming progress: Incumbent events from the incumbent-maintaining
  /// solvers (exact, milp, local-search) and Phase events from the EPTAS
  /// adapter. Invoked on the solving thread; must be thread-safe when the
  /// same options are shared across a portfolio. Empty = no streaming.
  ProgressFn progress;
  /// Advanced EPTAS tuning (constants profile, caps, rescue, MILP budgets).
  /// time_limit_seconds and cancel override the nested MILP settings.
  eptas::EptasConfig eptas;
};

enum class SolveStatus {
  Optimal,     ///< schedule proven optimal (gap 0)
  Feasible,    ///< feasible schedule, optimality not proven
  Infeasible,  ///< instance malformed or no feasible schedule exists
  Error,       ///< solver failed for a non-instance reason (bad options,
               ///< internal failure); the instance may well be solvable
  /// Cancellation (deadline expiry, handle.cancel(), a pre-fired token)
  /// determined the outcome. The result may still carry the best incumbent
  /// found before the stop — when it does, `schedule_feasible`, `makespan`
  /// and `optimality_gap` are filled in exactly as for Feasible results, so
  /// callers can use a deadline-cut schedule without special-casing.
  Cancelled,
};

const char* to_string(SolveStatus status);

struct SolveResult {
  std::string solver;  ///< registry name of the producing solver
  SolveStatus status = SolveStatus::Infeasible;
  model::Schedule schedule;
  double makespan = 0.0;
  double lower_bound = 0.0;     ///< combined lower bound on OPT
  double optimality_gap = 0.0;  ///< makespan / max(lower bound, proven) - 1
  bool proven_optimal = false;
  /// Schedule passes model::validate (complete + bag-feasible). False for
  /// the bag-ignoring reference solvers even when status is Feasible.
  bool schedule_feasible = false;
  bool cancelled = false;  ///< cancellation observed (result may still hold
                           ///< the best incumbent found before the stop)
  /// Migration cost, filled only by the online delta sessions (src/online):
  /// jobs present both before and after a delta whose machine changed,
  /// counted through the delta's machine renumbering (pure relabeling is
  /// not migration). -1 = not a delta result.
  int moved_jobs = -1;
  /// moved_jobs / surviving jobs; 0 when moved_jobs is -1 or no survivors.
  double migration_ratio = 0.0;
  double wall_seconds = 0.0;
  std::string error;  ///< diagnostics when status == Infeasible
  Telemetry stats;    ///< per-solver typed telemetry

  /// True when the result carries a usable schedule.
  bool ok() const {
    return status == SolveStatus::Optimal ||
           status == SolveStatus::Feasible;
  }
};

class Solver {
 public:
  virtual ~Solver() = default;

  const SolverInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  /// Validates the instance once, runs the algorithm, post-fills the shared
  /// result fields (lower bound, gap, wall time, schedule feasibility).
  /// Never throws on infeasible input; returns a structured error instead.
  SolveResult solve(const model::Instance& instance,
                    const SolveOptions& options = {}) const;

 protected:
  explicit Solver(SolverInfo info) : info_(std::move(info)) {}

  /// Algorithm body; the instance has already been validated.
  virtual void run(const model::Instance& instance,
                   const SolveOptions& options, SolveResult& result) const = 0;

 private:
  SolverInfo info_;
};

}  // namespace bagsched::api
