// Name-based solver registry: the single place that knows every scheduling
// algorithm in the library.
//
//   const auto& solver = api::SolverRegistry::global().resolve("eptas");
//   const auto result = solver.solve(instance, {.eps = 0.25});
//
// Registered names: "eptas", "exact", "exact-parallel", "milp", "lpt",
// "bag-lpt", "greedy-bags", "multifit", "local-search", "greedy-stack".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/solver.h"

namespace bagsched::api {

class SolverRegistry {
 public:
  /// The process-wide registry holding every built-in solver.
  static const SolverRegistry& global();

  /// Solver by name; throws std::invalid_argument listing the known names
  /// when `name` is not registered.
  const Solver& resolve(const std::string& name) const;

  /// Solver by name, nullptr when unknown.
  const Solver* find(const std::string& name) const;

  bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }

  /// Registered names in registration order.
  std::vector<std::string> names() const;

  /// Metadata by name; throws like resolve() on unknown names.
  const SolverInfo& info(const std::string& name) const {
    return resolve(name).info();
  }

  /// All registered solvers in registration order.
  std::vector<const Solver*> all() const;

  std::size_t size() const { return solvers_.size(); }

 private:
  SolverRegistry();

  std::vector<std::unique_ptr<Solver>> solvers_;
};

}  // namespace bagsched::api
