#include "api/portfolio.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/registry.h"
#include "api/service.h"
#include "util/stopwatch.h"

namespace bagsched::api {

namespace {

/// A finished result that certifies (near-)optimality: further search
/// cannot beat it meaningfully, so the stragglers get cancelled.
bool is_certificate(const Solver& solver, const SolveResult& result,
                    const PortfolioOptions& options) {
  if (!result.ok() || !result.schedule_feasible) return false;
  if (result.proven_optimal) return true;
  if (options.eptas_certificate &&
      solver.info().guarantee == Guarantee::Eptas &&
      stat_bool(result.stats, "pipeline_succeeded") &&
      !stat_bool(result.stats, "used_fallback")) {
    return true;
  }
  return false;
}

/// Result rank for the best-fold: completed feasible schedules beat
/// cancelled-but-feasible incumbents (the documented Cancelled contract),
/// which beat everything unusable.
int quality(const SolveResult& result) {
  if (!result.schedule_feasible) return 0;
  if (result.ok()) return 2;
  return result.status == SolveStatus::Cancelled ? 1 : 0;
}

/// Lexicographic: quality first, then makespan, then proof.
bool better(const SolveResult& a, const SolveResult& b) {
  if (quality(a) != quality(b)) return quality(a) > quality(b);
  if (quality(a) == 0) return false;
  if (a.makespan != b.makespan) return a.makespan < b.makespan;
  return a.proven_optimal && !b.proven_optimal;
}

}  // namespace

Portfolio::Portfolio()
    : Portfolio({"eptas", "local-search", "multifit", "bag-lpt",
                 "greedy-bags"}) {}

Portfolio::Portfolio(std::vector<std::string> solvers,
                     PortfolioOptions portfolio_options)
    : solvers_(std::move(solvers)),
      portfolio_options_(portfolio_options) {
  // Fail fast on unknown names (resolve throws with the known-name list).
  for (const auto& name : solvers_) {
    SolverRegistry::global().resolve(name);
  }
}

// Thin client of the SchedulingService: one member = one single-solver
// request, all sharing the instance and a chained cancellation token. The
// queueing, fan-out and cancellation wiring live in the service — the
// portfolio only adds its certificate policy (via each member's Finished
// progress event) and the best-result fold.
//
// The service here is per-call (as the legacy per-call ThreadPool was),
// not routed through an ambient one: members must never queue behind the
// very request that is waiting on them, which is exactly what a shared
// queue with a concurrency cap would do (max_concurrent=1 would deadlock).
// Callers who want one long-lived pool submit to a SchedulingService
// directly and keep portfolios as multi-solver requests.
PortfolioResult Portfolio::solve(const model::Instance& instance,
                                 const SolveOptions& options) const {
  util::Stopwatch timer;
  PortfolioResult portfolio_result;
  portfolio_result.runs.resize(solvers_.size());
  if (solvers_.empty()) {
    portfolio_result.best.error = "empty portfolio";
    return portfolio_result;
  }

  // Shared token chained onto the caller's: certificate cancellation and
  // external cancellation both reach every member through one pointer.
  util::CancellationToken shared_cancel(options.cancel);

  const std::size_t threads =
      portfolio_options_.num_threads != 0
          ? portfolio_options_.num_threads
          : std::min<std::size_t>(
                solvers_.size(),
                std::max<std::size_t>(
                    1, std::thread::hardware_concurrency()));
  SchedulingService service(
      {.num_threads = threads, .max_concurrent = threads});

  // Non-owning alias: the instance outlives every handle below because
  // solve() waits for all of them before returning.
  const std::shared_ptr<const model::Instance> shared_instance(
      std::shared_ptr<const void>(), &instance);

  std::vector<SolveRequest> requests;
  requests.reserve(solvers_.size());
  for (const auto& name : solvers_) {
    SolveRequest request = make_request(shared_instance, options, {name});
    request.options.cancel = &shared_cancel;
    if (portfolio_options_.cancel_on_certificate) {
      request.on_progress = [this, &shared_cancel](
                                const ProgressEvent& event) {
        if (event.kind != ProgressKind::Finished) return;
        const Solver* solver =
            SolverRegistry::global().find(event.solver);
        if (solver != nullptr &&
            is_certificate(*solver, *event.result, portfolio_options_)) {
          shared_cancel.request_stop();
        }
      };
    }
    requests.push_back(std::move(request));
  }

  std::vector<SolveHandle> handles =
      service.submit_batch(std::move(requests));
  for (std::size_t i = 0; i < handles.size(); ++i) {
    portfolio_result.runs[i] = handles[i].wait();
  }

  for (const auto& run : portfolio_result.runs) {
    if (run.cancelled) ++portfolio_result.cancelled_count;
    if (better(run, portfolio_result.best)) portfolio_result.best = run;
  }
  if (quality(portfolio_result.best) == 0 &&
      !portfolio_result.runs.empty()) {
    // No usable schedule: surface a run that explains why — the first
    // structured error if any (all members share the same instance, so all
    // infeasibility diagnostics agree), otherwise any run, so an
    // all-cancelled portfolio reports Cancelled rather than a
    // default-constructed Infeasible with no message.
    const SolveResult* fallback = &portfolio_result.runs.front();
    for (const auto& run : portfolio_result.runs) {
      if (!run.error.empty()) {
        fallback = &run;
        break;
      }
    }
    portfolio_result.best = *fallback;
  }
  portfolio_result.wall_seconds = timer.seconds();
  return portfolio_result;
}

}  // namespace bagsched::api
