#include "api/portfolio.h"

#include <algorithm>
#include <mutex>

#include "api/registry.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace bagsched::api {

namespace {

/// A finished result that certifies (near-)optimality: further search
/// cannot beat it meaningfully, so the stragglers get cancelled.
bool is_certificate(const Solver& solver, const SolveResult& result,
                    const PortfolioOptions& options) {
  if (!result.ok() || !result.schedule_feasible) return false;
  if (result.proven_optimal) return true;
  if (options.eptas_certificate &&
      solver.info().guarantee == Guarantee::Eptas &&
      stat_bool(result.stats, "pipeline_succeeded") &&
      !stat_bool(result.stats, "used_fallback")) {
    return true;
  }
  return false;
}

/// Lexicographic quality: feasibility first, then makespan, then proof.
bool better(const SolveResult& a, const SolveResult& b) {
  const bool a_usable = a.ok() && a.schedule_feasible;
  const bool b_usable = b.ok() && b.schedule_feasible;
  if (a_usable != b_usable) return a_usable;
  if (!a_usable) return false;
  if (a.makespan != b.makespan) return a.makespan < b.makespan;
  return a.proven_optimal && !b.proven_optimal;
}

}  // namespace

Portfolio::Portfolio()
    : Portfolio({"eptas", "local-search", "multifit", "bag-lpt",
                 "greedy-bags"}) {}

Portfolio::Portfolio(std::vector<std::string> solvers,
                     PortfolioOptions portfolio_options)
    : solvers_(std::move(solvers)),
      portfolio_options_(portfolio_options) {
  // Fail fast on unknown names (resolve throws with the known-name list).
  for (const auto& name : solvers_) {
    SolverRegistry::global().resolve(name);
  }
}

PortfolioResult Portfolio::solve(const model::Instance& instance,
                                 const SolveOptions& options) const {
  util::Stopwatch timer;
  PortfolioResult portfolio_result;
  portfolio_result.runs.resize(solvers_.size());
  if (solvers_.empty()) {
    portfolio_result.best.error = "empty portfolio";
    return portfolio_result;
  }

  // Shared token chained onto the caller's: certificate cancellation and
  // external cancellation both reach every member through one pointer.
  util::CancellationToken shared_cancel(options.cancel);

  std::mutex mutex;  // guards runs[] writes and the certificate check

  const std::size_t threads =
      portfolio_options_.num_threads != 0
          ? portfolio_options_.num_threads
          : std::min<std::size_t>(
                solvers_.size(),
                std::max<std::size_t>(
                    1, std::thread::hardware_concurrency()));
  util::ThreadPool pool(threads);
  pool.parallel_for(solvers_.size(), [&](std::size_t index) {
    const Solver& solver = SolverRegistry::global().resolve(solvers_[index]);
    SolveOptions member_options = options;
    member_options.cancel = &shared_cancel;
    SolveResult result = solver.solve(instance, member_options);

    std::lock_guard<std::mutex> lock(mutex);
    if (portfolio_options_.cancel_on_certificate &&
        is_certificate(solver, result, portfolio_options_)) {
      shared_cancel.request_stop();
    }
    portfolio_result.runs[index] = std::move(result);
  });

  for (const auto& run : portfolio_result.runs) {
    if (run.cancelled) ++portfolio_result.cancelled_count;
    if (better(run, portfolio_result.best)) portfolio_result.best = run;
  }
  if (!portfolio_result.best.ok() && !portfolio_result.runs.empty()) {
    // No usable schedule: surface a run that explains why — the first
    // structured error if any (all members share the same instance, so all
    // infeasibility diagnostics agree), otherwise any run, so an
    // all-cancelled portfolio reports Cancelled rather than a
    // default-constructed Infeasible with no message.
    const SolveResult* fallback = &portfolio_result.runs.front();
    for (const auto& run : portfolio_result.runs) {
      if (!run.error.empty()) {
        fallback = &run;
        break;
      }
    }
    portfolio_result.best = *fallback;
  }
  portfolio_result.wall_seconds = timer.seconds();
  return portfolio_result;
}

}  // namespace bagsched::api
