// A scheduling request: everything the SchedulingService needs to run one
// solve asynchronously — the instance, the shared SolveOptions, the solver
// (or portfolio) selection, a priority, an absolute deadline and an
// optional streaming progress observer.
//
//   auto request = api::make_request(instance, {.eps = 0.25}, {"eptas"});
//   request.priority = 10;
//   request.deadline = api::deadline_in(0.250);  // 250 ms from now
//   auto handle = service.submit(std::move(request));
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/progress.h"
#include "api/solver.h"
#include "model/instance.h"

namespace bagsched::api {

/// Monotonic clock used for deadlines (absolute time points survive
/// suspend-free wall-clock adjustments; they do NOT cross processes — the
/// JSON form carries seconds-until-deadline instead, see api/serialize.h).
using ServiceClock = std::chrono::steady_clock;

/// Absolute deadline `seconds` from now.
inline ServiceClock::time_point deadline_in(double seconds) {
  return ServiceClock::now() +
         std::chrono::duration_cast<ServiceClock::duration>(
             std::chrono::duration<double>(seconds));
}

struct SolveRequest {
  /// The instance to schedule. Shared (not copied) so a batch of requests
  /// over one workload — or a portfolio fan-out — doesn't duplicate it.
  std::shared_ptr<const model::Instance> instance;

  /// Options passed to every solver the request runs (the service installs
  /// its own cancellation token chained onto options.cancel).
  SolveOptions options;

  /// Solver selection: empty → the default portfolio mix; exactly one
  /// registry name → that solver; several names → a portfolio race over
  /// them (best feasible result wins, stragglers are certificate-cancelled).
  std::vector<std::string> solvers;

  /// Queue priority: larger values dispatch first when the service is
  /// saturated; ties break by deadline (earlier first), then submit order.
  int priority = 0;

  /// Absolute deadline. When it expires the service cooperatively cancels
  /// the run and the handle resolves with SolveStatus::Cancelled carrying
  /// the best incumbent found so far. Unset = no deadline.
  std::optional<ServiceClock::time_point> deadline;

  /// Streaming observer for this request: Queued/Started/Finished from the
  /// service, Phase and Incumbent events from the solvers. Invoked on
  /// worker threads; must be thread-safe and must outlive the request's
  /// completion (waiting on the handle is enough).
  ProgressFn on_progress;
};

/// Convenience builder: owns a copy of the instance.
inline SolveRequest make_request(model::Instance instance,
                                 SolveOptions options = {},
                                 std::vector<std::string> solvers = {}) {
  SolveRequest request;
  request.instance =
      std::make_shared<const model::Instance>(std::move(instance));
  request.options = std::move(options);
  request.solvers = std::move(solvers);
  return request;
}

/// Convenience builder sharing an already-owned instance.
inline SolveRequest make_request(
    std::shared_ptr<const model::Instance> instance,
    SolveOptions options = {}, std::vector<std::string> solvers = {}) {
  SolveRequest request;
  request.instance = std::move(instance);
  request.options = std::move(options);
  request.solvers = std::move(solvers);
  return request;
}

}  // namespace bagsched::api
