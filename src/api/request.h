// The versioned request hierarchy: everything the SchedulingService can be
// asked to do is a RequestBase subtype.
//
//   * SolveRequest — one asynchronous solve of a full instance (the
//     original, v1 request shape);
//   * DeltaRequest — one incremental update against an open schedule
//     session (v2): the service routes it to the session's
//     online::ScheduleSession, which repairs the committed schedule and
//     reports migration cost alongside makespan.
//
// The split exists so the service, the JSON serializer and the wire
// protocol agree on what is shared (options, solver selection, priority,
// deadline, progress observer) versus what is request-specific (the
// instance vs. the session id + delta). kApiVersion gates compatibility:
// serialized requests carry it, and the NDJSON server rejects frames from
// the future (net/protocol.h, DESIGN.md §5).
//
//   auto request = api::make_request(instance, {.eps = 0.25}, {"eptas"});
//   request.priority = 10;
//   request.deadline = api::deadline_in(0.250);  // 250 ms from now
//   auto handle = service.submit(std::move(request));
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/progress.h"
#include "api/solver.h"
#include "model/delta.h"
#include "model/instance.h"

namespace bagsched::api {

/// Version of the request/result surface (and of the NDJSON wire protocol,
/// which mirrors it). v1: solve requests only. v2: delta sessions, the
/// migration-cost result axis, versioned frames. Bump when a change is not
/// understood by older peers; see DESIGN.md §5 for the compatibility rule.
inline constexpr int kApiVersion = 2;

/// Monotonic clock used for deadlines (absolute time points survive
/// suspend-free wall-clock adjustments; they do NOT cross processes — the
/// JSON form carries seconds-until-deadline instead, see api/serialize.h).
using ServiceClock = std::chrono::steady_clock;

/// Absolute deadline `seconds` from now.
inline ServiceClock::time_point deadline_in(double seconds) {
  return ServiceClock::now() +
         std::chrono::duration_cast<ServiceClock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Fields shared by every request the service accepts.
struct RequestBase {
  /// Options passed to every solver the request runs (the service installs
  /// its own cancellation token chained onto options.cancel).
  SolveOptions options;

  /// Solver selection: empty → the default portfolio mix; exactly one
  /// registry name → that solver; several names → a portfolio race over
  /// them (best feasible result wins, stragglers are certificate-cancelled).
  std::vector<std::string> solvers;

  /// Queue priority: larger values dispatch first when the service is
  /// saturated; ties break by deadline (earlier first), then submit order.
  /// Session deltas ignore it — per-session FIFO order is their contract.
  int priority = 0;

  /// Absolute deadline. When it expires the service cooperatively cancels
  /// the run and the handle resolves with SolveStatus::Cancelled carrying
  /// the best incumbent found so far. Unset = no deadline.
  std::optional<ServiceClock::time_point> deadline;

  /// Streaming observer for this request: Queued/Started/Finished from the
  /// service, Phase and Incumbent events from the solvers. Invoked on
  /// worker threads; must be thread-safe and must outlive the request's
  /// completion (waiting on the handle is enough).
  ProgressFn on_progress;
};

/// One asynchronous solve of a full instance.
struct SolveRequest : RequestBase {
  /// The instance to schedule. Shared (not copied) so a batch of requests
  /// over one workload — or a portfolio fan-out — doesn't duplicate it.
  std::shared_ptr<const model::Instance> instance;
};

/// One incremental update against an open schedule session. The service
/// serializes deltas per session (FIFO), repairs the committed schedule
/// (online::ScheduleSession) and resolves the handle with a result whose
/// moved_jobs / migration_ratio fields are filled. options/solvers are
/// ignored — a session fixes them at open time so its memo and regret
/// accounting stay coherent.
struct DeltaRequest : RequestBase {
  /// Session id from SchedulingService::open_session. Unknown or closed
  /// ids resolve the handle with SolveStatus::Error ("unknown session").
  std::uint64_t session = 0;
  model::Delta delta;
  /// Resend-safe commits: the session revision the client believes it is
  /// at. Unset → apply unconditionally (the pre-v3 behavior). Set and the
  /// session is one revision AHEAD with an identical last delta → the
  /// cached result of that commit is returned instead of re-applying (the
  /// delta was committed but its ack was lost — the crash/reconnect
  /// window). Any other mismatch resolves with SolveStatus::Error
  /// ("revision mismatch"), never a silent double-apply.
  std::optional<std::uint64_t> expect_revision;
};

/// Convenience builder: owns a copy of the instance.
inline SolveRequest make_request(model::Instance instance,
                                 SolveOptions options = {},
                                 std::vector<std::string> solvers = {}) {
  SolveRequest request;
  request.instance =
      std::make_shared<const model::Instance>(std::move(instance));
  request.options = std::move(options);
  request.solvers = std::move(solvers);
  return request;
}

/// Convenience builder sharing an already-owned instance.
inline SolveRequest make_request(
    std::shared_ptr<const model::Instance> instance,
    SolveOptions options = {}, std::vector<std::string> solvers = {}) {
  SolveRequest request;
  request.instance = std::move(instance);
  request.options = std::move(options);
  request.solvers = std::move(solvers);
  return request;
}

/// Convenience builder for a session delta.
inline DeltaRequest make_delta_request(std::uint64_t session,
                                       model::Delta delta) {
  DeltaRequest request;
  request.session = session;
  request.delta = std::move(delta);
  return request;
}

}  // namespace bagsched::api
