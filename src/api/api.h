// Umbrella header for the bagsched::api layer — the one include that
// examples, benchmarks and external callers need.
//
//   #include "api/api.h"
//
//   const auto instance = bagsched::api::make_instance("uniform", 200, 16,
//                                                      {.seed = 7});
//   const auto& eptas = bagsched::api::SolverRegistry::global()
//                           .resolve("eptas");
//   const auto result = eptas.solve(instance, {.eps = 0.25});
//
//   bagsched::api::Portfolio portfolio;          // default solver mix
//   const auto run = portfolio.solve(instance);  // best of the portfolio
//
//   bagsched::api::SchedulingService service;    // async: submit + wait
//   auto handle = service.submit(
//       bagsched::api::make_request(instance, {.eps = 0.25}, {"eptas"}));
//   const auto& async_result = handle.wait();
#pragma once

#include <string>

#include "api/portfolio.h"
#include "api/progress.h"
#include "api/registry.h"
#include "api/request.h"
#include "api/serialize.h"
#include "api/service.h"
#include "api/solver.h"
#include "api/telemetry.h"
#include "cache/canonicalize.h"
#include "cache/solve_cache.h"
#include "gen/generators.h"
#include "model/instance.h"
#include "model/lower_bounds.h"
#include "model/schedule.h"

namespace bagsched::api {

/// Seeded workload generation through the unified options: the
/// SolveOptions::seed that drives the solvers also drives the generator,
/// so a (family, n, m, options) tuple reproduces bit-identically.
inline model::Instance make_instance(const std::string& family, int num_jobs,
                                     int num_machines,
                                     const SolveOptions& options = {}) {
  return gen::by_name(family, num_jobs, num_machines, options.seed);
}

/// Generator family names accepted by make_instance.
inline std::vector<std::string> instance_families() {
  return gen::family_names();
}

/// Convenience: resolve-and-solve in one call.
inline SolveResult solve(const std::string& solver,
                         const model::Instance& instance,
                         const SolveOptions& options = {}) {
  return SolverRegistry::global().resolve(solver).solve(instance, options);
}

}  // namespace bagsched::api
