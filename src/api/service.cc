#include "api/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/portfolio.h"
#include "api/registry.h"
#include "api/serialize.h"
#include "util/stopwatch.h"

namespace bagsched::api {

namespace detail {

struct RequestState {
  explicit RequestState(SolveRequest req)
      : request(std::move(req)), cancel(request.options.cancel) {}

  std::uint64_t id = 0;
  SolveRequest request;
  /// Per-request token chained onto the caller's options.cancel; fired by
  /// the deadline watchdog, SolveHandle::cancel() and service shutdown.
  util::CancellationToken cancel;
  /// The service itself requested the stop (deadline / handle / shutdown),
  /// so the final status must read Cancelled.
  std::atomic<bool> service_cancel{false};
  std::atomic<bool> deadline_fired{false};
  util::Stopwatch since_submit;
  double queue_seconds = 0.0;  ///< written by the dispatcher, pre-Started

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  SolveResult result;

  /// Observer fan-out with the request id and submit-relative elapsed time
  /// filled in. Lifecycle events (Queued/Started/Finished) go only to
  /// request.on_progress — options.progress is the solver-level stream, and
  /// forwarding lifecycle there would leak nested portfolio-member
  /// lifecycles as extra "terminal" Finished events on the outer request.
  void emit(ProgressEvent event, bool solver_level = false) {
    if (!request.on_progress && !request.options.progress) return;
    event.request_id = id;
    event.elapsed_seconds = since_submit.seconds();
    try {
      if (request.on_progress) request.on_progress(event);
      if (solver_level && request.options.progress) {
        request.options.progress(event);
      }
    } catch (...) {
      // Observability must never break scheduling: a throwing callback is
      // dropped so the solve still resolves and the handle never hangs.
    }
  }
};

}  // namespace detail

using detail::RequestState;

// --- SolveHandle -----------------------------------------------------------

std::uint64_t SolveHandle::id() const {
  return state_ != nullptr ? state_->id : 0;
}

const SolveResult& SolveHandle::wait() {
  if (state_ == nullptr) {
    throw std::logic_error("SolveHandle: wait() on an invalid handle");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

std::optional<SolveResult> SolveHandle::try_get() const {
  if (state_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->done) return std::nullopt;
  return state_->result;
}

bool SolveHandle::wait_for(double seconds) const {
  if (state_ == nullptr) {
    throw std::logic_error("SolveHandle: wait_for() on an invalid handle");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock, std::chrono::duration<double>(seconds),
                             [this] { return state_->done; });
}

bool SolveHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void SolveHandle::cancel() {
  if (state_ == nullptr) return;
  state_->service_cancel.store(true, std::memory_order_relaxed);
  state_->cancel.request_stop();
}

// --- SchedulingService -----------------------------------------------------

namespace {

/// Queue order: priority desc, then deadline asc (none = last), then
/// submission order. Used to pick the next request, not to keep the vector
/// sorted — queue depths are service-level, not algorithmic.
bool dispatches_before(const RequestState& a, const RequestState& b) {
  if (a.request.priority != b.request.priority) {
    return a.request.priority > b.request.priority;
  }
  const bool a_has = a.request.deadline.has_value();
  const bool b_has = b.request.deadline.has_value();
  if (a_has != b_has) return a_has;
  if (a_has && *a.request.deadline != *b.request.deadline) {
    return *a.request.deadline < *b.request.deadline;
  }
  return a.id < b.id;
}

}  // namespace

SchedulingService::SchedulingService(Config config)
    : config_(config), pool_(config.num_threads) {
  max_concurrent_ =
      config_.max_concurrent != 0 ? config_.max_concurrent : pool_.size();
  // The deadline watchdog starts lazily on the first deadline-bearing
  // submit — deadline-free services (e.g. the per-call service inside
  // Portfolio::solve) never pay for the extra thread.
}

SchedulingService::~SchedulingService() {
  std::vector<std::shared_ptr<RequestState>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    pending = std::move(queue_);
    queue_.clear();
    for (const auto& state : running_) {
      state->service_cancel.store(true, std::memory_order_relaxed);
      state->cancel.request_stop();
    }
  }
  watchdog_cv_.notify_all();
  // Resolve never-dispatched requests so their handles don't block forever.
  for (const auto& state : pending) {
    SolveResult result;
    result.status = SolveStatus::Cancelled;
    result.cancelled = true;
    result.error = "cancelled: service shut down before the request ran";
    resolve(state, std::move(result), /*emit_finished=*/true);
    std::lock_guard<std::mutex> lock(mutex_);
    ++finished_;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return running_.empty(); });
  }
  if (watchdog_.joinable()) watchdog_.join();
  // pool_ destructor joins the workers (its queue is already drained).
}

SolveHandle SchedulingService::submit(SolveRequest request) {
  std::vector<SolveRequest> one;
  one.push_back(std::move(request));
  return submit_batch(std::move(one)).front();
}

std::vector<SolveHandle> SchedulingService::submit_batch(
    std::vector<SolveRequest> requests) {
  std::vector<SolveHandle> handles;
  handles.reserve(requests.size());
  std::vector<std::shared_ptr<RequestState>> states;
  states.reserve(requests.size());
  for (auto& request : requests) {
    if (request.instance == nullptr) {
      throw std::invalid_argument("SolveRequest.instance is null");
    }
    for (const auto& name : request.solvers) {
      SolverRegistry::global().resolve(name);  // throws, listing names
    }
    auto state = std::make_shared<RequestState>(std::move(request));
    state->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    handles.push_back(SolveHandle(state));
    states.push_back(std::move(state));
  }
  std::vector<std::shared_ptr<RequestState>> bounced;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("SchedulingService: submit after shutdown");
    }
    // Backpressure counts the slots the deferred dispatch below will free:
    // after it runs, the pending queue is back under max_queue_depth, and
    // a batch admits exactly what the same requests submitted one-by-one
    // would have admitted.
    const std::size_t free_slots =
        max_concurrent_ > running_.size() ? max_concurrent_ - running_.size()
                                          : 0;
    for (auto& state : states) {
      if (config_.max_queue_depth != 0 &&
          queue_.size() >= config_.max_queue_depth + free_slots) {
        ++rejected_;
        bounced.push_back(std::move(state));
        continue;
      }
      ++submitted_;
      if (state->request.deadline.has_value() && !watchdog_.joinable()) {
        watchdog_ = std::thread([this] { watchdog_loop(); });
      }
      // Queued is emitted under the lock, strictly for accepted requests:
      // the dispatch below happens after, so Started can never precede it.
      state->emit({.kind = ProgressKind::Queued});
      queue_.push_back(std::move(state));
    }
    // One dispatch pass after the whole batch is queued, so the batch is
    // prioritised as a unit instead of first-come-first-dispatched.
    dispatch_locked();
  }
  for (const auto& state : bounced) {
    SolveResult result;
    result.status = SolveStatus::Cancelled;
    result.cancelled = true;
    result.error =
        "rejected: service queue is full (max_queue_depth=" +
        std::to_string(config_.max_queue_depth) + ")";
    resolve(state, std::move(result), /*emit_finished=*/true);
  }
  watchdog_cv_.notify_one();
  return handles;
}

void SchedulingService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && running_.empty(); });
}

SchedulingService::Stats SchedulingService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.queued = queue_.size();
  stats.running = running_.size();
  stats.finished = finished_;
  return stats;
}

void SchedulingService::dispatch_locked() {
  while (running_.size() < max_concurrent_ && !queue_.empty()) {
    auto next = std::min_element(
        queue_.begin(), queue_.end(),
        [](const auto& a, const auto& b) {
          return dispatches_before(*a, *b);
        });
    std::shared_ptr<RequestState> state = std::move(*next);
    queue_.erase(next);
    state->queue_seconds = state->since_submit.seconds();
    running_.push_back(state);
    pool_.submit([this, state = std::move(state)]() mutable {
      run_request(std::move(state));
    });
  }
}

SolveResult SchedulingService::execute(RequestState& state) {
  const SolveRequest& request = state.request;
  SolveOptions options = request.options;
  options.cancel = &state.cancel;
  // Deadline cooperation beyond the token: solvers that only honour wall
  // budgets (exact / MILP time limits) get their budget clamped to the
  // time remaining, so they stop near the deadline even between polls.
  if (request.deadline.has_value()) {
    const double remaining =
        std::chrono::duration<double>(*request.deadline -
                                      ServiceClock::now())
            .count();
    options.time_limit_seconds =
        std::min(options.time_limit_seconds, std::max(remaining, 0.0));
  }
  // Progress events from the solver layer (Phase / Incumbent — and, for a
  // portfolio, the members' solver streams) fan out to both observers.
  options.progress = [&state](const ProgressEvent& event) {
    state.emit(event, /*solver_level=*/true);
  };

  if (request.solvers.size() == 1) {
    return SolverRegistry::global()
        .resolve(request.solvers.front())
        .solve(*request.instance, options);
  }

  // Portfolio race (empty selection = the default mix). The portfolio is
  // itself a client of a nested service, so this stays one code path.
  Portfolio portfolio = request.solvers.empty()
                            ? Portfolio()
                            : Portfolio(request.solvers);
  PortfolioResult race = portfolio.solve(*request.instance, options);
  SolveResult result = std::move(race.best);
  result.stats["portfolio_members"] =
      static_cast<long long>(portfolio.solvers().size());
  result.stats["portfolio_cancelled"] =
      static_cast<long long>(race.cancelled_count);
  // Per-member summaries (schedules dropped) ride along machine-readably,
  // so service clients can still render the whole race.
  util::Json runs = util::Json::array();
  for (const auto& run : race.runs) {
    runs.push_back(to_json(run, /*include_schedule=*/false));
  }
  result.stats["portfolio_runs_json"] = runs.dump();
  return result;
}

void SchedulingService::run_request(std::shared_ptr<RequestState> state) {
  state->emit({.kind = ProgressKind::Started});
  SolveResult result;
  try {
    result = execute(*state);
  } catch (const std::exception& error) {
    // A throwing solver (bad eps, internal failure) must still resolve the
    // handle — an unhandled exception would die in the pool wrapper and
    // leave wait() blocked forever.
    result = SolveResult{};
    if (state->request.solvers.size() == 1) {
      result.solver = state->request.solvers.front();
    }
    result.status = SolveStatus::Error;
    result.error = error.what();
  } catch (...) {
    result = SolveResult{};
    result.status = SolveStatus::Error;
    result.error = "solver threw a non-standard exception";
  }

  // Deadline attribution is decided here, from the clock, not from the
  // watchdog: the time-limit clamp in execute() can stop the solver right
  // at the deadline before the watchdog's wakeup lands, and the outcome
  // must not depend on that race.
  if (state->request.deadline.has_value() &&
      ServiceClock::now() >= *state->request.deadline) {
    state->deadline_fired.store(true, std::memory_order_relaxed);
    state->service_cancel.store(true, std::memory_order_relaxed);
  }
  if (state->service_cancel.load(std::memory_order_relaxed)) {
    // Deadline / handle / shutdown cancellation determines the status —
    // except a completed optimality proof, which beats the deadline. The
    // incumbent fields (schedule, makespan, schedule_feasible) are kept as
    // the solver filled them: Cancelled-with-incumbent is a usable result.
    if (result.status == SolveStatus::Feasible) {
      result.status = SolveStatus::Cancelled;
    }
    if (result.status == SolveStatus::Cancelled) result.cancelled = true;
  }
  result.stats["request_id"] = static_cast<long long>(state->id);
  result.stats["queue_seconds"] = state->queue_seconds;
  if (state->deadline_fired.load(std::memory_order_relaxed)) {
    result.stats["deadline_expired"] = true;
  }

  resolve(state, std::move(result), /*emit_finished=*/true);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_.erase(std::find(running_.begin(), running_.end(), state));
    ++finished_;
    if (!stopping_) dispatch_locked();
  }
  idle_cv_.notify_all();
  watchdog_cv_.notify_one();
}

void SchedulingService::resolve(
    const std::shared_ptr<RequestState>& state, SolveResult result,
    bool emit_finished) {
  // Store first, then emit Finished pointing at the stored result, then
  // open the done gate: every progress event for a request is delivered
  // before any wait() on its handle returns.
  state->result = std::move(result);
  if (emit_finished) {
    ProgressEvent event;
    event.kind = ProgressKind::Finished;
    event.solver = state->result.solver;
    event.result = &state->result;
    state->emit(std::move(event));
  }
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->done = true;
  }
  state->cv.notify_all();
}

void SchedulingService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    std::optional<ServiceClock::time_point> earliest;
    const auto consider = [&](const std::shared_ptr<RequestState>& state) {
      if (!state->request.deadline.has_value()) return;
      if (state->deadline_fired.load(std::memory_order_relaxed)) return;
      if (!earliest.has_value() || *state->request.deadline < *earliest) {
        earliest = *state->request.deadline;
      }
    };
    for (const auto& state : queue_) consider(state);
    for (const auto& state : running_) consider(state);

    if (!earliest.has_value()) {
      watchdog_cv_.wait(lock);
      continue;
    }
    if (watchdog_cv_.wait_until(lock, *earliest) ==
        std::cv_status::timeout) {
      const auto now = ServiceClock::now();
      const auto fire = [&](const std::shared_ptr<RequestState>& state) {
        if (!state->request.deadline.has_value()) return false;
        if (*state->request.deadline > now) return false;
        if (state->deadline_fired.exchange(true,
                                           std::memory_order_relaxed)) {
          return false;
        }
        state->service_cancel.store(true, std::memory_order_relaxed);
        state->cancel.request_stop();
        return true;
      };
      for (const auto& state : running_) fire(state);
      // Queued requests whose deadline passed resolve right here — the
      // deadline is a latency bound, so the handle must not keep waiting
      // behind a busy slot (nor burn one later just to report Cancelled).
      std::vector<std::shared_ptr<RequestState>> expired;
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (fire(*it)) {
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      // Resolved while the lock is held (like Queued emission), so there
      // is no window where wait_idle()/stats() see the queue drained while
      // an expired handle is still unresolved.
      for (const auto& state : expired) {
        SolveResult result;
        result.status = SolveStatus::Cancelled;
        result.cancelled = true;
        result.error =
            "cancelled: deadline expired before the request was dispatched";
        result.stats["deadline_expired"] = true;
        result.stats["request_id"] = static_cast<long long>(state->id);
        resolve(state, std::move(result), /*emit_finished=*/true);
      }
      finished_ += expired.size();
      if (!expired.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace bagsched::api
