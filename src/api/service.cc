#include "api/service.h"

#include <algorithm>
#include <deque>
#include <random>
#include <stdexcept>
#include <utility>

#include "api/options_digest.h"
#include "api/portfolio.h"
#include "api/registry.h"
#include "api/serialize.h"
#include "model/lower_bounds.h"
#include "persist/journal.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/stopwatch.h"

namespace bagsched::api {

namespace detail {

struct RequestState {
  explicit RequestState(SolveRequest req)
      : request(std::move(req)), cancel(request.options.cancel) {}

  std::uint64_t id = 0;
  SolveRequest request;

  // --- Session routing (set only for session ops) ------------------------
  std::uint64_t session_id = 0;
  bool session_op = false;    ///< runs on a session FIFO, not the queue
  bool session_open = false;  ///< this op is the session's initial solve
  model::Delta delta;         ///< the delta, when !session_open
  /// DeltaRequest::expect_revision, carried to the session op.
  std::optional<std::uint64_t> expect_revision;

  // --- Solve-cache participation (immutable after prepare_cache) ---------
  bool cache_enabled = false;   ///< cache_mode != Off and instance is valid
  bool rounded_enabled = false; ///< also keyed on the eps-rounded form
  cache::CanonicalForm form;          ///< exact canonical form
  cache::CanonicalForm rounded_form;  ///< only when rounded_enabled
  cache::CacheKey key;                ///< exact-fingerprint cache key
  cache::CacheKey rounded_key;        ///< only when rounded_enabled
  /// Submit-time cache hit, resolved without queueing (set in pass 1 of
  /// submit_batch, consumed under the service lock).
  std::optional<SolveResult> submit_hit;
  /// Single-flight followers attached to this leader; guarded by the
  /// service mutex. Followers are never queued or run — they resolve from
  /// the leader's result (or re-enter the queue if the leader's outcome is
  /// not shareable).
  std::vector<std::shared_ptr<RequestState>> followers;
  /// Per-request token chained onto the caller's options.cancel; fired by
  /// the deadline watchdog, SolveHandle::cancel() and service shutdown.
  util::CancellationToken cancel;
  /// The service itself requested the stop (deadline / handle / shutdown),
  /// so the final status must read Cancelled.
  std::atomic<bool> service_cancel{false};
  std::atomic<bool> deadline_fired{false};
  /// The deadline clamp reduced the solver's time budget below what the
  /// options asked for (see execute()). A Feasible-but-unproven result
  /// produced under a tighter budget must not be cached or shared under
  /// the full-budget options key — it could be arbitrarily weaker than
  /// what an unconstrained run would return.
  std::atomic<bool> budget_clamped{false};
  util::Stopwatch since_submit;
  double queue_seconds = 0.0;  ///< written by the dispatcher, pre-Started

  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  SolveResult result;

  /// Observer fan-out with the request id and submit-relative elapsed time
  /// filled in. Lifecycle events (Queued/Started/Finished) go only to
  /// request.on_progress — options.progress is the solver-level stream, and
  /// forwarding lifecycle there would leak nested portfolio-member
  /// lifecycles as extra "terminal" Finished events on the outer request.
  void emit(ProgressEvent event, bool solver_level = false) {
    if (!request.on_progress && !request.options.progress) return;
    event.request_id = id;
    event.elapsed_seconds = since_submit.seconds();
    try {
      if (request.on_progress) request.on_progress(event);
      if (solver_level && request.options.progress) {
        request.options.progress(event);
      }
    } catch (...) {
      // Observability must never break scheduling: a throwing callback is
      // dropped so the solve still resolves and the handle never hangs.
    }
  }
};

/// One open schedule session: the repair engine plus a FIFO of its pending
/// operations. All fields except `session` are guarded by the service
/// mutex; `session` (the ScheduleSession itself) is only ever touched by
/// the single in-flight op of this session, which `busy` serializes.
struct SessionState {
  std::uint64_t id = 0;
  online::SessionOptions tuning;
  std::shared_ptr<const model::Instance> initial_instance;
  std::unique_ptr<online::ScheduleSession> session;
  bool busy = false;    ///< an op of this session is on the pool
  bool closed = false;  ///< no new ops accepted; drains then retires
  bool failed = false;  ///< the initial solve failed; deltas error out
  std::deque<std::shared_ptr<RequestState>> pending;
  // --- Resume/durability shadow (guarded by the service mutex; written
  // by the session's single in-flight op BEFORE it resolves, so whatever
  // a client was acked is already visible to session_info) --------------
  std::uint64_t epoch = 0;
  std::uint64_t revision = 0;
  std::string last_delta_json;     ///< serialized delta of the last commit
  SolveResult last_commit_result;  ///< returned again on a duplicate resend
  std::string digest;              ///< schedule_digest of the last commit
};

}  // namespace detail

using detail::RequestState;
using detail::SessionState;

// --- SolveHandle -----------------------------------------------------------

std::uint64_t SolveHandle::id() const {
  return state_ != nullptr ? state_->id : 0;
}

const SolveResult& SolveHandle::wait() {
  if (state_ == nullptr) {
    throw std::logic_error("SolveHandle: wait() on an invalid handle");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

std::optional<SolveResult> SolveHandle::try_get() const {
  if (state_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->done) return std::nullopt;
  return state_->result;
}

bool SolveHandle::wait_for(double seconds) const {
  if (state_ == nullptr) {
    throw std::logic_error("SolveHandle: wait_for() on an invalid handle");
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock, std::chrono::duration<double>(seconds),
                             [this] { return state_->done; });
}

bool SolveHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void SolveHandle::cancel() {
  if (state_ == nullptr) return;
  state_->service_cancel.store(true, std::memory_order_relaxed);
  state_->cancel.request_stop();
}

// --- SchedulingService -----------------------------------------------------

namespace {

/// Queue order: priority desc, then deadline asc (none = last), then
/// submission order. Used to pick the next request, not to keep the vector
/// sorted — queue depths are service-level, not algorithmic.
bool dispatches_before(const RequestState& a, const RequestState& b) {
  if (a.request.priority != b.request.priority) {
    return a.request.priority > b.request.priority;
  }
  const bool a_has = a.request.deadline.has_value();
  const bool b_has = b.request.deadline.has_value();
  if (a_has != b_has) return a_has;
  if (a_has && *a.request.deadline != *b.request.deadline) {
    return *a.request.deadline < *b.request.deadline;
  }
  return a.id < b.id;
}

/// Cache-key component for the solver selection: the registry name, a
/// joined portfolio list, or a marker for the default portfolio mix.
std::string solver_signature(const std::vector<std::string>& solvers) {
  if (solvers.empty()) return "portfolio:default";
  std::string signature = solvers.front();
  for (std::size_t i = 1; i < solvers.size(); ++i) {
    signature += '+';
    signature += solvers[i];
  }
  return signature;
}

/// Whether every requested solver tolerates eps-rounded key collisions: a
/// rounded hit hands back a schedule whose makespan is only within a
/// (1+eps) factor of what a fresh solve would find, which is fine for the
/// approximation/heuristic solvers but would silently weaken an exact
/// solver's contract (and the bag-ignoring reference solvers never produce
/// cacheable schedules at all).
bool rounded_keys_allowed(const std::vector<std::string>& solvers) {
  if (solvers.empty()) return false;  // default portfolio includes "exact"
  for (const auto& name : solvers) {
    const Guarantee guarantee =
        SolverRegistry::global().info(name).guarantee;
    if (guarantee == Guarantee::Exact || guarantee == Guarantee::Reference) {
      return false;
    }
  }
  return true;
}

/// A result worth storing: a complete, bag-feasible schedule that wasn't
/// truncated by cancellation. Infeasible/Error outcomes are not cached —
/// they can encode request-specific circumstances (a malformed twin, a
/// transient failure) that must not leak onto other requests.
bool is_cacheable(const SolveResult& result) {
  return (result.status == SolveStatus::Optimal ||
          result.status == SolveStatus::Feasible) &&
         result.schedule_feasible && !result.cancelled;
}

}  // namespace

SchedulingService::SchedulingService(Config config)
    : config_(config), pool_(config.num_threads) {
  max_concurrent_ =
      config_.max_concurrent != 0 ? config_.max_concurrent : pool_.size();
  std::random_device entropy;
  boot_nonce_ = (static_cast<std::uint64_t>(entropy()) << 32) ^ entropy();
  // The deadline watchdog starts lazily on the first deadline-bearing
  // submit — deadline-free services (e.g. the per-call service inside
  // Portfolio::solve) never pay for the extra thread.
}

SchedulingService::~SchedulingService() {
  std::vector<std::shared_ptr<RequestState>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    pending = std::move(queue_);
    queue_.clear();
    // Single-flight followers are parked on their leaders, not in the
    // queue; drain them here so their handles resolve too. Running
    // leaders find their follower lists empty afterwards — fine, the
    // share-out is a no-op.
    for (const auto& [key, leader] : inflight_) {
      for (auto& follower : leader->followers) {
        pending.push_back(std::move(follower));
      }
      leader->followers.clear();
    }
    inflight_.clear();
    for (const auto& state : running_) {
      state->service_cancel.store(true, std::memory_order_relaxed);
      state->cancel.request_stop();
    }
    // Session FIFOs: queued ops resolve as cancelled below; in-flight ones
    // run to completion (repairs are short) and the idle wait covers them.
    for (const auto& [id, session] : sessions_) {
      session->closed = true;
      while (!session->pending.empty()) {
        pending.push_back(std::move(session->pending.front()));
        session->pending.pop_front();
      }
    }
  }
  watchdog_cv_.notify_all();
  // Resolve never-dispatched requests so their handles don't block forever.
  for (const auto& state : pending) {
    SolveResult result;
    result.status = SolveStatus::Cancelled;
    result.cancelled = true;
    result.error = "cancelled: service shut down before the request ran";
    resolve(state, std::move(result), /*emit_finished=*/true);
    std::lock_guard<std::mutex> lock(mutex_);
    ++finished_;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] {
      return running_.empty() && session_ops_active_ == 0;
    });
  }
  if (watchdog_.joinable()) watchdog_.join();
  // pool_ destructor joins the workers (its queue is already drained).
}

SolveHandle SchedulingService::submit(SolveRequest request) {
  std::vector<SolveRequest> one;
  one.push_back(std::move(request));
  return submit_batch(std::move(one)).front();
}

std::vector<SolveHandle> SchedulingService::submit_batch(
    std::vector<SolveRequest> requests) {
  std::vector<SolveHandle> handles;
  handles.reserve(requests.size());
  std::vector<std::shared_ptr<RequestState>> states;
  states.reserve(requests.size());
  for (auto& request : requests) {
    if (request.instance == nullptr) {
      throw std::invalid_argument("SolveRequest.instance is null");
    }
    for (const auto& name : request.solvers) {
      SolverRegistry::global().resolve(name);  // throws, listing names
    }
    auto state = std::make_shared<RequestState>(std::move(request));
    state->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Canonicalization and the first cache probe run outside the service
    // lock — they are O(n log n) per request and purely local.
    prepare_cache(*state);
    if (state->cache_enabled) state->submit_hit = cache_lookup(*state);
    handles.push_back(SolveHandle(state));
    states.push_back(std::move(state));
  }
  std::vector<std::shared_ptr<RequestState>> bounced;
  std::vector<std::shared_ptr<RequestState>> hits;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("SchedulingService: submit after shutdown");
    }
    // Backpressure counts the slots the deferred dispatch below will free:
    // after it runs, the pending queue is back under max_queue_depth, and
    // a batch admits exactly what the same requests submitted one-by-one
    // would have admitted.
    const std::size_t free_slots =
        max_concurrent_ > running_.size() ? max_concurrent_ - running_.size()
                                          : 0;
    for (auto& state : states) {
      // Cache hits take no queue slot, no backpressure, no solver run.
      // Counters settle under the lock; the handle resolves after it is
      // released (like rejected submits), so a Finished callback that
      // calls back into the service cannot deadlock on mutex_.
      if (state->submit_hit.has_value()) {
        ++submitted_;
        ++finished_;
        ++cache_hits_;
        if (stat_bool(state->submit_hit->stats, "cache_hit_rounded")) {
          ++cache_rounded_hits_;
        }
        state->emit({.kind = ProgressKind::Queued});
        hits.push_back(std::move(state));
        continue;
      }
      // Single-flight followers ride along on an in-flight leader: they
      // hold no queue slot either, so they are exempt from backpressure.
      if (state->cache_enabled) {
        const auto leader = inflight_.find(state->key);
        if (leader != inflight_.end()) {
          ++submitted_;
          if (state->request.deadline.has_value() &&
              !watchdog_.joinable()) {
            watchdog_ = std::thread([this] { watchdog_loop(); });
          }
          state->emit({.kind = ProgressKind::Queued});
          leader->second->followers.push_back(std::move(state));
          continue;
        }
      }
      if (config_.max_queue_depth != 0 &&
          queue_.size() >= config_.max_queue_depth + free_slots) {
        ++rejected_;
        bounced.push_back(std::move(state));
        continue;
      }
      ++submitted_;
      if (state->request.deadline.has_value() && !watchdog_.joinable()) {
        watchdog_ = std::thread([this] { watchdog_loop(); });
      }
      // Queued is emitted under the lock, strictly for accepted requests:
      // the dispatch below happens after, so Started can never precede it.
      state->emit({.kind = ProgressKind::Queued});
      if (state->cache_enabled) inflight_.emplace(state->key, state);
      queue_.push_back(std::move(state));
    }
    // One dispatch pass after the whole batch is queued, so the batch is
    // prioritised as a unit instead of first-come-first-dispatched.
    dispatch_locked();
  }
  for (const auto& state : hits) {
    SolveResult result = std::move(*state->submit_hit);
    state->submit_hit.reset();
    result.stats["request_id"] = static_cast<long long>(state->id);
    result.stats["queue_seconds"] = 0.0;
    resolve(state, std::move(result), /*emit_finished=*/true);
  }
  for (const auto& state : bounced) {
    SolveResult result;
    result.status = SolveStatus::Cancelled;
    result.cancelled = true;
    result.error =
        "rejected: service queue is full (max_queue_depth=" +
        std::to_string(config_.max_queue_depth) + ")";
    resolve(state, std::move(result), /*emit_finished=*/true);
  }
  watchdog_cv_.notify_one();
  return handles;
}

// --- Sessions ---------------------------------------------------------------

SchedulingService::SessionOpening SchedulingService::open_session(
    SolveRequest request, online::SessionOptions tuning) {
  if (request.instance == nullptr) {
    throw std::invalid_argument("SolveRequest.instance is null");
  }
  for (const auto& name : request.solvers) {
    SolverRegistry::global().resolve(name);  // throws, listing names
  }
  // The request's options/solvers become the session's solve configuration
  // (the tuning struct only contributes the repair knobs) — one source of
  // truth for the session's memo and regret accounting.
  tuning.solve = request.options;
  tuning.solvers = request.solvers;
  // The session runs its own solves; the caller's progress callback is the
  // request's, not the option-level one (which portfolio members would
  // multiply), and cancellation is not plumbed through repairs.
  tuning.solve.progress = nullptr;

  auto session = std::make_shared<SessionState>();
  session->tuning = std::move(tuning);
  session->initial_instance = request.instance;
  auto state = std::make_shared<RequestState>(std::move(request));
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  state->session_op = true;
  state->session_open = true;

  SessionOpening opening;
  opening.initial = SolveHandle(state);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("SchedulingService: open_session after shutdown");
    }
    session->id = ++next_session_id_;
    session->epoch = util::mix64(session->id ^ boot_nonce_);
    state->session_id = session->id;
    sessions_.emplace(session->id, session);
    ++sessions_opened_;
    session->busy = true;
    ++session_ops_active_;
  }
  opening.session = session->id;
  opening.epoch = session->epoch;
  state->emit({.kind = ProgressKind::Queued});
  pool_.submit([this, session, state] { run_session_op(session, state); });
  return opening;
}

SolveHandle SchedulingService::submit(DeltaRequest request) {
  // Carry the shared base fields (deadline, progress, ...) in a SolveRequest
  // shell with no instance — session ops never dereference it.
  SolveRequest carrier;
  static_cast<RequestBase&>(carrier) =
      std::move(static_cast<RequestBase&>(request));
  auto state = std::make_shared<RequestState>(std::move(carrier));
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  state->session_op = true;
  state->session_id = request.session;
  state->delta = std::move(request.delta);
  state->expect_revision = request.expect_revision;

  std::shared_ptr<SessionState> session;
  bool start = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("SchedulingService: submit after shutdown");
    }
    const auto it = sessions_.find(request.session);
    if (it != sessions_.end() && !it->second->closed) {
      session = it->second;
      state->emit({.kind = ProgressKind::Queued});
      if (session->busy) {
        session->pending.push_back(state);
      } else {
        session->busy = true;
        ++session_ops_active_;
        start = true;
      }
    }
  }
  if (session == nullptr) {
    SolveResult result;
    result.solver = "online-session";
    result.status = SolveStatus::Error;
    result.error = "unknown session " + std::to_string(request.session);
    resolve(state, std::move(result), /*emit_finished=*/true);
    return SolveHandle(state);
  }
  if (start) {
    pool_.submit([this, session, state] { run_session_op(session, state); });
  }
  return SolveHandle(state);
}

bool SchedulingService::close_session(std::uint64_t session) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end() || it->second->closed) return false;
    it->second->closed = true;
    ++sessions_closed_;
    // Queued deltas still resolve; the last one retires the entry (see
    // pump_session_locked). An idle session retires immediately.
    if (!it->second->busy && it->second->pending.empty()) sessions_.erase(it);
  }
  if (config_.journal != nullptr) {
    try {
      config_.journal->record_close(session);
    } catch (const std::exception&) {
      // Worst case the next boot recovers an already-closed session; that
      // wastes memory but corrupts nothing, so a close is never failed
      // over its journal record.
    }
  }
  return true;
}

std::optional<SchedulingService::SessionInfo> SchedulingService::session_info(
    std::uint64_t session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second->closed || it->second->failed) {
    return std::nullopt;
  }
  SessionInfo info;
  info.session = session;
  info.epoch = it->second->epoch;
  info.revision = it->second->revision;
  info.digest = it->second->digest;
  return info;
}

std::size_t SchedulingService::restore_sessions(
    const persist::RecoveredState& recovered) {
  std::size_t restored = 0;
  for (const persist::RecoveredSession& entry : recovered.sessions) {
    auto session = std::make_shared<SessionState>();
    session->id = entry.session;
    session->epoch = entry.epoch;
    session->tuning = entry.tuning;
    session->initial_instance =
        std::make_shared<const model::Instance>(entry.instance);
    try {
      session->session = std::make_unique<online::ScheduleSession>(
          entry.instance, entry.schedule, session->tuning);
    } catch (const std::exception&) {
      continue;  // journaled as feasible; skip rather than refuse to boot
    }
    session->session->restore_revision(entry.revision);
    session->revision = entry.revision;
    session->last_delta_json = entry.last_delta_json;
    session->digest = entry.digest;
    SolveResult result = session->session->last_result();
    result.stats["session"] = static_cast<long long>(session->id);
    result.stats["online.revision"] = static_cast<long long>(entry.revision);
    result.stats["online.recovered"] = true;
    session->last_commit_result = std::move(result);

    std::lock_guard<std::mutex> lock(mutex_);
    sessions_[session->id] = session;
    ++sessions_restored_;
    ++restored;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (next_session_id_ < recovered.max_session_id) {
    next_session_id_ = recovered.max_session_id;
  }
  return restored;
}

void SchedulingService::pump_session_locked(
    const std::shared_ptr<SessionState>& session) {
  if (session->busy) return;
  if (!session->pending.empty() && !stopping_) {
    auto next = std::move(session->pending.front());
    session->pending.pop_front();
    session->busy = true;
    ++session_ops_active_;
    pool_.submit(
        [this, session, next] { run_session_op(session, next); });
    return;
  }
  if (session->closed && session->pending.empty()) {
    sessions_.erase(session->id);
  }
}

void SchedulingService::run_session_op(
    std::shared_ptr<detail::SessionState> session,
    std::shared_ptr<detail::RequestState> state) {
  state->emit({.kind = ProgressKind::Started});
  SolveResult result;
  bool failed_open = false;
  bool duplicate = false;
  std::uint64_t revision_before = 0;
  if (state->session_open) {
    try {
      session->session = std::make_unique<online::ScheduleSession>(
          *session->initial_instance, session->tuning);
      result = session->session->last_result();
    } catch (const std::exception& error) {
      result.status = SolveStatus::Infeasible;
      result.solver = "online-session";
      result.error = error.what();
      failed_open = true;
    }
  } else if (session->failed || session->session == nullptr) {
    result.status = SolveStatus::Error;
    result.solver = "online-session";
    result.error = "unknown session " + std::to_string(session->id) +
                   ": its initial solve failed";
  } else {
    revision_before = session->session->revision();
    bool mismatch = false;
    if (state->expect_revision.has_value()) {
      // Resend-safe commits: a client that lost an ack resubmits with the
      // revision it last saw. One revision behind with an identical delta
      // means the commit landed and only the ack was lost — hand back the
      // cached result instead of double-applying. Anything else is a real
      // divergence and must fail loudly.
      const std::string delta_json = to_json(state->delta).dump();
      if (*state->expect_revision + 1 == revision_before &&
          delta_json == session->last_delta_json) {
        duplicate = true;
      } else if (*state->expect_revision != revision_before) {
        mismatch = true;
        result.status = SolveStatus::Error;
        result.solver = "online-session";
        result.error = "revision mismatch: session " +
                       std::to_string(session->id) + " is at revision " +
                       std::to_string(revision_before) +
                       ", request expected " +
                       std::to_string(*state->expect_revision);
      }
    }
    if (duplicate) {
      result = session->last_commit_result;
      result.stats["online.duplicate"] = true;
    } else if (!mismatch) {
      try {
        result = session->session->apply(state->delta);
      } catch (const std::exception& error) {
        // Malformed delta (unknown job ids, duplicate departures, ...): the
        // session keeps its previous commit and stays usable.
        result.status = SolveStatus::Error;
        result.solver = "online-session";
        result.error = std::string("invalid delta: ") + error.what();
      }
    }
  }

  // Durability: journal every commit BEFORE the handle resolves, so an
  // acked commit is on disk no matter when the process dies (DESIGN.md
  // §8, "acked ⇒ recovered"). A journal append failure poisons the
  // session — the client gets an error, not an ack the journal missed —
  // and the session closes rather than drift from its journal.
  const bool is_delta = !state->session_open;
  const bool committed =
      state->session_open
          ? !failed_open
          : (!duplicate && session->session != nullptr &&
             session->session->revision() != revision_before);
  bool poisoned = false;
  if (committed && config_.journal != nullptr) {
    try {
      if (state->session_open) {
        config_.journal->record_open(session->id, session->epoch,
                                     session->session->instance(),
                                     session->tuning,
                                     session->session->schedule());
      } else {
        config_.journal->record_commit(
            session->id, session->session->revision(), state->delta,
            session->session->schedule(),
            &session->session->instance());
      }
    } catch (const std::exception& error) {
      poisoned = true;
      result = SolveResult{};
      result.status = SolveStatus::Error;
      result.solver = "online-session";
      result.error =
          std::string("journal append failed, session closed: ") +
          error.what();
    }
  }

  result.stats["request_id"] = static_cast<long long>(state->id);
  result.stats["session"] = static_cast<long long>(session->id);

  if (committed && !poisoned) {
    // Publish the resume/dedupe shadow before the ack is visible: a client
    // that acts on this result must find session_info consistent with it.
    std::lock_guard<std::mutex> lock(mutex_);
    session->revision = session->session->revision();
    session->digest = persist::schedule_digest(session->session->schedule());
    if (is_delta) {
      session->last_delta_json = to_json(state->delta).dump();
    }
    session->last_commit_result = result;
  }

  const bool fresh_path =
      stat_str(result.stats, "online.path") == "fresh";
  resolve(state, std::move(result), /*emit_finished=*/true);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    session->busy = false;
    --session_ops_active_;
    if ((failed_open || poisoned) && !session->closed) {
      // A session that never committed a schedule — or whose journal no
      // longer matches its state — cannot serve deltas; close it so queued
      // ones drain with "unknown session".
      session->failed = true;
      session->closed = true;
      ++sessions_closed_;
    }
    if (is_delta) {
      ++session_deltas_;
      if (duplicate) {
        ++session_duplicates_;
      } else if (fresh_path) {
        ++session_fresh_;
      } else if (state->result.ok()) {
        ++session_repaired_;
      }
    }
    pump_session_locked(session);
  }
  idle_cv_.notify_all();
}

void SchedulingService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && running_.empty() && session_ops_active_ == 0;
  });
}

SchedulingService::Stats SchedulingService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.queue_depth = queue_.size();
  stats.active = running_.size();
  stats.finished = finished_;
  stats.cache_hits = cache_hits_;
  stats.cache_rounded_hits = cache_rounded_hits_;
  stats.dedup_shared = dedup_shared_;
  stats.queue_wait_ewma_seconds = queue_wait_ewma_;
  stats.sessions_opened = sessions_opened_;
  stats.sessions_closed = sessions_closed_;
  for (const auto& [id, session] : sessions_) {
    if (!session->closed) ++stats.open_sessions;
  }
  stats.session_deltas = session_deltas_;
  stats.session_repaired = session_repaired_;
  stats.session_fresh = session_fresh_;
  stats.sessions_restored = sessions_restored_;
  stats.session_duplicates = session_duplicates_;
  return stats;
}

void SchedulingService::prepare_cache(RequestState& state) {
  const SolveRequest& request = state.request;
  if (request.options.cache_mode == CacheMode::Off) return;
  // Malformed instances stay out of the cache and the single-flight
  // registry: their fingerprints could collide with valid twins, and their
  // error messages describe this request's instance specifically.
  try {
    request.instance->validate();
  } catch (const std::exception&) {
    return;
  }
  const std::string signature = solver_signature(request.solvers);
  const std::uint64_t digest = options_digest(request.options);
  state.form = cache::Canonicalizer::exact(*request.instance);
  state.key = cache::CacheKey{state.form.fingerprint, signature, digest,
                              /*rounded=*/false};
  state.cache_enabled = true;
  if (request.options.eps > 0.0 && rounded_keys_allowed(request.solvers)) {
    state.rounded_form = cache::Canonicalizer::rounded(*request.instance,
                                                       request.options.eps);
    state.rounded_key =
        cache::CacheKey{state.rounded_form.fingerprint, signature, digest,
                        /*rounded=*/true};
    state.rounded_enabled = true;
  }
}

std::optional<SolveResult> SchedulingService::cache_lookup(
    RequestState& state) {
  const model::Instance& instance = *state.request.instance;
  if (auto hit = cache_.lookup(state.key)) {
    // Exact-fingerprint twin: sizes agree position-by-position, so the
    // remapped schedule has the identical makespan and the cached status —
    // including a proven Optimal — transfers verbatim.
    SolveResult result = std::move(*hit);
    if (result.schedule.num_jobs() == instance.num_jobs() &&
        result.schedule.num_jobs() > 0) {
      result.schedule = cache::from_canonical(result.schedule, state.form);
    }
    result.stats["cache_hit"] = true;
    return result;
  }
  if (!state.rounded_enabled) return std::nullopt;
  if (auto hit = cache_.lookup(state.rounded_key)) {
    // Rounded-key twin: the bag structure matches position-by-position but
    // sizes only agree up to (1+eps), so the remapped schedule is
    // re-evaluated against THIS instance — the returned makespan/gap are
    // exact for the schedule we hand back; only optimality claims and the
    // solver's a-priori ratio are relaxed by the rounding.
    SolveResult result = std::move(*hit);
    if (result.schedule.num_jobs() != instance.num_jobs() ||
        result.schedule.num_jobs() == 0) {
      return std::nullopt;
    }
    result.schedule =
        cache::from_canonical(result.schedule, state.rounded_form);
    if (!model::validate(instance, result.schedule).ok()) {
      return std::nullopt;  // cannot happen for equal fingerprints
    }
    result.makespan = result.schedule.makespan(instance);
    result.lower_bound = model::combined_lower_bound(instance);
    result.schedule_feasible = true;
    result.proven_optimal = false;
    result.status = SolveStatus::Feasible;
    result.optimality_gap =
        result.lower_bound > 0.0
            ? result.makespan / result.lower_bound - 1.0
            : 0.0;
    result.stats["cache_hit"] = true;
    result.stats["cache_hit_rounded"] = true;
    return result;
  }
  return std::nullopt;
}

void SchedulingService::lead_or_follow_locked(
    std::shared_ptr<RequestState> state) {
  if (state->cache_enabled) {
    const auto leader = inflight_.find(state->key);
    if (leader != inflight_.end()) {
      leader->second->followers.push_back(std::move(state));
      return;
    }
    inflight_.emplace(state->key, state);
  }
  queue_.push_back(std::move(state));
}

void SchedulingService::dispatch_locked() {
  while (running_.size() < max_concurrent_ && !queue_.empty()) {
    auto next = std::min_element(
        queue_.begin(), queue_.end(),
        [](const auto& a, const auto& b) {
          return dispatches_before(*a, *b);
        });
    std::shared_ptr<RequestState> state = std::move(*next);
    queue_.erase(next);
    state->queue_seconds = state->since_submit.seconds();
    queue_wait_ewma_ = 0.8 * queue_wait_ewma_ + 0.2 * state->queue_seconds;
    running_.push_back(state);
    pool_.submit([this, state = std::move(state)]() mutable {
      run_request(std::move(state));
    });
  }
}

SolveResult SchedulingService::execute(RequestState& state) {
  // Injected solver failure: run_request's catch turns the throw into a
  // terminal SolveStatus::Error result, so the handle still resolves.
  if (BAGSCHED_FAULT("service.execute")) {
    throw std::runtime_error("injected fault: service.execute");
  }
  const SolveRequest& request = state.request;
  SolveOptions options = request.options;
  options.cancel = &state.cancel;
  // Deadline cooperation beyond the token: solvers that only honour wall
  // budgets (exact / MILP time limits) get their budget clamped to the
  // time remaining, so they stop near the deadline even between polls.
  if (request.deadline.has_value()) {
    const double remaining =
        std::chrono::duration<double>(*request.deadline -
                                      ServiceClock::now())
            .count();
    if (remaining < options.time_limit_seconds) {
      state.budget_clamped.store(true, std::memory_order_relaxed);
    }
    options.time_limit_seconds =
        std::min(options.time_limit_seconds, std::max(remaining, 0.0));
  }
  // Progress events from the solver layer (Phase / Incumbent — and, for a
  // portfolio, the members' solver streams) fan out to both observers.
  options.progress = [&state](const ProgressEvent& event) {
    state.emit(event, /*solver_level=*/true);
  };

  if (request.solvers.size() == 1) {
    return SolverRegistry::global()
        .resolve(request.solvers.front())
        .solve(*request.instance, options);
  }

  // Portfolio race (empty selection = the default mix). The portfolio is
  // itself a client of a nested service, so this stays one code path.
  Portfolio portfolio = request.solvers.empty()
                            ? Portfolio()
                            : Portfolio(request.solvers);
  PortfolioResult race = portfolio.solve(*request.instance, options);
  SolveResult result = std::move(race.best);
  result.stats["portfolio_members"] =
      static_cast<long long>(portfolio.solvers().size());
  result.stats["portfolio_cancelled"] =
      static_cast<long long>(race.cancelled_count);
  // Per-member summaries (schedules dropped) ride along machine-readably,
  // so service clients can still render the whole race.
  util::Json runs = util::Json::array();
  for (const auto& run : race.runs) {
    runs.push_back(to_json(run, /*include_schedule=*/false));
  }
  result.stats["portfolio_runs_json"] = runs.dump();
  return result;
}

void SchedulingService::run_request(std::shared_ptr<RequestState> state) {
  state->emit({.kind = ProgressKind::Started});
  SolveResult result;
  bool from_cache = false;
  // Second-chance probe: the first lookup ran at submit time, but anything
  // cached since then — by an earlier queue entry this request could not
  // single-flight onto (rounded-key twins dedup only through the cache) —
  // serves now without running a solver.
  if (state->cache_enabled &&
      !state->service_cancel.load(std::memory_order_relaxed)) {
    if (auto hit = cache_lookup(*state)) {
      result = std::move(*hit);
      from_cache = true;
    }
  }
  if (from_cache) {
    // nothing to run
  } else
  try {
    result = execute(*state);
  } catch (const std::exception& error) {
    // A throwing solver (bad eps, internal failure) must still resolve the
    // handle — an unhandled exception would die in the pool wrapper and
    // leave wait() blocked forever.
    result = SolveResult{};
    if (state->request.solvers.size() == 1) {
      result.solver = state->request.solvers.front();
    }
    result.status = SolveStatus::Error;
    result.error = error.what();
  } catch (...) {
    result = SolveResult{};
    result.status = SolveStatus::Error;
    result.error = "solver threw a non-standard exception";
  }

  // Deadline attribution is decided here, from the clock, not from the
  // watchdog: the time-limit clamp in execute() can stop the solver right
  // at the deadline before the watchdog's wakeup lands, and the outcome
  // must not depend on that race.
  if (state->request.deadline.has_value() &&
      ServiceClock::now() >= *state->request.deadline) {
    state->deadline_fired.store(true, std::memory_order_relaxed);
    state->service_cancel.store(true, std::memory_order_relaxed);
  }
  if (state->service_cancel.load(std::memory_order_relaxed)) {
    // Deadline / handle / shutdown cancellation determines the status —
    // except a completed optimality proof, which beats the deadline. The
    // incumbent fields (schedule, makespan, schedule_feasible) are kept as
    // the solver filled them: Cancelled-with-incumbent is a usable result.
    if (result.status == SolveStatus::Feasible) {
      result.status = SolveStatus::Cancelled;
    }
    if (result.status == SolveStatus::Cancelled) result.cancelled = true;
  }
  result.stats["request_id"] = static_cast<long long>(state->id);
  result.stats["queue_seconds"] = state->queue_seconds;
  if (state->deadline_fired.load(std::memory_order_relaxed)) {
    result.stats["deadline_expired"] = true;
  }

  // --- Single-flight settlement -------------------------------------------
  // Detach this leader from the in-flight registry and claim its
  // followers. A shareable outcome fans out to all of them below; a
  // cancelled/error outcome must not (the cancellation or failure may be
  // specific to this request), so those followers re-enter the queue and
  // the first of them leads the retry.
  std::vector<std::shared_ptr<RequestState>> shared;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (from_cache) {
      ++cache_hits_;
      if (stat_bool(result.stats, "cache_hit_rounded")) {
        ++cache_rounded_hits_;
      }
    }
    if (state->cache_enabled) {
      const auto it = inflight_.find(state->key);
      if (it != inflight_.end() && it->second == state) inflight_.erase(it);
      shared = std::move(state->followers);
      state->followers.clear();
      // A clamped-budget Feasible result only blocks sharing when it is
      // neither proven (Optimal is budget-independent) nor structural
      // (Infeasible does not depend on the budget at all).
      const bool shareable =
          !result.cancelled && result.status != SolveStatus::Error &&
          !(state->budget_clamped.load(std::memory_order_relaxed) &&
            result.status == SolveStatus::Feasible);
      if (!shared.empty() && !shareable && !stopping_) {
        for (auto& follower : shared) {
          lead_or_follow_locked(std::move(follower));
        }
        shared.clear();
        dispatch_locked();
      }
      // When stopping, unshareable followers stay in `shared` and resolve
      // below with the leader's (cancelled) result — the destructor has
      // already drained the ones it saw, this catches late attachments.
    }
  }

  // Store before sharing/resolving: any request submitted from a Finished
  // callback already finds the entry. The cached copy keeps its schedule
  // in canonical order and drops the per-request bookkeeping.
  // Store under the leader's ReadWrite — or a shared follower's: the
  // followers asked the identical question, so any of them opting into
  // writes is enough to persist the answer.
  bool store = state->request.options.cache_mode == CacheMode::ReadWrite;
  for (const auto& follower : shared) {
    store = store ||
            follower->request.options.cache_mode == CacheMode::ReadWrite;
  }
  if (!from_cache && state->cache_enabled && store && is_cacheable(result) &&
      !(state->budget_clamped.load(std::memory_order_relaxed) &&
        result.status == SolveStatus::Feasible)) {
    SolveResult canonical = result;
    canonical.stats.erase("request_id");
    canonical.stats.erase("queue_seconds");
    canonical.schedule = cache::to_canonical(result.schedule, state->form);
    cache_.insert(state->key, canonical);
    if (state->rounded_enabled) {
      canonical.schedule =
          cache::to_canonical(result.schedule, state->rounded_form);
      cache_.insert(state->rounded_key, std::move(canonical));
    }
    result.stats["cache_stored"] = true;
  }

  // Fan the result out to the followers (exact-key twins: the remapped
  // schedule, makespan and status transfer verbatim), honouring each
  // follower's own deadline/cancel state. The leader is still in running_,
  // so wait_idle() cannot fire while followers are unresolved.
  for (auto& follower : shared) {
    SolveResult out = result;
    out.stats.erase("cache_stored");
    if (out.schedule.num_jobs() > 0 &&
        out.schedule.num_jobs() == follower->request.instance->num_jobs()) {
      out.schedule = model::remap_jobs(result.schedule, state->form.job_at,
                                       follower->form.job_at);
    }
    out.stats["single_flight"] = true;
    out.stats["request_id"] = static_cast<long long>(follower->id);
    out.stats["queue_seconds"] = follower->since_submit.seconds();
    if (follower->request.deadline.has_value() &&
        ServiceClock::now() >= *follower->request.deadline) {
      follower->deadline_fired.store(true, std::memory_order_relaxed);
      follower->service_cancel.store(true, std::memory_order_relaxed);
    }
    if (follower->service_cancel.load(std::memory_order_relaxed)) {
      if (out.status == SolveStatus::Feasible) {
        out.status = SolveStatus::Cancelled;
      }
      if (out.status == SolveStatus::Cancelled) out.cancelled = true;
    }
    if (follower->deadline_fired.load(std::memory_order_relaxed)) {
      out.stats["deadline_expired"] = true;
    }
    resolve(follower, std::move(out), /*emit_finished=*/true);
  }

  resolve(state, std::move(result), /*emit_finished=*/true);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_.erase(std::find(running_.begin(), running_.end(), state));
    finished_ += 1 + shared.size();
    dedup_shared_ += shared.size();
    if (!stopping_) dispatch_locked();
  }
  idle_cv_.notify_all();
  watchdog_cv_.notify_one();
}

void SchedulingService::resolve(
    const std::shared_ptr<RequestState>& state, SolveResult result,
    bool emit_finished) {
  // Store first, then emit Finished pointing at the stored result, then
  // open the done gate: every progress event for a request is delivered
  // before any wait() on its handle returns.
  state->result = std::move(result);
  if (emit_finished) {
    ProgressEvent event;
    event.kind = ProgressKind::Finished;
    event.solver = state->result.solver;
    event.result = &state->result;
    state->emit(std::move(event));
  }
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->done = true;
  }
  state->cv.notify_all();
}

void SchedulingService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    std::optional<ServiceClock::time_point> earliest;
    const auto consider = [&](const std::shared_ptr<RequestState>& state) {
      if (!state->request.deadline.has_value()) return;
      if (state->deadline_fired.load(std::memory_order_relaxed)) return;
      if (!earliest.has_value() || *state->request.deadline < *earliest) {
        earliest = *state->request.deadline;
      }
    };
    for (const auto& state : queue_) consider(state);
    for (const auto& state : running_) consider(state);
    // Single-flight followers are parked on their leaders (which are in
    // the queue or running), not in either list — scan them too.
    for (const auto& [key, leader] : inflight_) {
      for (const auto& follower : leader->followers) consider(follower);
    }

    if (!earliest.has_value()) {
      watchdog_cv_.wait(lock);
      continue;
    }
    if (watchdog_cv_.wait_until(lock, *earliest) ==
        std::cv_status::timeout) {
      const auto now = ServiceClock::now();
      const auto fire = [&](const std::shared_ptr<RequestState>& state) {
        if (!state->request.deadline.has_value()) return false;
        if (*state->request.deadline > now) return false;
        if (state->deadline_fired.exchange(true,
                                           std::memory_order_relaxed)) {
          return false;
        }
        state->service_cancel.store(true, std::memory_order_relaxed);
        state->cancel.request_stop();
        return true;
      };
      for (const auto& state : running_) fire(state);
      // Queued requests whose deadline passed resolve right here — the
      // deadline is a latency bound, so the handle must not keep waiting
      // behind a busy slot (nor burn one later just to report Cancelled).
      std::vector<std::shared_ptr<RequestState>> expired;
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (fire(*it)) {
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      // An expired queue entry may have been a single-flight leader: drop
      // its registry entry and re-admit its followers (the first becomes
      // the new leader), or they would wait on a request that never runs.
      bool requeued_followers = false;
      for (const auto& state : expired) {
        if (!state->cache_enabled) continue;
        const auto it = inflight_.find(state->key);
        if (it == inflight_.end() || it->second != state) continue;
        inflight_.erase(it);
        auto followers = std::move(state->followers);
        state->followers.clear();
        for (auto& follower : followers) {
          lead_or_follow_locked(std::move(follower));
          requeued_followers = true;
        }
      }
      if (requeued_followers) dispatch_locked();
      // Expired followers resolve here too: the deadline is a latency
      // bound and must not depend on when their leader finishes. A
      // leader's own expiry does NOT expire its followers — they re-enter
      // the queue when the cancelled leader fails to share.
      for (const auto& [key, leader] : inflight_) {
        auto& followers = leader->followers;
        for (auto it = followers.begin(); it != followers.end();) {
          if (fire(*it)) {
            expired.push_back(std::move(*it));
            it = followers.erase(it);
          } else {
            ++it;
          }
        }
      }
      // Resolved while the lock is held (like Queued emission), so there
      // is no window where wait_idle()/stats() see the queue drained while
      // an expired handle is still unresolved.
      for (const auto& state : expired) {
        SolveResult result;
        result.status = SolveStatus::Cancelled;
        result.cancelled = true;
        result.error =
            "cancelled: deadline expired before the request was dispatched";
        result.stats["deadline_expired"] = true;
        result.stats["request_id"] = static_cast<long long>(state->id);
        resolve(state, std::move(result), /*emit_finished=*/true);
      }
      finished_ += expired.size();
      if (!expired.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace bagsched::api
