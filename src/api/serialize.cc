#include "api/serialize.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "model/io.h"

namespace bagsched::api {

namespace {

/// Telemetry values carry a one-character type tag so long long and double
/// survive the round trip distinctly ("i:3" vs a plain JSON 3.0).
util::Json telemetry_value_to_json(const TelemetryValue& value) {
  util::Json entry = util::Json::object();
  if (const auto* v = std::get_if<long long>(&value)) {
    entry.set("t", "i");
    // Beyond 2^53 a double can no longer hold the value exactly; a decimal
    // string keeps the promised exact round trip.
    if (*v > (1LL << 53) || *v < -(1LL << 53)) {
      entry.set("v", std::to_string(*v));
    } else {
      entry.set("v", *v);
    }
  } else if (const auto* v = std::get_if<double>(&value)) {
    entry.set("t", "r");
    // The JSON writer renders non-finite doubles as null, which would not
    // decode back; tagged strings keep NaN/±inf wire-safe.
    if (std::isnan(*v)) {
      entry.set("v", "nan");
    } else if (std::isinf(*v)) {
      entry.set("v", *v > 0 ? "inf" : "-inf");
    } else {
      entry.set("v", *v);
    }
  } else if (const auto* v = std::get_if<bool>(&value)) {
    entry.set("t", "b");
    entry.set("v", *v);
  } else {
    entry.set("t", "s");
    entry.set("v", std::get<std::string>(value));
  }
  return entry;
}

TelemetryValue telemetry_value_from_json(const util::Json& entry) {
  const std::string tag = entry.at("t").as_string();
  const util::Json& v = entry.at("v");
  if (tag == "i") {
    return v.is_string() ? std::stoll(v.as_string()) : v.as_int();
  }
  if (tag == "r") {
    if (v.is_string()) {
      const std::string& text = v.as_string();
      if (text == "nan") return std::numeric_limits<double>::quiet_NaN();
      if (text == "inf") return std::numeric_limits<double>::infinity();
      if (text == "-inf") return -std::numeric_limits<double>::infinity();
      throw std::runtime_error("telemetry: bad real value \"" + text + "\"");
    }
    // Frames written before non-finite tagging rendered NaN/inf as null.
    if (v.is_null()) return std::numeric_limits<double>::quiet_NaN();
    return v.as_number();
  }
  if (tag == "b") return v.as_bool();
  if (tag == "s") return v.as_string();
  throw std::runtime_error("telemetry: unknown value tag \"" + tag + "\"");
}

CacheMode cache_mode_from_string(const std::string& text) {
  if (text == "off") return CacheMode::Off;
  if (text == "read") return CacheMode::Read;
  if (text == "read-write") return CacheMode::ReadWrite;
  throw std::runtime_error("options: unknown cache_mode \"" + text + "\"");
}

}  // namespace

util::Json options_to_json(const SolveOptions& options) {
  util::Json json = util::Json::object();
  json.set("eps", options.eps);
  json.set("time_limit_seconds", options.time_limit_seconds);
  json.set("max_nodes", options.max_nodes);
  json.set("max_moves", options.max_moves);
  json.set("multifit_iterations", options.multifit_iterations);
  // A decimal string: uint64 seeds above 2^53 don't survive a double.
  json.set("seed", std::to_string(options.seed));
  json.set("stack_threshold", options.stack_threshold);
  if (options.cache_mode != CacheMode::Off) {
    json.set("cache_mode", to_string(options.cache_mode));
  }
  return json;
}

SolveOptions options_from_json(const util::Json& json) {
  SolveOptions options;
  options.eps = json.number_or("eps", options.eps);
  options.time_limit_seconds =
      json.number_or("time_limit_seconds", options.time_limit_seconds);
  options.max_nodes = json.int_or("max_nodes", options.max_nodes);
  options.max_moves = json.int_or("max_moves", options.max_moves);
  options.multifit_iterations = static_cast<int>(
      json.int_or("multifit_iterations", options.multifit_iterations));
  if (const util::Json* seed = json.find("seed")) {
    options.seed = seed->is_string()
                       ? std::stoull(seed->as_string())
                       : static_cast<std::uint64_t>(seed->as_int());
  }
  options.stack_threshold =
      json.number_or("stack_threshold", options.stack_threshold);
  if (const util::Json* mode = json.find("cache_mode")) {
    options.cache_mode = cache_mode_from_string(mode->as_string());
  }
  return options;
}

util::Json to_json(const Telemetry& telemetry) {
  util::Json json = util::Json::object();
  for (const auto& [key, value] : telemetry) {
    json.set(key, telemetry_value_to_json(value));
  }
  return json;
}

Telemetry telemetry_from_json(const util::Json& json) {
  Telemetry telemetry;
  for (const auto& [key, value] : json.as_object()) {
    telemetry[key] = telemetry_value_from_json(value);
  }
  return telemetry;
}

SolveStatus solve_status_from_string(const std::string& name) {
  for (const SolveStatus status :
       {SolveStatus::Optimal, SolveStatus::Feasible, SolveStatus::Infeasible,
        SolveStatus::Error, SolveStatus::Cancelled}) {
    if (name == to_string(status)) return status;
  }
  throw std::runtime_error("unknown solve status \"" + name + "\"");
}

util::Json to_json(const SolveResult& result, bool include_schedule) {
  util::Json json = util::Json::object();
  json.set("solver", result.solver);
  json.set("status", to_string(result.status));
  json.set("makespan", result.makespan);
  json.set("lower_bound", result.lower_bound);
  json.set("optimality_gap", result.optimality_gap);
  json.set("proven_optimal", result.proven_optimal);
  json.set("schedule_feasible", result.schedule_feasible);
  json.set("cancelled", result.cancelled);
  if (result.moved_jobs >= 0) {
    json.set("moved_jobs", static_cast<long long>(result.moved_jobs));
    json.set("migration_ratio", result.migration_ratio);
  }
  json.set("wall_seconds", result.wall_seconds);
  if (!result.error.empty()) json.set("error", result.error);
  if (include_schedule && result.schedule.num_jobs() > 0) {
    json.set("schedule", model::schedule_to_json(result.schedule));
  }
  json.set("stats", to_json(result.stats));
  return json;
}

SolveResult solve_result_from_json(const util::Json& json) {
  SolveResult result;
  result.solver = json.string_or("solver", "");
  result.status = solve_status_from_string(json.at("status").as_string());
  result.makespan = json.number_or("makespan", 0.0);
  result.lower_bound = json.number_or("lower_bound", 0.0);
  result.optimality_gap = json.number_or("optimality_gap", 0.0);
  result.proven_optimal = json.bool_or("proven_optimal", false);
  result.schedule_feasible = json.bool_or("schedule_feasible", false);
  result.cancelled = json.bool_or("cancelled", false);
  result.moved_jobs = static_cast<int>(json.int_or("moved_jobs", -1));
  result.migration_ratio = json.number_or("migration_ratio", 0.0);
  result.wall_seconds = json.number_or("wall_seconds", 0.0);
  result.error = json.string_or("error", "");
  if (const util::Json* schedule = json.find("schedule")) {
    result.schedule = model::schedule_from_json(*schedule);
  }
  if (const util::Json* stats = json.find("stats")) {
    result.stats = telemetry_from_json(*stats);
  }
  return result;
}

util::Json to_json(const SolveRequest& request) {
  util::Json json = util::Json::object();
  if (request.instance != nullptr) {
    json.set("instance", model::instance_to_json(*request.instance));
  }
  json.set("options", options_to_json(request.options));
  util::Json solvers = util::Json::array();
  for (const auto& name : request.solvers) solvers.push_back(name);
  json.set("solvers", std::move(solvers));
  json.set("priority", request.priority);
  if (request.deadline.has_value()) {
    json.set("deadline_seconds",
             std::chrono::duration<double>(*request.deadline -
                                           ServiceClock::now())
                 .count());
  }
  return json;
}

SolveRequest solve_request_from_json(const util::Json& json) {
  SolveRequest request;
  request.instance = std::make_shared<const model::Instance>(
      model::instance_from_json(json.at("instance")));
  if (const util::Json* options = json.find("options")) {
    request.options = options_from_json(*options);
  }
  if (const util::Json* solvers = json.find("solvers")) {
    for (const util::Json& name : solvers->as_array()) {
      request.solvers.push_back(name.as_string());
    }
  }
  request.priority = static_cast<int>(json.int_or("priority", 0));
  if (const util::Json* deadline = json.find("deadline_seconds")) {
    request.deadline = deadline_in(deadline->as_number());
  }
  return request;
}

util::Json to_json(const model::Delta& delta) {
  util::Json json = util::Json::object();
  if (!delta.arrivals.empty()) {
    util::Json arrivals = util::Json::array();
    for (const model::JobArrival& arrival : delta.arrivals) {
      util::Json entry = util::Json::object();
      entry.set("size", arrival.size);
      entry.set("bag", static_cast<long long>(arrival.bag));
      arrivals.push_back(std::move(entry));
    }
    json.set("arrivals", std::move(arrivals));
  }
  if (!delta.departures.empty()) {
    util::Json departures = util::Json::array();
    for (const model::JobId job : delta.departures) {
      departures.push_back(static_cast<long long>(job));
    }
    json.set("departures", std::move(departures));
  }
  if (!delta.resizes.empty()) {
    util::Json resizes = util::Json::array();
    for (const model::JobResize& resize : delta.resizes) {
      util::Json entry = util::Json::object();
      entry.set("job", static_cast<long long>(resize.job));
      entry.set("size", resize.size);
      resizes.push_back(std::move(entry));
    }
    json.set("resizes", std::move(resizes));
  }
  if (delta.machines_added != 0) {
    json.set("machines_added", static_cast<long long>(delta.machines_added));
  }
  if (!delta.failed_machines.empty()) {
    util::Json failed = util::Json::array();
    for (const model::MachineId machine : delta.failed_machines) {
      failed.push_back(static_cast<long long>(machine));
    }
    json.set("failed_machines", std::move(failed));
  }
  return json;
}

model::Delta delta_from_json(const util::Json& json) {
  model::Delta delta;
  if (const util::Json* arrivals = json.find("arrivals")) {
    for (const util::Json& entry : arrivals->as_array()) {
      delta.arrivals.push_back(model::JobArrival{
          entry.at("size").as_number(),
          static_cast<model::BagId>(entry.at("bag").as_int())});
    }
  }
  if (const util::Json* departures = json.find("departures")) {
    for (const util::Json& job : departures->as_array()) {
      delta.departures.push_back(static_cast<model::JobId>(job.as_int()));
    }
  }
  if (const util::Json* resizes = json.find("resizes")) {
    for (const util::Json& entry : resizes->as_array()) {
      delta.resizes.push_back(model::JobResize{
          static_cast<model::JobId>(entry.at("job").as_int()),
          entry.at("size").as_number()});
    }
  }
  delta.machines_added = static_cast<int>(json.int_or("machines_added", 0));
  if (const util::Json* failed = json.find("failed_machines")) {
    for (const util::Json& machine : failed->as_array()) {
      delta.failed_machines.push_back(
          static_cast<model::MachineId>(machine.as_int()));
    }
  }
  return delta;
}

util::Json to_json(const DeltaRequest& request) {
  util::Json json = util::Json::object();
  json.set("session", static_cast<long long>(request.session));
  json.set("delta", to_json(request.delta));
  if (request.expect_revision.has_value()) {
    json.set("expect_revision",
             static_cast<long long>(*request.expect_revision));
  }
  if (request.priority != 0) json.set("priority", request.priority);
  if (request.deadline.has_value()) {
    json.set("deadline_seconds",
             std::chrono::duration<double>(*request.deadline -
                                           ServiceClock::now())
                 .count());
  }
  return json;
}

DeltaRequest delta_request_from_json(const util::Json& json) {
  DeltaRequest request;
  request.session = static_cast<std::uint64_t>(json.at("session").as_int());
  if (const util::Json* delta = json.find("delta")) {
    request.delta = delta_from_json(*delta);
  }
  if (const util::Json* expect = json.find("expect_revision")) {
    request.expect_revision = static_cast<std::uint64_t>(expect->as_int());
  }
  request.priority = static_cast<int>(json.int_or("priority", 0));
  if (const util::Json* deadline = json.find("deadline_seconds")) {
    request.deadline = deadline_in(deadline->as_number());
  }
  return request;
}

}  // namespace bagsched::api
