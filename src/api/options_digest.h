// The single registry of result-relevant SolveOptions fields.
//
// Several subsystems need to agree on what "the same options" means: the
// solve cache keys entries on it, the service's single-flight dedup shares
// solves under it, and online delta sessions memoize committed schedules by
// it. Before this registry the field list was duplicated (the cache's
// digest vs the EPTAS-knob digest grown in PR 5), and adding a knob in one
// place but not the other silently produced stale cache hits. Now every
// digest consumer calls api::options_digest(), and the field list is data —
// digest_fields() — so a test can assert the registry covers what it must.
//
// Deliberately excluded: num_threads (parallel solvers are thread-count-
// invariant by contract), cache_mode (how a result is stored, not what it
// is), and the process-local cancellation/progress/on_probe plumbing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/solver.h"
#include "util/hash.h"

namespace bagsched::api {

/// One registered digest contribution: a stable name (for introspection and
/// tests) plus the mixer that folds the field's value into the hash.
struct DigestField {
  const char* name;
  void (*mix)(util::Hash128& hash, const SolveOptions& options);
};

/// The registry, in fixed order (the order is part of the digest).
const std::vector<DigestField>& digest_fields();

/// Names of every registered field, in registry order.
std::vector<std::string> digest_field_names();

/// Digest of the SolveOptions fields that can change a solver's output —
/// the one true options key for cache entries, single-flight attachment
/// and session memos.
std::uint64_t options_digest(const SolveOptions& options);

}  // namespace bagsched::api
