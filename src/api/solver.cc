#include "api/solver.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "model/lower_bounds.h"
#include "util/stopwatch.h"

namespace bagsched::api {

std::string to_string(const TelemetryValue& value) {
  if (const auto* v = std::get_if<long long>(&value)) {
    return std::to_string(*v);
  }
  if (const auto* v = std::get_if<double>(&value)) {
    std::ostringstream out;
    out << *v;
    return out.str();
  }
  if (const auto* v = std::get_if<bool>(&value)) {
    return *v ? "true" : "false";
  }
  return std::get<std::string>(value);
}

const char* to_string(Guarantee guarantee) {
  switch (guarantee) {
    case Guarantee::Exact: return "exact";
    case Guarantee::Eptas: return "eptas";
    case Guarantee::Heuristic: return "heuristic";
    case Guarantee::Reference: return "reference";
  }
  return "?";
}

const char* to_string(ProgressKind kind) {
  switch (kind) {
    case ProgressKind::Queued: return "queued";
    case ProgressKind::Started: return "started";
    case ProgressKind::Phase: return "phase";
    case ProgressKind::Incumbent: return "incumbent";
    case ProgressKind::Finished: return "finished";
  }
  return "?";
}

const char* to_string(CacheMode mode) {
  switch (mode) {
    case CacheMode::Off: return "off";
    case CacheMode::Read: return "read";
    case CacheMode::ReadWrite: return "read-write";
  }
  return "?";
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Feasible: return "feasible";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Error: return "error";
    case SolveStatus::Cancelled: return "cancelled";
  }
  return "?";
}

SolveResult Solver::solve(const model::Instance& instance,
                          const SolveOptions& options) const {
  SolveResult result;
  result.solver = info_.name;

  // Uniform validation, exactly once: malformed instances (negative sizes,
  // bag ids out of range) and bag-infeasible ones (some bag larger than m)
  // both come back as structured errors — no solver throws, none silently
  // emits an invalid schedule.
  try {
    instance.validate();
  } catch (const std::exception& error) {
    result.status = SolveStatus::Infeasible;
    result.error = std::string("invalid instance: ") + error.what();
    return result;
  }
  if (!instance.is_feasible()) {
    std::ostringstream message;
    message << "infeasible instance: a bag has " << instance.max_bag_size()
            << " jobs but only " << instance.num_machines()
            << " machines exist";
    result.status = SolveStatus::Infeasible;
    result.error = message.str();
    return result;
  }
  if (util::stop_requested(options.cancel)) {
    result.status = SolveStatus::Cancelled;
    result.cancelled = true;
    return result;
  }

  result.lower_bound = model::combined_lower_bound(instance);

  // Adapters downgrade to Infeasible/Cancelled explicitly when they fail;
  // anything else is re-classified below from the schedule itself.
  result.status = SolveStatus::Feasible;

  util::Stopwatch timer;
  run(instance, options, result);
  result.wall_seconds = timer.seconds();

  if (result.status == SolveStatus::Infeasible) return result;
  if (result.status == SolveStatus::Cancelled) {
    // Cancellation contract: a Cancelled result that still carries an
    // incumbent reports its makespan, feasibility and gap exactly like a
    // Feasible one, so deadline-cut schedules are directly usable.
    result.cancelled = true;
    if (result.schedule.num_jobs() > 0) {
      result.makespan = result.schedule.makespan(instance);
      result.schedule_feasible =
          model::validate(instance, result.schedule).ok();
      if (result.schedule_feasible && result.lower_bound > 0.0) {
        result.optimality_gap = result.makespan / result.lower_bound - 1.0;
      }
    }
    return result;
  }

  result.makespan = result.schedule.makespan(instance);
  const auto validation = model::validate(instance, result.schedule);
  result.schedule_feasible = validation.ok();

  // A makespan matching the lower bound is a proof of optimality even when
  // the algorithm itself carries no certificate.
  if (result.schedule_feasible &&
      result.makespan <= result.lower_bound * (1.0 + 1e-12) + 1e-12) {
    result.proven_optimal = true;
  }
  if (result.proven_optimal) {
    result.status = SolveStatus::Optimal;
    result.optimality_gap = 0.0;
  } else {
    result.status = SolveStatus::Feasible;
    result.optimality_gap =
        result.lower_bound > 0.0
            ? result.makespan / result.lower_bound - 1.0
            : 0.0;
  }
  return result;
}

}  // namespace bagsched::api
