// Dinic's maximum-flow algorithm on integer capacities.
//
// Substrate for the paper's Lemma 3: medium jobs of non-priority bags are
// inserted into an existing schedule via an integral flow in a bipartite
// bag/machine network. Dinic runs in O(V^2 E) generally and O(E sqrt(V)) on
// unit-capacity bipartite graphs — far below everything else in the pipeline.
#pragma once

#include <cstdint>
#include <vector>

namespace bagsched::flow {

class Dinic {
 public:
  explicit Dinic(int num_nodes);

  int num_nodes() const { return static_cast<int>(level_.size()); }

  /// Adds a directed edge u->v with the given capacity; returns an edge id
  /// usable with flow_on() after max_flow().
  int add_edge(int u, int v, std::int64_t capacity);

  /// Computes the maximum s-t flow; callable once per network state.
  std::int64_t max_flow(int source, int sink);

  /// Flow pushed over edge `edge_id` (as returned by add_edge).
  std::int64_t flow_on(int edge_id) const;

 private:
  struct Edge {
    int to;
    std::int64_t capacity;  ///< residual capacity
    int reverse;            ///< index of the reverse edge in graph_[to]
  };

  bool build_levels(int source, int sink);
  std::int64_t push(int node, int sink, std::int64_t limit);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_index_;  ///< edge id -> (node, slot)
  std::vector<std::int64_t> initial_capacity_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace bagsched::flow
