// Bipartite group->slot assignment on top of Dinic, in the exact shape of the
// paper's Lemma 3 network: source -> group (demand), group -> slot (cap 1,
// only where allowed), slot -> sink (capacity).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace bagsched::flow {

struct AssignmentProblem {
  /// demand[g]: how many items group g must place.
  std::vector<int> demands;
  /// capacity[s]: how many items slot s can accept.
  std::vector<int> capacities;
  /// allowed(g, s): whether group g may use slot s (each at most once).
  std::function<bool(int, int)> allowed;
};

/// result[g] lists the slots assigned to group g (each slot used at most
/// once per group). Empty optional when total demand cannot be met.
std::optional<std::vector<std::vector<int>>> solve_assignment(
    const AssignmentProblem& problem);

}  // namespace bagsched::flow
