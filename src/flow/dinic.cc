#include "flow/dinic.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace bagsched::flow {

Dinic::Dinic(int num_nodes)
    : graph_(static_cast<std::size_t>(num_nodes)),
      level_(static_cast<std::size_t>(num_nodes)),
      iter_(static_cast<std::size_t>(num_nodes)) {}

int Dinic::add_edge(int u, int v, std::int64_t capacity) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  assert(capacity >= 0);
  auto& forward_list = graph_[static_cast<std::size_t>(u)];
  auto& backward_list = graph_[static_cast<std::size_t>(v)];
  forward_list.push_back(
      Edge{v, capacity, static_cast<int>(backward_list.size())});
  backward_list.push_back(
      Edge{u, 0, static_cast<int>(forward_list.size()) - 1});
  edge_index_.emplace_back(u, static_cast<int>(forward_list.size()) - 1);
  initial_capacity_.push_back(capacity);
  return static_cast<int>(edge_index_.size()) - 1;
}

bool Dinic::build_levels(int source, int sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop();
    for (const Edge& edge : graph_[static_cast<std::size_t>(node)]) {
      if (edge.capacity > 0 &&
          level_[static_cast<std::size_t>(edge.to)] < 0) {
        level_[static_cast<std::size_t>(edge.to)] =
            level_[static_cast<std::size_t>(node)] + 1;
        queue.push(edge.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

std::int64_t Dinic::push(int node, int sink, std::int64_t limit) {
  if (node == sink) return limit;
  auto& slot = iter_[static_cast<std::size_t>(node)];
  auto& edges = graph_[static_cast<std::size_t>(node)];
  for (; slot < static_cast<int>(edges.size()); ++slot) {
    Edge& edge = edges[static_cast<std::size_t>(slot)];
    if (edge.capacity <= 0 ||
        level_[static_cast<std::size_t>(edge.to)] !=
            level_[static_cast<std::size_t>(node)] + 1) {
      continue;
    }
    const std::int64_t pushed =
        push(edge.to, sink, std::min(limit, edge.capacity));
    if (pushed > 0) {
      edge.capacity -= pushed;
      graph_[static_cast<std::size_t>(edge.to)]
            [static_cast<std::size_t>(edge.reverse)]
                .capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t Dinic::max_flow(int source, int sink) {
  assert(source != sink);
  std::int64_t total = 0;
  while (build_levels(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    for (;;) {
      const std::int64_t pushed =
          push(source, sink, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t Dinic::flow_on(int edge_id) const {
  const auto& [node, slot] = edge_index_[static_cast<std::size_t>(edge_id)];
  const Edge& edge =
      graph_[static_cast<std::size_t>(node)][static_cast<std::size_t>(slot)];
  return initial_capacity_[static_cast<std::size_t>(edge_id)] - edge.capacity;
}

}  // namespace bagsched::flow
