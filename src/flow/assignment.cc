#include "flow/assignment.h"

#include <numeric>

#include "flow/dinic.h"

namespace bagsched::flow {

std::optional<std::vector<std::vector<int>>> solve_assignment(
    const AssignmentProblem& problem) {
  const int num_groups = static_cast<int>(problem.demands.size());
  const int num_slots = static_cast<int>(problem.capacities.size());
  const std::int64_t total_demand =
      std::accumulate(problem.demands.begin(), problem.demands.end(),
                      std::int64_t{0});

  // Node layout: 0 = source, 1..G = groups, G+1..G+S = slots, last = sink.
  const int source = 0;
  const int sink = num_groups + num_slots + 1;
  Dinic dinic(sink + 1);

  for (int g = 0; g < num_groups; ++g) {
    dinic.add_edge(source, 1 + g, problem.demands[static_cast<std::size_t>(g)]);
  }
  // Remember (group, slot) per middle edge to read the assignment back.
  std::vector<std::tuple<int, int, int>> middle_edges;  // (edge, group, slot)
  for (int g = 0; g < num_groups; ++g) {
    for (int s = 0; s < num_slots; ++s) {
      if (problem.allowed(g, s)) {
        const int edge = dinic.add_edge(1 + g, 1 + num_groups + s, 1);
        middle_edges.emplace_back(edge, g, s);
      }
    }
  }
  for (int s = 0; s < num_slots; ++s) {
    dinic.add_edge(1 + num_groups + s, sink,
                   problem.capacities[static_cast<std::size_t>(s)]);
  }

  if (dinic.max_flow(source, sink) < total_demand) return std::nullopt;

  std::vector<std::vector<int>> result(
      static_cast<std::size_t>(num_groups));
  for (const auto& [edge, group, slot] : middle_edges) {
    if (dinic.flow_on(edge) > 0) {
      result[static_cast<std::size_t>(group)].push_back(slot);
    }
  }
  return result;
}

}  // namespace bagsched::flow
