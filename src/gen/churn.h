// Churn traces for the online scheduling experiments (DESIGN.md §7): a
// seeded initial instance plus a deterministic sequence of deltas modeling
// rolling cluster churn — job arrivals/departures, size drift, machine
// joins and failures — with every intermediate instance guaranteed
// bag-feasible, so a trace can be replayed through online::ScheduleSession
// (or over the wire) without infeasibility special cases.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/generators.h"
#include "model/delta.h"
#include "model/instance.h"

namespace bagsched::gen {

struct ChurnParams {
  /// Shape of the initial instance (uniform family).
  int num_jobs = 200;
  int num_machines = 16;
  int num_bags = 40;
  double min_size = 0.1;
  double max_size = 1.0;
  /// Deltas in the trace.
  int steps = 50;
  /// Expected events per delta, split over the event kinds below.
  double arrivals_per_step = 2.0;
  double departures_per_step = 2.0;
  double resizes_per_step = 1.0;
  /// Per-step probability of one machine joining / failing. Failures are
  /// suppressed while they would make the instance bag-infeasible or leave
  /// fewer than half the initial machines.
  double machine_join_prob = 0.05;
  double machine_fail_prob = 0.05;
  /// Resized jobs drift by a factor uniform in [1/(1+drift), 1+drift].
  double size_drift = 0.3;
  std::uint64_t seed = 1;
};

struct ChurnTrace {
  model::Instance initial;
  /// deltas[k] applies to the instance after deltas[0..k-1]; every
  /// intermediate instance is bag-feasible by construction.
  std::vector<model::Delta> deltas;
};

/// Deterministic function of its params (including the seed): two calls
/// with equal params yield identical traces, job for job.
ChurnTrace churn_trace(const ChurnParams& params);

}  // namespace bagsched::gen
