#include "gen/generators.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "util/prng.h"

namespace bagsched::gen {

using model::BagId;
using model::Instance;
using model::Job;
using util::Xoshiro256;

namespace {

/// Draws a bag id uniformly, retrying while the bag is full (|B_l| = m).
BagId draw_bag(Xoshiro256& rng, std::vector<int>& bag_fill, int num_machines) {
  const int num_bags = static_cast<int>(bag_fill.size());
  // Guard: if every bag is full the caller asked for an infeasible shape.
  const bool any_free = std::any_of(bag_fill.begin(), bag_fill.end(),
                                    [&](int f) { return f < num_machines; });
  if (!any_free) {
    throw std::invalid_argument("generator: all bags full, infeasible shape");
  }
  for (;;) {
    const BagId bag = static_cast<BagId>(rng.index(
        static_cast<std::size_t>(num_bags)));
    if (bag_fill[static_cast<std::size_t>(bag)] < num_machines) {
      ++bag_fill[static_cast<std::size_t>(bag)];
      return bag;
    }
  }
}

Instance build(std::vector<double> sizes, std::vector<BagId> bags,
               int num_machines, Xoshiro256& rng) {
  // Shuffle jointly so job order carries no information.
  std::vector<std::size_t> perm(sizes.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  std::vector<double> shuffled_sizes(sizes.size());
  std::vector<BagId> shuffled_bags(bags.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shuffled_sizes[i] = sizes[perm[i]];
    shuffled_bags[i] = bags[perm[i]];
  }
  return Instance::from_vectors(shuffled_sizes, shuffled_bags, num_machines);
}

}  // namespace

Instance uniform(const UniformParams& params) {
  Xoshiro256 rng(params.seed ^ 0x756e69666f726dULL);
  std::vector<double> sizes;
  std::vector<BagId> bags;
  std::vector<int> bag_fill(static_cast<std::size_t>(params.num_bags), 0);
  for (int j = 0; j < params.num_jobs; ++j) {
    sizes.push_back(rng.uniform_real(params.min_size, params.max_size));
    bags.push_back(draw_bag(rng, bag_fill, params.num_machines));
  }
  return build(std::move(sizes), std::move(bags), params.num_machines, rng);
}

PlantedInstance planted(const PlantedParams& params) {
  Xoshiro256 rng(params.seed ^ 0x706c616e746564ULL);
  if (params.num_bags < params.max_jobs_per_machine) {
    throw std::invalid_argument(
        "planted: need num_bags >= max_jobs_per_machine");
  }
  std::vector<double> sizes;
  std::vector<BagId> bags;
  std::vector<BagId> bag_pool(static_cast<std::size_t>(params.num_bags));
  std::iota(bag_pool.begin(), bag_pool.end(), BagId{0});

  for (int machine = 0; machine < params.num_machines; ++machine) {
    const int jobs_here = static_cast<int>(rng.uniform_int(
        params.min_jobs_per_machine, params.max_jobs_per_machine));
    // Stick-breaking: split `target` into jobs_here positive pieces.
    std::vector<double> cuts{0.0, params.target};
    for (int c = 1; c < jobs_here; ++c) {
      cuts.push_back(rng.uniform_real(0.05 * params.target,
                                      0.95 * params.target));
    }
    std::sort(cuts.begin(), cuts.end());
    // Distinct bags for this machine's jobs.
    rng.shuffle(bag_pool);
    for (int c = 0; c < jobs_here; ++c) {
      const double piece = cuts[static_cast<std::size_t>(c) + 1] -
                           cuts[static_cast<std::size_t>(c)];
      // Degenerate zero-width pieces are merged into the next one instead of
      // emitting size-0 jobs.
      if (piece <= 1e-12) continue;
      sizes.push_back(piece);
      bags.push_back(bag_pool[static_cast<std::size_t>(c)]);
    }
  }
  PlantedInstance result{
      build(std::move(sizes), std::move(bags), params.num_machines, rng),
      params.target};
  return result;
}

PlantedInstance figure1(const Figure1Params& params) {
  Xoshiro256 rng(params.seed ^ 0x66696775726531ULL);
  const int m = params.num_machines;
  const double large = 2.0 * params.scale / 3.0;
  const double small = params.scale / 3.0;
  std::vector<double> sizes;
  std::vector<BagId> bags;
  // m large jobs of size 2/3*scale, each in its own bag (bags 1..m). A
  // packing that stacks two of them per machine has height 4/3*scale using
  // only half the machines — locally plausible, globally the trap.
  for (int j = 0; j < m; ++j) {
    sizes.push_back(large);
    bags.push_back(static_cast<BagId>(j + 1));
  }
  // One tight bag (bag 0) with m jobs of size scale/3: its jobs must occupy
  // every machine, so any machine stacking two large jobs ends at
  // (4/3 + 1/3)*scale = 5/3*scale. OPT pairs one large with one small
  // everywhere: exactly `scale`.
  for (int j = 0; j < m; ++j) {
    sizes.push_back(small);
    bags.push_back(0);
  }
  PlantedInstance result{
      build(std::move(sizes), std::move(bags), m, rng), params.scale};
  return result;
}

Instance bag_heavy(const BagHeavyParams& params) {
  Xoshiro256 rng(params.seed ^ 0x6261676865617679ULL);
  const int per_bag = std::min(
      params.num_machines,
      static_cast<int>(std::ceil(params.fill * params.num_machines)));
  std::vector<double> sizes;
  std::vector<BagId> bags;
  for (BagId bag = 0; bag < params.num_bags; ++bag) {
    for (int j = 0; j < per_bag; ++j) {
      sizes.push_back(rng.uniform_real(params.min_size, params.max_size));
      bags.push_back(bag);
    }
  }
  return build(std::move(sizes), std::move(bags), params.num_machines, rng);
}

Instance many_small_bags(const ManySmallBagsParams& params) {
  Xoshiro256 rng(params.seed ^ 0x736d616c6c626167ULL);
  std::vector<double> sizes;
  std::vector<BagId> bags;
  BagId next_bag = 0;
  int jobs_left = params.num_jobs;
  while (jobs_left > 0) {
    const int in_bag = static_cast<int>(
        rng.uniform_int(1, std::min<std::int64_t>(3, jobs_left)));
    for (int j = 0; j < in_bag; ++j) {
      sizes.push_back(rng.uniform_real(params.min_size, params.max_size));
      bags.push_back(next_bag);
    }
    ++next_bag;
    jobs_left -= in_bag;
  }
  return build(std::move(sizes), std::move(bags), params.num_machines, rng);
}

Instance two_point(const TwoPointParams& params) {
  Xoshiro256 rng(params.seed ^ 0x74776f706f696e74ULL);
  std::vector<double> sizes;
  std::vector<BagId> bags;
  std::vector<int> bag_fill(static_cast<std::size_t>(params.num_bags), 0);
  for (int j = 0; j < params.num_jobs; ++j) {
    sizes.push_back(rng.bernoulli(params.large_fraction) ? params.large_size
                                                         : params.small_size);
    bags.push_back(draw_bag(rng, bag_fill, params.num_machines));
  }
  return build(std::move(sizes), std::move(bags), params.num_machines, rng);
}

Instance replica(const ReplicaParams& params) {
  Xoshiro256 rng(params.seed ^ 0x7265706c696361ULL);
  if (params.replicas > params.num_machines) {
    throw std::invalid_argument("replica: replicas must be <= machines");
  }
  std::vector<double> sizes;
  std::vector<BagId> bags;
  for (BagId task = 0; task < params.tasks; ++task) {
    const double size = rng.uniform_real(params.min_size, params.max_size);
    for (int r = 0; r < params.replicas; ++r) {
      sizes.push_back(size);
      bags.push_back(task);
    }
  }
  return build(std::move(sizes), std::move(bags), params.num_machines, rng);
}

Instance mixed(const MixedParams& params) {
  Xoshiro256 rng(params.seed ^ 0x6d69786564ULL);
  std::vector<double> sizes;
  std::vector<BagId> bags;
  std::vector<int> bag_fill(static_cast<std::size_t>(params.num_bags), 0);
  auto emit = [&](int count, double lo, double hi) {
    for (int j = 0; j < count; ++j) {
      sizes.push_back(params.target * rng.uniform_real(lo, hi));
      bags.push_back(draw_bag(rng, bag_fill, params.num_machines));
    }
  };
  emit(params.large_jobs, 0.3, 0.7);
  emit(params.medium_jobs, 0.05, 0.15);
  emit(params.small_jobs, 0.005, 0.04);
  return build(std::move(sizes), std::move(bags), params.num_machines, rng);
}

Instance by_name(const std::string& family, int num_jobs, int num_machines,
                 std::uint64_t seed) {
  // Bags must satisfy num_bags * m >= n for the instance to be feasible;
  // keep a little slack so the generators' rejection loops terminate fast.
  const auto bags_for = [&](int jobs) {
    const int minimum = (jobs + num_machines - 1) / num_machines + 1;
    return std::max({2, minimum, jobs / 4});
  };
  if (family == "uniform") {
    UniformParams p;
    p.num_jobs = num_jobs;
    p.num_machines = num_machines;
    p.num_bags = bags_for(num_jobs);
    p.seed = seed;
    return uniform(p);
  }
  if (family == "planted") {
    PlantedParams p;
    p.num_machines = num_machines;
    p.max_jobs_per_machine =
        std::max(2, num_jobs / std::max(1, num_machines));
    p.min_jobs_per_machine = std::max(1, p.max_jobs_per_machine / 2);
    p.num_bags = std::max(p.max_jobs_per_machine, num_jobs / 3);
    p.seed = seed;
    return planted(p).instance;
  }
  if (family == "figure1") {
    Figure1Params p;
    p.num_machines = num_machines;
    p.seed = seed;
    return figure1(p).instance;
  }
  if (family == "bagheavy") {
    BagHeavyParams p;
    p.num_machines = num_machines;
    p.num_bags = std::max(1, num_jobs / std::max(1, num_machines));
    p.seed = seed;
    return bag_heavy(p);
  }
  if (family == "smallbags") {
    ManySmallBagsParams p;
    p.num_jobs = num_jobs;
    p.num_machines = num_machines;
    p.seed = seed;
    return many_small_bags(p);
  }
  if (family == "twopoint") {
    TwoPointParams p;
    p.num_jobs = num_jobs;
    p.num_machines = num_machines;
    p.num_bags = bags_for(num_jobs);
    p.seed = seed;
    return two_point(p);
  }
  if (family == "replica") {
    ReplicaParams p;
    p.tasks = std::max(1, num_jobs / 3);
    p.num_machines = num_machines;
    p.replicas = std::min(3, num_machines);
    p.seed = seed;
    return replica(p);
  }
  if (family == "mixed") {
    MixedParams p;
    p.num_machines = num_machines;
    p.num_bags = bags_for(num_jobs);
    p.large_jobs = num_jobs / 8;
    p.medium_jobs = num_jobs / 4;
    p.small_jobs = num_jobs - p.large_jobs - p.medium_jobs;
    p.seed = seed;
    return mixed(p);
  }
  throw std::invalid_argument("unknown family: " + family);
}

std::vector<std::string> family_names() {
  return {"uniform", "planted",   "figure1", "bagheavy",
          "smallbags", "twopoint", "replica", "mixed"};
}

}  // namespace bagsched::gen
