// Seeded workload generators for every experiment family in DESIGN.md §5.
//
// All generators are deterministic functions of their parameter struct
// (including the seed), so every benchmark row is reproducible.
#pragma once

#include <string>
#include <vector>

#include "model/instance.h"

namespace bagsched::gen {

/// An instance together with its known optimal makespan (when planted).
struct PlantedInstance {
  model::Instance instance;
  double opt = 0.0;  ///< exact optimal makespan by construction
};

// ---------------------------------------------------------------------------
// Uniform family: n jobs with sizes uniform in [min_size, max_size], each job
// assigned to one of num_bags bags uniformly (re-drawn if a bag would exceed
// m jobs, which would make the instance infeasible).
struct UniformParams {
  int num_jobs = 100;
  int num_machines = 10;
  int num_bags = 20;
  double min_size = 0.1;
  double max_size = 1.0;
  std::uint64_t seed = 1;
};
model::Instance uniform(const UniformParams& params);

// ---------------------------------------------------------------------------
// Planted-optimum family: builds a perfect schedule first (every machine
// filled to exactly `target` with jobs of pairwise-distinct bags), then
// emits the jobs in shuffled order. OPT equals `target` exactly: the planted
// schedule achieves it and the area bound matches it.
struct PlantedParams {
  int num_machines = 10;
  int num_bags = 25;          ///< bags to draw from (>= max jobs per machine)
  int min_jobs_per_machine = 2;
  int max_jobs_per_machine = 6;
  double target = 1.0;        ///< the planted optimal makespan
  std::uint64_t seed = 1;
};
PlantedInstance planted(const PlantedParams& params);

// ---------------------------------------------------------------------------
// Figure-1 adversarial family (paper Figure 1): `pairs` large jobs of size
// one half, each in its own bag, plus one "tight" bag with num_machines jobs
// of size one half. Any schedule that stacks two large jobs on one machine is
// forced to exceed OPT by 50% when placing the tight bag; OPT = scale.
struct Figure1Params {
  int num_machines = 8;
  double scale = 1.0;  ///< OPT of the instance
  std::uint64_t seed = 1;
};
PlantedInstance figure1(const Figure1Params& params);

// ---------------------------------------------------------------------------
// Bag-heavy family: few bags, each holding close to m jobs — the
// bag-constraints are globally tight and dominate the structure.
struct BagHeavyParams {
  int num_machines = 10;
  int num_bags = 6;
  double fill = 0.9;          ///< each bag holds ceil(fill * m) jobs
  double min_size = 0.05;
  double max_size = 0.5;
  std::uint64_t seed = 1;
};
model::Instance bag_heavy(const BagHeavyParams& params);

// ---------------------------------------------------------------------------
// Many-small-bags family: bags of 1..3 jobs — close to unconstrained P||Cmax.
struct ManySmallBagsParams {
  int num_jobs = 120;
  int num_machines = 10;
  double min_size = 0.05;
  double max_size = 1.0;
  std::uint64_t seed = 1;
};
model::Instance many_small_bags(const ManySmallBagsParams& params);

// ---------------------------------------------------------------------------
// Two-point family: sizes drawn from {small_size, large_size} — few distinct
// sizes keep the EPTAS pattern space small, the regime where the MILP stage
// is exercised hardest relative to its size.
struct TwoPointParams {
  int num_jobs = 80;
  int num_machines = 8;
  int num_bags = 16;
  double small_size = 0.15;
  double large_size = 0.55;
  double large_fraction = 0.3;
  std::uint64_t seed = 1;
};
model::Instance two_point(const TwoPointParams& params);

// ---------------------------------------------------------------------------
// Replica family (the paper's intro motivation): `tasks` tasks, each with
// `replicas` copies that must run on distinct machines — all copies of a task
// form one bag. Sizes per task are uniform in [min_size, max_size]; replicas
// of one task share the size.
struct ReplicaParams {
  int tasks = 20;
  int replicas = 3;
  int num_machines = 8;
  double min_size = 0.1;
  double max_size = 0.6;
  std::uint64_t seed = 1;
};
model::Instance replica(const ReplicaParams& params);

// ---------------------------------------------------------------------------
// Mixed family: explicit large/medium/small strata relative to `target`,
// exercising every classification branch of the EPTAS.
struct MixedParams {
  int num_machines = 10;
  int num_bags = 20;
  int large_jobs = 12;    ///< sizes in [0.3, 0.7] * target
  int medium_jobs = 20;   ///< sizes in [0.05, 0.15] * target
  int small_jobs = 60;    ///< sizes in [0.005, 0.04] * target
  double target = 1.0;
  std::uint64_t seed = 1;
};
model::Instance mixed(const MixedParams& params);

// ---------------------------------------------------------------------------
// Named family dispatch used by sweeping benchmarks: family is one of
// "uniform", "planted", "figure1", "bagheavy", "smallbags", "twopoint",
// "replica", "mixed" with default parameters scaled to (n, m, seed).
model::Instance by_name(const std::string& family, int num_jobs,
                        int num_machines, std::uint64_t seed);
std::vector<std::string> family_names();

}  // namespace bagsched::gen
