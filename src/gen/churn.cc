#include "gen/churn.h"

#include <algorithm>
#include <cmath>

#include "util/prng.h"

namespace bagsched::gen {

namespace {

/// Events per step: uniform on [0, 2*rate], so the expectation is `rate`
/// without dragging in a Poisson sampler.
int event_count(util::Xoshiro256& rng, double rate) {
  const auto cap = static_cast<std::int64_t>(std::llround(2.0 * rate));
  if (cap <= 0) return 0;
  return static_cast<int>(rng.uniform_int(0, cap));
}

}  // namespace

ChurnTrace churn_trace(const ChurnParams& params) {
  ChurnTrace trace;
  UniformParams initial;
  initial.num_jobs = params.num_jobs;
  initial.num_machines = params.num_machines;
  initial.num_bags = params.num_bags;
  initial.min_size = params.min_size;
  initial.max_size = params.max_size;
  initial.seed = params.seed;
  trace.initial = uniform(initial);

  util::Xoshiro256 rng(params.seed ^ 0xc0ffee5eedULL);
  model::Instance current = trace.initial;
  const int min_jobs = std::max(1, params.num_jobs / 4);
  const int min_machines = std::max(1, params.num_machines / 2);

  for (int step = 0; step < params.steps; ++step) {
    model::Delta delta;

    // --- machines: at most one join and one failure per step --------------
    if (rng.bernoulli(params.machine_join_prob)) delta.machines_added = 1;
    const bool try_fail = rng.bernoulli(params.machine_fail_prob);
    if (try_fail && current.num_machines() + delta.machines_added - 1 >=
                        min_machines) {
      delta.failed_machines.push_back(static_cast<model::MachineId>(
          rng.index(static_cast<std::size_t>(current.num_machines()))));
    }
    int post_machines = current.num_machines() + delta.machines_added -
                        static_cast<int>(delta.failed_machines.size());

    // --- departures: distinct random jobs, keeping a workload floor -------
    const int departures = std::min(
        event_count(rng, params.departures_per_step),
        std::max(0, current.num_jobs() - min_jobs));
    std::vector<model::JobId> pool(
        static_cast<std::size_t>(current.num_jobs()));
    for (model::JobId job = 0; job < current.num_jobs(); ++job) {
      pool[static_cast<std::size_t>(job)] = job;
    }
    rng.shuffle(pool);
    delta.departures.assign(pool.begin(), pool.begin() + departures);

    // Bag occupancy after the departures — the feasibility budget for this
    // step's machine failure and arrivals.
    std::vector<int> occupancy(static_cast<std::size_t>(current.num_bags()),
                               0);
    {
      std::vector<char> departs(
          static_cast<std::size_t>(current.num_jobs()), 0);
      for (const model::JobId job : delta.departures) {
        departs[static_cast<std::size_t>(job)] = 1;
      }
      for (model::JobId job = 0; job < current.num_jobs(); ++job) {
        if (!departs[static_cast<std::size_t>(job)]) {
          ++occupancy[static_cast<std::size_t>(current.job(job).bag)];
        }
      }
    }
    // A failure that would strand a full bag is suppressed.
    if (!delta.failed_machines.empty()) {
      const int fullest =
          occupancy.empty()
              ? 0
              : *std::max_element(occupancy.begin(), occupancy.end());
      if (fullest > post_machines) {
        delta.failed_machines.clear();
        post_machines = current.num_machines() + delta.machines_added;
      }
    }

    // --- arrivals: feasible bags only; sometimes open a fresh bag ---------
    const int arrivals = event_count(rng, params.arrivals_per_step);
    int new_bags = 0;
    for (int k = 0; k < arrivals; ++k) {
      model::JobArrival arrival;
      arrival.size = rng.uniform_real(params.min_size, params.max_size);
      std::vector<model::BagId> open;
      for (model::BagId bag = 0;
           bag < static_cast<model::BagId>(occupancy.size()); ++bag) {
        if (occupancy[static_cast<std::size_t>(bag)] < post_machines) {
          open.push_back(bag);
        }
      }
      if (open.empty() || rng.bernoulli(0.1)) {
        arrival.bag =
            static_cast<model::BagId>(current.num_bags() + new_bags);
        ++new_bags;
        occupancy.push_back(1);
      } else {
        arrival.bag = open[rng.index(open.size())];
        ++occupancy[static_cast<std::size_t>(arrival.bag)];
      }
      delta.arrivals.push_back(arrival);
    }

    // --- resizes: surviving jobs drift multiplicatively -------------------
    const int resizes = event_count(rng, params.resizes_per_step);
    std::vector<char> taken(static_cast<std::size_t>(current.num_jobs()),
                            0);
    for (const model::JobId job : delta.departures) {
      taken[static_cast<std::size_t>(job)] = 1;
    }
    for (int k = 0; k < resizes; ++k) {
      // Rejection-sample a free survivor; give up after a few tries so a
      // tiny instance cannot stall the generator.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto job = static_cast<model::JobId>(
            rng.index(static_cast<std::size_t>(current.num_jobs())));
        if (taken[static_cast<std::size_t>(job)]) continue;
        taken[static_cast<std::size_t>(job)] = 1;
        const double factor = rng.uniform_real(1.0 / (1.0 + params.size_drift),
                                               1.0 + params.size_drift);
        delta.resizes.push_back(
            model::JobResize{job, current.job(job).size * factor});
        break;
      }
    }

    current = model::apply_delta(current, delta);
    trace.deltas.push_back(std::move(delta));
  }
  return trace;
}

}  // namespace bagsched::gen
