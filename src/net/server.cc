#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "api/serialize.h"
#include "net/framing.h"
#include "net/metrics.h"
#include "persist/journal.h"
#include "util/fault.h"

namespace bagsched::net {

namespace detail {

/// The worker-thread → event-loop bridge for one connection. Progress
/// callbacks append serialized frames under the mutex; the loop swaps them
/// out in pump_sink(). `alive` goes false when the connection closes, so a
/// callback for an orphaned solve drops its frame instead of writing into
/// a dead connection (or a reused fd).
struct Sink {
  std::mutex mutex;
  std::vector<std::string> frames;
  std::vector<std::string> finished;  ///< client ids whose request resolved
  /// Ids escalated to a "timeout" error by the budget watchdog: their
  /// terminal frame was already sent, so any late frames from the solve
  /// are dropped (the id leaves the set when its Finished event arrives).
  std::unordered_set<std::string> suppressed;
  bool alive = true;
  int wake_fd = -1;
};

/// One in-flight request on a connection: the service handle plus, when a
/// request budget is configured, the instant past which a still-unresolved
/// solve is escalated to a terminal "timeout" error.
struct Inflight {
  api::SolveHandle handle;
  std::optional<std::chrono::steady_clock::time_point> escalate_at;
};

struct Connection {
  explicit Connection(std::size_t max_frame_bytes)
      : framer(max_frame_bytes) {}

  int fd = -1;
  std::shared_ptr<Sink> sink;
  LineFramer framer;
  std::string out;            ///< outbound bytes, [out_offset, size) unsent
  std::size_t out_offset = 0;
  /// Client-assigned id → the in-flight request. Entries leave when the
  /// terminal frame is pumped, via cancellation on disconnect, or via
  /// stuck-solver escalation.
  std::unordered_map<std::string, Inflight> inflight;
  bool saw_frame = false;  ///< an NDJSON frame arrived (disables HTTP sniff)
  bool greeted = false;    ///< hello frame sent (first NDJSON frame only —
                           ///< HTTP probes must not see a stray JSON line)
  /// Sessions opened by this connection; closed with it on disconnect.
  std::unordered_set<std::uint64_t> sessions;
  bool http = false;       ///< HTTP mode: first line consumed, rest ignored
  bool close_after_flush = false;
  bool half_closed = false;  ///< SHUT_WR sent, waiting for the peer's EOF
  bool dead = false;         ///< closed; reaped at the end of the iteration
};

}  // namespace detail

using detail::Connection;
using detail::Inflight;
using detail::Sink;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool is_rejection(const api::SolveResult& result) {
  return result.status == api::SolveStatus::Cancelled &&
         result.error.rfind("rejected:", 0) == 0;
}

/// First whitespace-separated token after the method of an HTTP request
/// line ("GET /metrics HTTP/1.0" → "/metrics").
std::string http_target(const std::string& line) {
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string::npos) return "";
  const std::size_t target_start =
      line.find_first_not_of(' ', method_end + 1);
  if (target_start == std::string::npos) return "";
  return line.substr(target_start,
                     line.find(' ', target_start) - target_start);
}

}  // namespace

SchedServer::SchedServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {
  recovering_.store(config_.start_recovering, std::memory_order_release);
}

void SchedServer::set_ready() {
  recovering_.store(false, std::memory_order_release);
  wake();
}

void SchedServer::adopt_orphans(const std::vector<std::uint64_t>& sessions) {
  {
    std::lock_guard<std::mutex> lock(adopted_mutex_);
    adopted_orphans_.insert(adopted_orphans_.end(), sessions.begin(),
                            sessions.end());
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    counters_.sessions_orphaned += sessions.size();
  }
  wake();
}

SchedServer::~SchedServer() {
  stop();
  wait();
  if (listen_fd_ != -1) ::close(listen_fd_);  // start() threw / never ran
  if (wake_read_fd_ != -1) ::close(wake_read_fd_);
  if (wake_write_fd_ != -1) ::close(wake_write_fd_);
}

void SchedServer::start() {
  if (loop_thread_.joinable()) {
    throw std::logic_error("SchedServer: already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address \"" + config_.bind_address +
                             "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 256) != 0) {
    const std::string message =
        std::string("bind ") + config_.bind_address + ":" +
        std::to_string(config_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(message);
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_size);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  int wake_fds[2];
  if (::pipe(wake_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = wake_fds[0];
  wake_write_fd_ = wake_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  loop_thread_ = std::thread([this] { loop(); });
}

void SchedServer::request_drain() {
  drain_.store(true, std::memory_order_relaxed);
  wake();
}

void SchedServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake();
}

void SchedServer::wait() {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

ServerCounters SchedServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void SchedServer::wake() {
  if (wake_write_fd_ == -1) return;
  const char byte = 1;
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void SchedServer::loop() {
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> cancel_at;  ///< drain grace expiry
  std::optional<Clock::time_point> force_close_at;
  bool drain_cancelled = false;
  std::vector<pollfd> pollfds;
  std::vector<Connection*> polled;

  for (;;) {
    const bool stopping = stop_.load(std::memory_order_relaxed);
    const bool draining =
        stopping || drain_.load(std::memory_order_relaxed);
    if (draining && listen_fd_ != -1) {
      // Adopt the kernel accept queue before the listener closes: those
      // peers completed their handshake pre-drain, and closing the
      // listener would RST them — including a health probe whose GET is
      // in flight. Accepted here, they land in the not-yet-spoken spare
      // of the drain sweep below and get their 503 (force_close_at
      // bounds ones that never speak).
      accept_ready();
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (draining && !cancel_at.has_value()) {
      const auto now = Clock::now();
      cancel_at = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                config_.drain_grace_seconds));
      // Clients that never read their Finished events must not pin the
      // drain forever; past this everything force-closes.
      force_close_at =
          *cancel_at + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(5.0));
    }
    if ((stopping || (draining && Clock::now() >= *cancel_at)) &&
        !drain_cancelled) {
      for (const auto& connection : connections_) {
        for (auto& [id, entry] : connection->inflight) entry.handle.cancel();
      }
      drain_cancelled = true;
    }

    // Orphaned sessions: close the expired ones; a drain closes them all
    // immediately (nobody may resume into a draining server).
    sweep_orphans(/*close_all=*/draining);

    for (const auto& connection : connections_) {
      if (!connection->dead) pump_sink(*connection);
    }
    if (config_.request_budget_seconds > 0.0) escalate_stuck();
    if (stopping) break;
    for (const auto& connection : connections_) {
      if (!connection->dead) flush(*connection);
    }
    if (draining) {
      const bool force = Clock::now() >= *force_close_at;
      for (const auto& connection : connections_) {
        if (connection->dead) continue;
        if (force) {
          close_connection(*connection);
          continue;
        }
        // Retire idle connections through the half-close path: an abrupt
        // close would RST a client whose submit bytes are still in flight
        // and could discard frames it has not read yet. After SHUT_WR the
        // peer reads everything plus EOF and closes; its EOF fully closes
        // the connection (force_close_at bounds peers that never do).
        // Connections that have not spoken yet are spared: they may be
        // health probes whose `GET /healthz` is still in flight, and the
        // half-close would discard the request before the 503 could answer
        // it. force_close_at bounds them too.
        const bool flushed =
            connection->out_offset >= connection->out.size();
        if ((connection->saw_frame || connection->http) &&
            connection->inflight.empty() && flushed &&
            !connection->close_after_flush) {
          connection->close_after_flush = true;
          flush(*connection);  // out is empty: half-closes immediately
        }
      }
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const auto& c) { return c->dead; }),
        connections_.end());
    if (draining && connections_.empty()) break;

    pollfds.clear();
    polled.clear();
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    if (listen_fd_ != -1) pollfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& connection : connections_) {
      short events = POLLIN;
      if (connection->out_offset < connection->out.size()) {
        events |= POLLOUT;
      }
      pollfds.push_back({connection->fd, events, 0});
      polled.push_back(connection.get());
    }
    int timeout_ms = draining ? 50 : -1;
    // Orphan expiry needs a heartbeat: an orphan's old connection is gone,
    // so no socket event will ever fire for it.
    if (timeout_ms < 0 && !orphaned_sessions_.empty()) timeout_ms = 50;
    if (timeout_ms < 0 && config_.request_budget_seconds > 0.0) {
      // Budget escalation needs a heartbeat even when no socket stirs:
      // a stuck solver produces no events to wake the loop with.
      for (const auto& connection : connections_) {
        if (!connection->dead && !connection->inflight.empty()) {
          timeout_ms = 50;
          break;
        }
      }
    }
    const int ready = ::poll(pollfds.data(), pollfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable; exit loop
    if (ready <= 0) continue;

    std::size_t index = 0;
    if (pollfds[index].revents & POLLIN) {
      char buffer[256];
      while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
      }
    }
    ++index;
    if (listen_fd_ != -1) {
      if (pollfds[index].revents & (POLLIN | POLLERR)) accept_ready();
      ++index;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Connection& connection = *polled[i];
      const short revents = pollfds[index + i].revents;
      if (connection.dead || revents == 0) continue;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        read_ready(connection);
      }
      if (!connection.dead && (revents & POLLOUT)) flush(connection);
    }
  }

  // Exit: cancel whatever is still attached, kill every sink so late
  // worker-thread events are dropped, and wait for the service to go idle
  // — after that no progress callback can fire, so the wake pipe can be
  // closed safely by the destructor.
  for (const auto& connection : connections_) {
    if (!connection->dead) {
      close_connection(*connection, /*count_orphans=*/false);
    }
  }
  connections_.clear();
  sweep_orphans(/*close_all=*/true);
  if (listen_fd_ != -1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  service_.wait_idle();
}

/// Budget watchdog (loop thread): a request still unresolved past its
/// escalation instant gets a terminal "timeout" error frame; the solve is
/// cancelled and its late result suppressed at the sink, so the client
/// sees exactly one terminal frame per request.
void SchedServer::escalate_stuck() {
  const auto now = std::chrono::steady_clock::now();
  for (const auto& connection : connections_) {
    if (connection->dead) continue;
    for (auto it = connection->inflight.begin();
         it != connection->inflight.end();) {
      if (!it->second.escalate_at.has_value() ||
          now < *it->second.escalate_at) {
        ++it;
        continue;
      }
      const std::string& id = it->first;
      // The terminal frame may already be queued on the sink (pushed after
      // this iteration's pump): then the request DID resolve and the pump
      // will retire the entry — escalating too would send two terminal
      // frames. The check and the suppression insert share the sink mutex
      // with the callback's push, so there is no window between them.
      bool already_finished = false;
      {
        std::lock_guard<std::mutex> lock(connection->sink->mutex);
        already_finished =
            std::find(connection->sink->finished.begin(),
                      connection->sink->finished.end(),
                      id) != connection->sink->finished.end();
        if (!already_finished) connection->sink->suppressed.insert(id);
      }
      if (already_finished) {
        ++it;
        continue;
      }
      it->second.handle.cancel();
      send_frame(*connection,
                 error_frame("timeout",
                             "request exceeded its " +
                                 std::to_string(
                                     config_.request_budget_seconds) +
                                 "s budget",
                             &id));
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.request_timeouts;
      }
      it = connection->inflight.erase(it);
    }
  }
}

void SchedServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error; poll again
    }
    // Injected accept failure: the connection is dropped before setup, as
    // if the kernel ran out of descriptors mid-accept.
    if (BAGSCHED_FAULT("net.server.accept")) {
      ::close(fd);
      continue;
    }
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connection =
        std::make_unique<Connection>(config_.max_frame_bytes);
    connection->fd = fd;
    connection->sink = std::make_shared<Sink>();
    connection->sink->wake_fd = wake_write_fd_;
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.connections_accepted;
      ++counters_.connections_active;
    }
    connections_.push_back(std::move(connection));
  }
}

void SchedServer::read_ready(Connection& connection) {
  // Injected read error: the connection drops as if recv returned
  // ECONNRESET; in-flight solves are cancelled via close_connection.
  if (BAGSCHED_FAULT("net.server.read")) {
    close_connection(connection);
    return;
  }
  char buffer[16384];
  for (;;) {
    // Injected short read: bytes trickle in one at a time, stressing the
    // framing reassembly without violating the protocol.
    const std::size_t cap =
        BAGSCHED_FAULT("net.server.read.short") ? 1 : sizeof(buffer);
    const ssize_t n = ::recv(connection.fd, buffer, cap, 0);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        counters_.bytes_in += static_cast<std::uint64_t>(n);
      }
      connection.framer.feed(buffer, static_cast<std::size_t>(n));
      while (!connection.dead && !connection.close_after_flush) {
        const auto line = connection.framer.next();
        if (!line.has_value()) break;
        if (line->empty()) continue;
        handle_line(connection, *line);
      }
      if (!connection.dead && connection.framer.overflowed() &&
          !connection.close_after_flush) {
        {
          std::lock_guard<std::mutex> lock(counters_mutex_);
          ++counters_.oversized_frames;
        }
        send_frame(connection,
                   error_frame("oversized_frame",
                               "frame exceeds " +
                                   std::to_string(config_.max_frame_bytes) +
                                   " bytes; closing"));
        connection.close_after_flush = true;
      }
      continue;
    }
    if (n == 0) {
      close_connection(connection);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(connection);
    return;
  }
  if (!connection.dead) flush(connection);
}

void SchedServer::flush(Connection& connection) {
  // Injected write error: the peer is treated as gone (EPIPE).
  if (connection.out_offset < connection.out.size() &&
      BAGSCHED_FAULT("net.server.write")) {
    close_connection(connection);
    return;
  }
  while (connection.out_offset < connection.out.size()) {
    // Injected short write: one byte leaves per send, forcing the partial-
    // write resume path that out_offset exists for.
    const std::size_t cap = BAGSCHED_FAULT("net.server.write.short")
                                ? 1
                                : connection.out.size() -
                                      connection.out_offset;
    const ssize_t n = ::send(
        connection.fd, connection.out.data() + connection.out_offset,
        cap, MSG_NOSIGNAL);
    if (n > 0) {
      connection.out_offset += static_cast<std::size_t>(n);
      std::lock_guard<std::mutex> lock(counters_mutex_);
      counters_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(connection);
    return;
  }
  if (connection.out_offset >= connection.out.size()) {
    connection.out.clear();
    connection.out_offset = 0;
    if (connection.close_after_flush && !connection.half_closed) {
      // Half-close so the peer reads everything we sent; the connection
      // fully closes when its EOF arrives (or at drain force-close).
      ::shutdown(connection.fd, SHUT_WR);
      connection.half_closed = true;
    }
  } else if (connection.out_offset > connection.out.size() / 2) {
    connection.out.erase(0, connection.out_offset);
    connection.out_offset = 0;
  }
}

void SchedServer::pump_sink(Connection& connection) {
  std::vector<std::string> frames;
  std::vector<std::string> finished;
  {
    std::lock_guard<std::mutex> lock(connection.sink->mutex);
    frames.swap(connection.sink->frames);
    finished.swap(connection.sink->finished);
  }
  for (auto& frame : frames) {
    connection.out += frame;
    connection.out += '\n';
  }
  if (!frames.empty()) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    counters_.frames_out += frames.size();
  }
  for (const auto& id : finished) connection.inflight.erase(id);
  if (connection.out.size() - connection.out_offset >
      config_.max_output_bytes) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.slow_client_disconnects;
    }
    close_connection(connection);
  }
}

/// Close orphaned sessions whose linger expired — or all of them when the
/// loop is draining or exiting. Loop thread only.
void SchedServer::sweep_orphans(bool close_all) {
  {
    std::lock_guard<std::mutex> lock(adopted_mutex_);
    if (!adopted_orphans_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (const std::uint64_t session : adopted_orphans_) {
        orphaned_sessions_.emplace(session, now);
      }
      adopted_orphans_.clear();
    }
  }
  if (orphaned_sessions_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  const auto linger =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.session_linger_seconds));
  std::size_t expired = 0;
  for (auto it = orphaned_sessions_.begin();
       it != orphaned_sessions_.end();) {
    if (close_all || now - it->second >= linger) {
      service_.close_session(it->first);
      ++expired;
      it = orphaned_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    counters_.orphans_expired += expired;
  }
}

void SchedServer::close_connection(Connection& connection,
                                   bool count_orphans) {
  if (connection.dead) return;
  {
    std::lock_guard<std::mutex> lock(connection.sink->mutex);
    connection.sink->alive = false;
    connection.sink->wake_fd = -1;
    connection.sink->frames.clear();
    connection.sink->finished.clear();
  }
  std::size_t orphans = 0;
  for (auto& [id, entry] : connection.inflight) {
    entry.handle.cancel();
    ++orphans;
  }
  connection.inflight.clear();
  // Sessions: without a linger they are connection-scoped and die here,
  // the pre-v3 behaviour. With one, a live server parks them as orphans so
  // the client can reconnect and resume_session inside the window; a
  // draining server closes them anyway (resumes are refused while
  // draining, so parking would only delay the exit).
  const bool park = config_.session_linger_seconds > 0.0 && !draining();
  std::size_t parked = 0;
  if (park && !connection.sessions.empty()) {
    const auto now = std::chrono::steady_clock::now();
    for (const std::uint64_t session : connection.sessions) {
      orphaned_sessions_.emplace(session, now);
      ++parked;
    }
  } else {
    for (const std::uint64_t session : connection.sessions) {
      service_.close_session(session);
    }
  }
  connection.sessions.clear();
  ::close(connection.fd);
  connection.fd = -1;
  connection.dead = true;
  std::lock_guard<std::mutex> lock(counters_mutex_);
  if (count_orphans) counters_.disconnect_cancels += orphans;
  counters_.sessions_orphaned += parked;
  --counters_.connections_active;
}

void SchedServer::send_frame(Connection& connection, std::string frame) {
  connection.out += frame;
  connection.out += '\n';
  std::lock_guard<std::mutex> lock(counters_mutex_);
  ++counters_.frames_out;
}

void SchedServer::handle_line(Connection& connection,
                              const std::string& line) {
  if (connection.http) return;  // ignore trailing HTTP header lines
  if (!connection.saw_frame &&
      (line.rfind("GET ", 0) == 0 || line.rfind("HEAD ", 0) == 0 ||
       line.rfind("POST ", 0) == 0)) {
    handle_http(connection, line);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.frames_in;
  }
  connection.saw_frame = true;
  // Greeting: sent once per NDJSON connection, before the first frame's
  // response. Deferred to here (not accept time) so HTTP probes on the
  // same port never see a stray JSON line ahead of their response.
  if (!connection.greeted) {
    connection.greeted = true;
    send_frame(connection, hello_frame());
  }
  util::Json frame;
  try {
    frame = util::Json::parse(line);
  } catch (const std::exception& error) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.parse_errors;
    }
    send_frame(connection, error_frame("parse_error", error.what()));
    return;
  }
  if (!frame.is_object()) {
    send_frame(connection,
               error_frame("bad_request", "frame must be a JSON object"));
    return;
  }
  // Version gate (DESIGN.md §5): a frame from the future is rejected with
  // a structured error instead of being half-understood. Undeclared or
  // older versions process normally — the v2 additions are additive.
  if (const util::Json* version = frame.find("proto_version")) {
    long long declared = -1;
    try {
      declared = version->as_int();
    } catch (const std::exception&) {
      send_frame(connection,
                 error_frame("bad_request",
                             "proto_version must be an integer"));
      return;
    }
    if (declared > kProtoVersion) {
      {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        ++counters_.version_rejects;
      }
      send_frame(connection,
                 error_frame("unsupported_version",
                             "frame declares proto_version " +
                                 std::to_string(declared) +
                                 " but this server speaks " +
                                 std::to_string(kProtoVersion)));
      return;
    }
  }
  const std::string type = frame.string_or("type", "");
  // Recovering gate: while the journal replays, only ping and stats are
  // served — everything else would race the session restoration. The error
  // is structured so clients can tell "retry shortly" from a real refusal.
  if (recovering() && type != "ping" && type != "stats") {
    std::string id;
    if (const util::Json* id_value = frame.find("id")) {
      try {
        id = client_id_text(*id_value);
      } catch (const std::exception&) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.recovering_rejects;
    }
    send_frame(connection,
               error_frame("recovering",
                           "server is replaying its journal; retry shortly",
                           id.empty() ? nullptr : &id));
    return;
  }
  if (type == "submit") {
    handle_submit(connection, frame);
  } else if (type == "cancel") {
    handle_cancel(connection, frame);
  } else if (type == "open_session") {
    handle_open_session(connection, frame);
  } else if (type == "delta") {
    handle_delta(connection, frame);
  } else if (type == "close_session") {
    handle_close_session(connection, frame);
  } else if (type == "resume_session") {
    handle_resume_session(connection, frame);
  } else if (type == "stats") {
    send_frame(connection, stats_frame(service_.stats(),
                                       service_.cache_stats(), counters()));
  } else if (type == "ping") {
    send_frame(connection, pong_frame());
  } else {
    send_frame(connection,
               error_frame("bad_request",
                           "unknown frame type \"" + type + "\""));
  }
}

void SchedServer::handle_http(Connection& connection,
                              const std::string& line) {
  connection.http = true;
  connection.close_after_flush = true;
  const std::string target = http_target(line);
  std::string response;
  if (line.rfind("GET ", 0) != 0) {
    response = http_response(400, "text/plain",
                             "only GET is supported on this port\n");
  } else if (target == "/metrics") {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.metrics_requests;
    }
    std::optional<persist::JournalStats> journal;
    if (config_.service.journal != nullptr) {
      journal = config_.service.journal->stats();
    }
    response = http_response(
        200, "text/plain; version=0.0.4",
        prometheus_text(service_.stats(), service_.cache_stats(), counters(),
                        journal.has_value() ? &*journal : nullptr));
  } else if (target == "/healthz") {
    // Liveness + readiness on the serving port itself: a response at all
    // means the event loop is alive; 200 means submits are accepted, 503
    // that the server is draining (stop routing here) or still recovering
    // (journal replay; route back once the body flips to "ok").
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.healthz_requests;
    }
    response = recovering()
                   ? http_response(503, "text/plain", "recovering\n")
               : draining()
                   ? http_response(503, "text/plain", "draining\n")
                   : http_response(200, "text/plain", "ok\n");
  } else {
    response = http_response(404, "text/plain",
                             "unknown path; try /metrics or /healthz\n");
  }
  connection.out += response;
  flush(connection);
}

void SchedServer::handle_submit(Connection& connection,
                                const util::Json& frame) {
  const util::Json* id_value = frame.find("id");
  if (id_value == nullptr) {
    send_frame(connection,
               error_frame("bad_request", "submit requires an \"id\""));
    return;
  }
  std::string id;
  try {
    id = client_id_text(*id_value);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what()));
    return;
  }
  if (connection.inflight.count(id) != 0) {
    send_frame(connection,
               error_frame("duplicate_id",
                           "id \"" + id +
                               "\" is already in flight on this connection",
                           &id));
    return;
  }
  if (draining()) {
    send_frame(connection,
               error_frame("draining",
                           "server is draining and accepts no new submits",
                           &id));
    return;
  }
  const util::Json* request_value = frame.find("request");
  if (request_value == nullptr) {
    send_frame(connection,
               error_frame("bad_request", "submit requires a \"request\"",
                           &id));
    return;
  }
  api::SolveRequest request;
  try {
    request = api::solve_request_from_json(*request_value);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what(), &id));
    return;
  }
  const bool want_progress = frame.bool_or("progress", false);
  const bool want_schedule = frame.bool_or("schedule", true);

  // Overload brown-out: with the queue-wait EWMA past the threshold, a
  // full solve would only deepen the backlog. Degrade to the cheap bag-LPT
  // heuristic — an answer now beats a better answer after the queue melts
  // — and flag every frame of this request "degraded" on the wire.
  bool degraded = false;
  if (config_.brownout_queue_latency_seconds > 0.0 &&
      service_.stats().queue_wait_ewma_seconds >
          config_.brownout_queue_latency_seconds) {
    request.solvers = {"bag-lpt"};
    degraded = true;
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.brownouts;
  }

  // Per-request budget: clamp the deadline so the service watchdog cancels
  // cooperatively at the budget; escalate_stuck() handles solvers that
  // ignore the cancel past the extra grace.
  std::optional<std::chrono::steady_clock::time_point> escalate_at;
  if (config_.request_budget_seconds > 0.0) {
    const auto budget_deadline =
        api::deadline_in(config_.request_budget_seconds);
    if (!request.deadline.has_value() ||
        *request.deadline > budget_deadline) {
      request.deadline = budget_deadline;
    }
    escalate_at =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config_.request_budget_seconds +
                                          config_.stuck_grace_seconds));
  }

  // The callback runs on service worker threads (and, for Queued, on this
  // thread inside submit). It serializes the frame outside the sink lock,
  // drops it when the connection is gone or the id was escalated to a
  // timeout, and wakes the poll loop.
  std::shared_ptr<Sink> sink = connection.sink;
  request.on_progress = [sink, id, want_progress, want_schedule,
                         degraded](const api::ProgressEvent& event) {
    const bool terminal = event.kind == api::ProgressKind::Finished;
    if (!terminal && !want_progress) return;
    std::string frame_text;
    if (terminal && event.result != nullptr && is_rejection(*event.result)) {
      frame_text = error_frame("rejected", event.result->error, &id);
    } else {
      frame_text = event_frame(id, event, want_schedule, degraded);
    }
    int wake_fd = -1;
    {
      std::lock_guard<std::mutex> lock(sink->mutex);
      if (!sink->alive) return;
      const auto suppressed = sink->suppressed.find(id);
      if (suppressed != sink->suppressed.end()) {
        // Escalated: the "timeout" error was this request's terminal
        // frame. Late events are dropped; the Finished one retires the
        // suppression so the id can be reused.
        if (terminal) sink->suppressed.erase(suppressed);
        return;
      }
      sink->frames.push_back(std::move(frame_text));
      if (terminal) sink->finished.push_back(id);
      wake_fd = sink->wake_fd;
    }
    if (wake_fd != -1) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
    }
  };
  try {
    api::SolveHandle handle = service_.submit(std::move(request));
    // A backpressure rejection resolved synchronously inside submit(): its
    // terminal frame and finished-id are already queued on the sink, and
    // the pump after this dispatch erases the entry again.
    connection.inflight.emplace(id, Inflight{std::move(handle), escalate_at});
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.submits;
  } catch (const std::invalid_argument& error) {
    const std::string code = std::string(error.what()).find("solver") !=
                                     std::string::npos
                                 ? "unknown_solver"
                                 : "bad_request";
    send_frame(connection, error_frame(code, error.what(), &id));
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("draining", error.what(), &id));
  }
  pump_sink(connection);
}

void SchedServer::handle_cancel(Connection& connection,
                                const util::Json& frame) {
  const util::Json* id_value = frame.find("id");
  std::string id;
  try {
    if (id_value == nullptr) {
      throw std::runtime_error("cancel requires an \"id\"");
    }
    id = client_id_text(*id_value);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what()));
    return;
  }
  const auto it = connection.inflight.find(id);
  if (it == connection.inflight.end()) {
    send_frame(connection,
               error_frame("unknown_id",
                           "id \"" + id + "\" is not in flight", &id));
    return;
  }
  it->second.handle.cancel();
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.cancels;
  }
  send_frame(connection, ok_frame("cancel", id));
}

void SchedServer::handle_open_session(Connection& connection,
                                      const util::Json& frame) {
  const util::Json* id_value = frame.find("id");
  if (id_value == nullptr) {
    send_frame(connection,
               error_frame("bad_request", "open_session requires an \"id\""));
    return;
  }
  std::string id;
  try {
    id = client_id_text(*id_value);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what()));
    return;
  }
  if (connection.inflight.count(id) != 0) {
    send_frame(connection,
               error_frame("duplicate_id",
                           "id \"" + id +
                               "\" is already in flight on this connection",
                           &id));
    return;
  }
  if (draining()) {
    send_frame(connection,
               error_frame("draining",
                           "server is draining and opens no new sessions",
                           &id));
    return;
  }
  const util::Json* request_value = frame.find("request");
  if (request_value == nullptr) {
    send_frame(connection,
               error_frame("bad_request",
                           "open_session requires a \"request\"", &id));
    return;
  }
  api::SolveRequest request;
  online::SessionOptions tuning;
  try {
    request = api::solve_request_from_json(*request_value);
    if (const util::Json* regret = frame.find("regret_bound")) {
      tuning.regret_bound = regret->as_number();
      if (!(tuning.regret_bound >= 0.0)) {
        throw std::runtime_error("regret_bound must be >= 0");
      }
    }
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what(), &id));
    return;
  }
  const bool want_progress = frame.bool_or("progress", false);
  const bool want_schedule = frame.bool_or("schedule", true);
  std::shared_ptr<Sink> sink = connection.sink;
  request.on_progress = [sink, id, want_progress,
                         want_schedule](const api::ProgressEvent& event) {
    const bool terminal = event.kind == api::ProgressKind::Finished;
    if (!terminal && !want_progress) return;
    const std::string frame_text =
        event_frame(id, event, want_schedule);
    int wake_fd = -1;
    {
      std::lock_guard<std::mutex> lock(sink->mutex);
      if (!sink->alive) return;
      sink->frames.push_back(frame_text);
      if (terminal) sink->finished.push_back(id);
      wake_fd = sink->wake_fd;
    }
    if (wake_fd != -1) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
    }
  };
  try {
    api::SchedulingService::SessionOpening opening =
        service_.open_session(std::move(request), std::move(tuning));
    // The ok frame (with the assigned session id and its epoch token)
    // precedes every event of the initial solve: it goes straight to the
    // outbound buffer while the events wait on the sink until the pump
    // below.
    send_frame(connection, session_ok_frame("open_session", id,
                                            opening.session, opening.epoch,
                                            /*revision=*/0));
    connection.sessions.insert(opening.session);
    // Session ops ignore cancellation tokens, so no timeout escalation.
    connection.inflight.emplace(
        id, Inflight{std::move(opening.initial), std::nullopt});
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.session_opens;
  } catch (const std::invalid_argument& error) {
    const std::string code = std::string(error.what()).find("solver") !=
                                     std::string::npos
                                 ? "unknown_solver"
                                 : "bad_request";
    send_frame(connection, error_frame(code, error.what(), &id));
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what(), &id));
  }
  pump_sink(connection);
}

void SchedServer::handle_delta(Connection& connection,
                               const util::Json& frame) {
  const util::Json* id_value = frame.find("id");
  if (id_value == nullptr) {
    send_frame(connection,
               error_frame("bad_request", "delta requires an \"id\""));
    return;
  }
  std::string id;
  try {
    id = client_id_text(*id_value);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what()));
    return;
  }
  if (connection.inflight.count(id) != 0) {
    send_frame(connection,
               error_frame("duplicate_id",
                           "id \"" + id +
                               "\" is already in flight on this connection",
                           &id));
    return;
  }
  if (draining()) {
    send_frame(connection,
               error_frame("draining",
                           "server is draining and accepts no new deltas",
                           &id));
    return;
  }
  api::DeltaRequest request;
  try {
    request = api::delta_request_from_json(frame);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what(), &id));
    return;
  }
  // Ownership check: a connection may only mutate sessions it opened. This
  // also catches ids from closed connections, whose sessions died with them.
  if (connection.sessions.count(request.session) == 0) {
    send_frame(connection,
               error_frame("unknown_session",
                           "session " + std::to_string(request.session) +
                               " is not open on this connection",
                           &id));
    return;
  }
  const bool want_progress = frame.bool_or("progress", false);
  const bool want_schedule = frame.bool_or("schedule", true);
  std::shared_ptr<Sink> sink = connection.sink;
  request.on_progress = [sink, id, want_progress,
                         want_schedule](const api::ProgressEvent& event) {
    const bool terminal = event.kind == api::ProgressKind::Finished;
    if (!terminal && !want_progress) return;
    const std::string frame_text =
        event_frame(id, event, want_schedule);
    int wake_fd = -1;
    {
      std::lock_guard<std::mutex> lock(sink->mutex);
      if (!sink->alive) return;
      sink->frames.push_back(frame_text);
      if (terminal) sink->finished.push_back(id);
      wake_fd = sink->wake_fd;
    }
    if (wake_fd != -1) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
    }
  };
  api::SolveHandle handle = service_.submit(std::move(request));
  connection.inflight.emplace(id, Inflight{std::move(handle), std::nullopt});
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.session_deltas;
  }
  pump_sink(connection);
}

void SchedServer::handle_close_session(Connection& connection,
                                       const util::Json& frame) {
  const util::Json* id_value = frame.find("id");
  std::string id;
  std::uint64_t session = 0;
  try {
    if (id_value == nullptr) {
      throw std::runtime_error("close_session requires an \"id\"");
    }
    id = client_id_text(*id_value);
    const util::Json* session_value = frame.find("session");
    if (session_value == nullptr) {
      throw std::runtime_error("close_session requires a \"session\"");
    }
    const long long raw = session_value->as_int();
    if (raw <= 0) throw std::runtime_error("session must be a positive id");
    session = static_cast<std::uint64_t>(raw);
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what()));
    return;
  }
  if (connection.sessions.erase(session) == 0) {
    send_frame(connection,
               error_frame("unknown_session",
                           "session " + std::to_string(session) +
                               " is not open on this connection",
                           &id));
    return;
  }
  service_.close_session(session);
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.session_closes;
  }
  send_frame(connection, ok_frame("close_session", id, session));
}

void SchedServer::handle_resume_session(Connection& connection,
                                        const util::Json& frame) {
  const util::Json* id_value = frame.find("id");
  std::string id;
  std::uint64_t session = 0;
  std::uint64_t epoch = 0;
  try {
    if (id_value == nullptr) {
      throw std::runtime_error("resume_session requires an \"id\"");
    }
    id = client_id_text(*id_value);
    const util::Json* session_value = frame.find("session");
    if (session_value == nullptr) {
      throw std::runtime_error("resume_session requires a \"session\"");
    }
    const long long raw = session_value->as_int();
    if (raw <= 0) throw std::runtime_error("session must be a positive id");
    session = static_cast<std::uint64_t>(raw);
    const util::Json* epoch_value = frame.find("epoch");
    if (epoch_value == nullptr) {
      throw std::runtime_error("resume_session requires an \"epoch\"");
    }
    // The token is issued as a decimal string (a u64 does not survive a
    // JSON double) but an integer is accepted for hand-written frames.
    if (epoch_value->is_string()) {
      std::size_t consumed = 0;
      epoch = std::stoull(epoch_value->as_string(), &consumed);
      if (consumed != epoch_value->as_string().size()) {
        throw std::runtime_error("epoch must be a decimal string");
      }
    } else {
      epoch = static_cast<std::uint64_t>(epoch_value->as_int());
    }
  } catch (const std::exception& error) {
    send_frame(connection, error_frame("bad_request", error.what(),
                                       id.empty() ? nullptr : &id));
    return;
  }
  const auto reject = [&](const char* code, const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.resume_rejects;
    }
    send_frame(connection, error_frame(code, message, &id));
  };
  if (draining()) {
    reject("draining", "server is draining and resumes no sessions");
    return;
  }
  const std::optional<api::SchedulingService::SessionInfo> info =
      service_.session_info(session);
  if (!info.has_value()) {
    reject("unknown_session", "session " + std::to_string(session) +
                                  " is not open on this server");
    return;
  }
  if (info->epoch != epoch) {
    // A matching id with a foreign epoch means a different lineage (the
    // journal was wiped and the id reissued) — resuming would silently
    // splice two unrelated sessions together.
    reject("stale_epoch", "epoch token does not match session " +
                              std::to_string(session));
    return;
  }
  if (connection.sessions.count(session) != 0) {
    // Already bound here: a resend of a resume whose ok was lost in
    // flight. Re-acknowledge instead of erroring so retries are safe.
    send_frame(connection,
               session_ok_frame("resume_session", id, session, info->epoch,
                                info->revision, info->digest));
    return;
  }
  for (const auto& other : connections_) {
    if (other.get() != &connection && !other->dead &&
        other->sessions.count(session) != 0) {
      reject("session_owned", "session " + std::to_string(session) +
                                  " is bound to another live connection");
      return;
    }
  }
  orphaned_sessions_.erase(session);
  connection.sessions.insert(session);
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.session_resumes;
  }
  send_frame(connection,
             session_ok_frame("resume_session", id, session, info->epoch,
                              info->revision, info->digest));
}

}  // namespace bagsched::net
