// Blocking NDJSON client for sched_server — the reference implementation
// of the wire protocol's client side, used by `instance_tool --connect`,
// tests/test_net.cc and bench_net_throughput.
//
//   auto client = net::Client::connect("127.0.0.1", port);
//   api::SolveResult result = client.solve(request, "job-1",
//                                          /*want_progress=*/true,
//                                          print_progress);
//
// solve() submits, streams the event frames (invoking the progress
// callback for each) and returns the finished result; a structured
// rejection frame comes back as a Cancelled result carrying the server's
// message, any other error frame throws std::runtime_error. The lower
// send_line()/read_frame() layer is exposed for multiplexed use (several
// client-assigned ids in flight on one connection).
//
// Failure reporting is typed: transport problems (unreachable server,
// socket errors, EOF before the result) throw ConnectionError and
// expired connect/read budgets throw TimedOut — both subclasses of
// std::runtime_error, so legacy catch sites keep working. RetryingClient
// layers a RetryPolicy on top: poll-based connect/read timeouts,
// exponential backoff with deterministic jitter, capped attempts, and
// at-most-once resubmission of idempotent requests under the same
// client-assigned id (the server's fingerprint cache and single-flight
// dedup make a resubmitted solve hit instead of re-running).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/progress.h"
#include "api/request.h"
#include "api/solver.h"
#include "net/framing.h"
#include "util/json.h"

namespace bagsched::net {

/// "host:port" → {host, port}; throws std::runtime_error on bad input.
std::pair<std::string, std::uint16_t> parse_hostport(
    const std::string& hostport);

/// Transport-level failure: connect refused, socket error, or the server
/// closed the connection before the awaited frame arrived. Retryable.
struct ConnectionError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A connect or read budget expired (RetryPolicy timeouts). Distinct from
/// ConnectionError so callers can tell "server gone" from "server slow".
struct TimedOut : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  Client() = default;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Throws ConnectionError when the server is unreachable. A nonzero
  /// `connect_timeout_seconds` bounds the connect via poll() and throws
  /// TimedOut on expiry (0 = block indefinitely).
  static Client connect(const std::string& host, std::uint16_t port,
                        double connect_timeout_seconds = 0.0);
  static Client connect(const std::string& hostport);

  bool connected() const { return fd_ != -1; }
  void close();
  /// Closes abruptly without a FIN handshake (for kill-and-reconnect
  /// tests): an RST is queued via SO_LINGER 0.
  void abort();

  /// Writes one frame (newline appended). Throws ConnectionError on a
  /// broken connection (partial writes and EINTR are handled internally).
  void send_line(const std::string& line);

  /// Next frame from the server; std::nullopt on EOF. Throws
  /// ConnectionError on a socket error, std::runtime_error on a frame
  /// that is not valid JSON, and TimedOut when a nonzero
  /// `timeout_seconds` elapses with no complete frame (the connection is
  /// then in an unknown mid-frame state; callers should close it).
  std::optional<util::Json> read_frame(double timeout_seconds = 0.0);

  /// Sends a submit frame for `request` under the client-assigned `id`.
  void submit(const api::SolveRequest& request, const std::string& id,
              bool want_progress = false, bool want_schedule = true);
  void cancel(const std::string& id);

  /// The server's protocol version, captured from its hello greeting; 0
  /// until the first frame has been read (v1 servers never send one).
  int server_proto_version() const { return server_proto_version_; }

  /// An open schedule session: the server-assigned id, its epoch token
  /// (v3 — needed to resume the session after a reconnect; 0 against a v2
  /// server) and the initial solve's result.
  struct Session {
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;
    api::SolveResult initial;
  };

  /// Acknowledgement of a resume_session (v3): where the server says the
  /// session is, so the client can reconcile before its next delta.
  struct Resumed {
    std::uint64_t session = 0;
    std::uint64_t epoch = 0;
    std::uint64_t revision = 0;
    std::string digest;  ///< committed schedule digest ("" on a v2 server)
  };

  /// Opens a schedule session (v2): sends open_session, awaits the ok
  /// frame carrying the session id, then the initial solve's finished
  /// event. `regret_bound` < 0 keeps the server default. Error frames for
  /// this id throw std::runtime_error.
  Session open_session(const api::SolveRequest& request,
                       const std::string& id = "s1",
                       double regret_bound = -1.0, bool want_schedule = true,
                       double read_timeout_seconds = 0.0);

  /// Reclaims an orphaned (or journal-restored) session on this connection
  /// (v3): sends resume_session with the epoch token from open_session and
  /// awaits the ok frame. Error frames for this id — unknown_session,
  /// stale_epoch, session_owned, draining — throw std::runtime_error.
  Resumed resume_session(std::uint64_t session, std::uint64_t epoch,
                         const std::string& id = "r1",
                         double read_timeout_seconds = 0.0);

  /// Applies a delta to an open session and returns the repaired result
  /// (migration fields filled). Error frames for this id — including
  /// unknown_session — throw std::runtime_error. `expect_revision` (v3)
  /// makes the commit idempotent across a reconnect: the revision the
  /// client last saw committed — a resend whose first copy already landed
  /// is answered from the server's commit cache instead of re-applied.
  api::SolveResult delta(
      std::uint64_t session, const model::Delta& delta,
      const std::string& id = "d1", bool want_schedule = true,
      double read_timeout_seconds = 0.0,
      std::optional<std::uint64_t> expect_revision = std::nullopt);

  /// Closes a session and awaits the acknowledgement.
  void close_session(std::uint64_t session, const std::string& id = "c1",
                     double read_timeout_seconds = 0.0);

  /// Full round trip: submit, stream until this id's terminal frame.
  /// Progress events are surfaced through `on_progress` (request ids are
  /// not service ids here — the event's request_id is 0). Rejection frames
  /// return a Cancelled result; other error frames for this id throw.
  /// A nonzero `read_timeout_seconds` bounds every read (TimedOut).
  api::SolveResult solve(const api::SolveRequest& request,
                         const std::string& id = "1",
                         bool want_progress = false,
                         const api::ProgressFn& on_progress = {},
                         bool want_schedule = true,
                         double read_timeout_seconds = 0.0);

  /// One stats round trip ({"type":"stats"} → the stats frame).
  util::Json stats();

 private:
  /// Reads frames until `id`'s finished event (returning its result) or an
  /// error frame for `id` (throwing). Shared tail of solve/delta.
  api::SolveResult await_result(const std::string& id,
                                const api::ProgressFn& on_progress,
                                double read_timeout_seconds);

  int fd_ = -1;
  int server_proto_version_ = 0;
  LineFramer framer_;
};

/// Retry behaviour of RetryingClient. Attempts are total tries (1 = no
/// retry); backoff between attempts grows exponentially and is jittered
/// deterministically from `seed` and the request id.
struct RetryPolicy {
  int max_attempts = 4;
  double connect_timeout_seconds = 5.0;
  /// Per-read budget while awaiting frames; 0 = unbounded.
  double read_timeout_seconds = 0.0;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Backoff is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.5;
  std::uint64_t seed = 0x5eedULL;
  /// Resubmit after a failure that may have reached the server. Solve
  /// requests are idempotent — a resubmission under the same id lands in
  /// the server's fingerprint cache / single-flight dedup, so the solve
  /// itself runs at most once. Set false for at-most-once *delivery*:
  /// a failure after the submit was sent then propagates instead.
  bool resubmit = true;
};

struct RetryStats {
  std::uint64_t attempts = 0;    ///< solve attempts, first tries included
  std::uint64_t reconnects = 0;  ///< connections re-established
  std::uint64_t resubmits = 0;   ///< submits re-sent after a failure
  std::uint64_t timeouts = 0;    ///< TimedOut errors absorbed
  std::uint64_t recovered = 0;   ///< solves that succeeded after >=1 retry
  std::uint64_t resumes = 0;     ///< sessions reclaimed via resume_session
  std::uint64_t duplicate_acks = 0;  ///< resent deltas answered from the
                                     ///< server's commit cache
};

/// A Client wrapper that survives flaky transport: connect and reads are
/// bounded by the policy's timeouts, and transport failures (ConnectionError
/// / TimedOut / EOF) trigger reconnect + resubmission with capped,
/// jittered exponential backoff. Protocol-level error frames are NOT
/// retried — they are answers, not failures. Not thread-safe (one
/// connection, like Client).
class RetryingClient {
 public:
  RetryingClient(std::string host, std::uint16_t port,
                 RetryPolicy policy = {});

  /// Like Client::solve, but retried under the policy. Throws the last
  /// transport error once max_attempts is exhausted.
  api::SolveResult solve(const api::SolveRequest& request,
                         const std::string& id = "1",
                         bool want_progress = false,
                         const api::ProgressFn& on_progress = {},
                         bool want_schedule = true);

  // --- Durable session (v3). One session per RetryingClient: the wrapper
  // remembers its id, epoch token and last committed revision, and a
  // transport failure mid-delta triggers reconnect → resume_session →
  // resubmission with expect_revision, so a commit whose ack was lost is
  // answered from the server's commit cache instead of applied twice.

  /// Opens the tracked session (retried under the policy).
  Client::Session open_session(const api::SolveRequest& request,
                               const std::string& id = "s1",
                               double regret_bound = -1.0,
                               bool want_schedule = true);
  /// Delta against the tracked session with reconnect-and-resume. Throws
  /// std::runtime_error when no session is open, the last transport error
  /// when attempts are exhausted, and protocol errors as-is (a
  /// stale_epoch/unknown_session on resume ends the session: the server
  /// genuinely lost it).
  api::SolveResult delta(const model::Delta& delta,
                         const std::string& id = "d1",
                         bool want_schedule = true);
  /// Closes the tracked session (best-effort: transport failures after
  /// retries are swallowed — an unreachable server reaps the session via
  /// its linger window anyway).
  void close_session(const std::string& id = "c1");

  /// The tracked session's id (0 = none open), epoch token and the last
  /// revision this client saw committed.
  std::uint64_t session() const { return session_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t revision() const { return revision_; }

  const RetryStats& stats() const { return stats_; }
  bool connected() const { return client_.connected(); }
  void close() { client_.close(); }

 private:
  void backoff(int attempt, const std::string& id);
  /// Ensure client_ is connected and, when a session is tracked but this
  /// connection has not claimed it yet, resume it. Returns false when the
  /// reconnect/resume failed on a retryable transport error.
  void ensure_session(const std::string& id);

  std::string host_;
  std::uint16_t port_ = 0;
  RetryPolicy policy_;
  Client client_;
  RetryStats stats_;
  std::uint64_t session_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t revision_ = 0;
  bool session_claimed_ = false;  ///< current connection owns the session
};

/// One-shot `GET /metrics` scrape; returns the Prometheus text body.
/// Throws std::runtime_error on connection failure or a non-200 status.
std::string fetch_metrics(const std::string& host, std::uint16_t port);

/// One-shot `GET /healthz` probe; returns {status_code, body}. 200 means
/// live and ready, 503 means draining. Throws on connection failure.
std::pair<int, std::string> fetch_healthz(const std::string& host,
                                          std::uint16_t port);

}  // namespace bagsched::net
