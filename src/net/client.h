// Blocking NDJSON client for sched_server — the reference implementation
// of the wire protocol's client side, used by `instance_tool --connect`,
// tests/test_net.cc and bench_net_throughput.
//
//   auto client = net::Client::connect("127.0.0.1", port);
//   api::SolveResult result = client.solve(request, "job-1",
//                                          /*want_progress=*/true,
//                                          print_progress);
//
// solve() submits, streams the event frames (invoking the progress
// callback for each) and returns the finished result; a structured
// rejection frame comes back as a Cancelled result carrying the server's
// message, any other error frame throws std::runtime_error. The lower
// send_line()/read_frame() layer is exposed for multiplexed use (several
// client-assigned ids in flight on one connection).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "api/progress.h"
#include "api/request.h"
#include "api/solver.h"
#include "net/framing.h"
#include "util/json.h"

namespace bagsched::net {

/// "host:port" → {host, port}; throws std::runtime_error on bad input.
std::pair<std::string, std::uint16_t> parse_hostport(
    const std::string& hostport);

class Client {
 public:
  Client() = default;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Throws std::runtime_error when the server is unreachable.
  static Client connect(const std::string& host, std::uint16_t port);
  static Client connect(const std::string& hostport);

  bool connected() const { return fd_ != -1; }
  void close();
  /// Closes abruptly without a FIN handshake (for kill-and-reconnect
  /// tests): an RST is queued via SO_LINGER 0.
  void abort();

  /// Writes one frame (newline appended). Throws on a broken connection.
  void send_line(const std::string& line);

  /// Next frame from the server; std::nullopt on EOF. Throws on a socket
  /// error or a frame that is not valid JSON.
  std::optional<util::Json> read_frame();

  /// Sends a submit frame for `request` under the client-assigned `id`.
  void submit(const api::SolveRequest& request, const std::string& id,
              bool want_progress = false, bool want_schedule = true);
  void cancel(const std::string& id);

  /// Full round trip: submit, stream until this id's terminal frame.
  /// Progress events are surfaced through `on_progress` (request ids are
  /// not service ids here — the event's request_id is 0). Rejection frames
  /// return a Cancelled result; other error frames for this id throw.
  api::SolveResult solve(const api::SolveRequest& request,
                         const std::string& id = "1",
                         bool want_progress = false,
                         const api::ProgressFn& on_progress = {},
                         bool want_schedule = true);

  /// One stats round trip ({"type":"stats"} → the stats frame).
  util::Json stats();

 private:
  int fd_ = -1;
  LineFramer framer_;
};

/// One-shot `GET /metrics` scrape; returns the Prometheus text body.
/// Throws std::runtime_error on connection failure or a non-200 status.
std::string fetch_metrics(const std::string& host, std::uint16_t port);

}  // namespace bagsched::net
