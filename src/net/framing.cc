#include "net/framing.h"

#include <cstring>

namespace bagsched::net {

void LineFramer::feed(const char* data, std::size_t size) {
  if (overflowed_) return;
  std::size_t start = 0;
  while (start < size) {
    const char* newline = static_cast<const char*>(
        std::memchr(data + start, '\n', size - start));
    if (newline == nullptr) {
      partial_.append(data + start, size - start);
      break;
    }
    const std::size_t end = static_cast<std::size_t>(newline - data);
    partial_.append(data + start, end - start);
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    if (max_line_bytes_ != 0 && partial_.size() > max_line_bytes_) {
      overflowed_ = true;
      partial_.clear();
      return;
    }
    lines_.push_back(std::move(partial_));
    partial_.clear();
    start = end + 1;
  }
  if (max_line_bytes_ != 0 && partial_.size() > max_line_bytes_) {
    overflowed_ = true;
    partial_.clear();
  }
}

std::optional<std::string> LineFramer::next() {
  if (lines_.empty()) return std::nullopt;
  std::string line = std::move(lines_.front());
  lines_.pop_front();
  return line;
}

}  // namespace bagsched::net
