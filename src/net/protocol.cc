#include "net/protocol.h"

#include <stdexcept>

#include "api/serialize.h"

namespace bagsched::net {

std::string client_id_text(const util::Json& id) {
  if (id.is_string()) {
    if (id.as_string().empty()) {
      throw std::runtime_error("id must not be empty");
    }
    return id.as_string();
  }
  if (id.is_number()) {
    // as_int rejects non-integral and out-of-range numbers loudly.
    return std::to_string(id.as_int());
  }
  throw std::runtime_error("id must be a string or an integer");
}

api::ProgressKind progress_kind_from_string(const std::string& name) {
  for (const api::ProgressKind kind :
       {api::ProgressKind::Queued, api::ProgressKind::Started,
        api::ProgressKind::Phase, api::ProgressKind::Incumbent,
        api::ProgressKind::Finished}) {
    if (name == api::to_string(kind)) return kind;
  }
  throw std::runtime_error("unknown progress event \"" + name + "\"");
}

std::string event_frame(const std::string& id, const api::ProgressEvent& event,
                        bool include_schedule, bool degraded) {
  util::Json frame = util::Json::object();
  frame.set("type", "event");
  frame.set("id", id);
  frame.set("event", api::to_string(event.kind));
  if (!event.solver.empty()) frame.set("solver", event.solver);
  if (event.kind == api::ProgressKind::Phase) frame.set("phase", event.phase);
  if (event.kind == api::ProgressKind::Incumbent) {
    frame.set("incumbent_makespan", event.incumbent_makespan);
  }
  frame.set("elapsed_seconds", event.elapsed_seconds);
  if (degraded) frame.set("degraded", true);
  if (event.kind == api::ProgressKind::Finished && event.result != nullptr) {
    frame.set("result", api::to_json(*event.result, include_schedule));
  }
  return frame.dump();
}

std::string error_frame(const std::string& code, const std::string& message,
                        const std::string* id) {
  util::Json frame = util::Json::object();
  frame.set("type", "error");
  if (id != nullptr) frame.set("id", *id);
  frame.set("code", code);
  frame.set("message", message);
  return frame.dump();
}

std::string ok_frame(const std::string& op, const std::string& id,
                     std::uint64_t session) {
  util::Json frame = util::Json::object();
  frame.set("type", "ok");
  frame.set("op", op);
  frame.set("id", id);
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  if (session != 0) frame.set("session", session);
  return frame.dump();
}

std::string session_ok_frame(const std::string& op, const std::string& id,
                             std::uint64_t session, std::uint64_t epoch,
                             std::uint64_t revision,
                             const std::string& digest) {
  util::Json frame = util::Json::object();
  frame.set("type", "ok");
  frame.set("op", op);
  frame.set("id", id);
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  frame.set("session", session);
  frame.set("epoch", std::to_string(epoch));
  frame.set("revision", revision);
  if (!digest.empty()) frame.set("digest", digest);
  return frame.dump();
}

std::string pong_frame() {
  util::Json frame = util::Json::object();
  frame.set("type", "pong");
  return frame.dump();
}

std::string hello_frame() {
  util::Json frame = util::Json::object();
  frame.set("type", "hello");
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  frame.set("server", "bagsched");
  return frame.dump();
}

util::Json to_json(const api::ServiceStats& stats) {
  util::Json json = util::Json::object();
  json.set("submitted", stats.submitted);
  json.set("rejected", stats.rejected);
  json.set("queue_depth", static_cast<std::uint64_t>(stats.queue_depth));
  json.set("active", static_cast<std::uint64_t>(stats.active));
  json.set("finished", stats.finished);
  json.set("cache_hits", stats.cache_hits);
  json.set("cache_rounded_hits", stats.cache_rounded_hits);
  json.set("dedup_shared", stats.dedup_shared);
  json.set("queue_wait_ewma_seconds", stats.queue_wait_ewma_seconds);
  json.set("sessions_opened", stats.sessions_opened);
  json.set("sessions_closed", stats.sessions_closed);
  json.set("open_sessions", static_cast<std::uint64_t>(stats.open_sessions));
  json.set("session_deltas", stats.session_deltas);
  json.set("session_repaired", stats.session_repaired);
  json.set("session_fresh", stats.session_fresh);
  json.set("sessions_restored", stats.sessions_restored);
  json.set("session_duplicates", stats.session_duplicates);
  return json;
}

util::Json to_json(const cache::CacheStats& stats) {
  util::Json json = util::Json::object();
  json.set("hits", stats.hits);
  json.set("misses", stats.misses);
  json.set("insertions", stats.insertions);
  json.set("evictions", stats.evictions);
  json.set("oversized", stats.oversized);
  json.set("entries", static_cast<std::uint64_t>(stats.entries));
  json.set("bytes", static_cast<std::uint64_t>(stats.bytes));
  return json;
}

util::Json to_json(const ServerCounters& counters) {
  util::Json json = util::Json::object();
  json.set("connections_accepted", counters.connections_accepted);
  json.set("connections_active", counters.connections_active);
  json.set("frames_in", counters.frames_in);
  json.set("frames_out", counters.frames_out);
  json.set("bytes_in", counters.bytes_in);
  json.set("bytes_out", counters.bytes_out);
  json.set("parse_errors", counters.parse_errors);
  json.set("oversized_frames", counters.oversized_frames);
  json.set("submits", counters.submits);
  json.set("cancels", counters.cancels);
  json.set("metrics_requests", counters.metrics_requests);
  json.set("healthz_requests", counters.healthz_requests);
  json.set("disconnect_cancels", counters.disconnect_cancels);
  json.set("slow_client_disconnects", counters.slow_client_disconnects);
  json.set("brownouts", counters.brownouts);
  json.set("request_timeouts", counters.request_timeouts);
  json.set("session_opens", counters.session_opens);
  json.set("session_deltas", counters.session_deltas);
  json.set("session_closes", counters.session_closes);
  json.set("version_rejects", counters.version_rejects);
  json.set("session_resumes", counters.session_resumes);
  json.set("resume_rejects", counters.resume_rejects);
  json.set("sessions_orphaned", counters.sessions_orphaned);
  json.set("orphans_expired", counters.orphans_expired);
  json.set("recovering_rejects", counters.recovering_rejects);
  return json;
}

std::string stats_frame(const api::ServiceStats& service,
                        const cache::CacheStats& cache,
                        const ServerCounters& server) {
  util::Json frame = util::Json::object();
  frame.set("type", "stats");
  frame.set("service", to_json(service));
  frame.set("cache", to_json(cache));
  frame.set("server", to_json(server));
  return frame.dump();
}

}  // namespace bagsched::net
