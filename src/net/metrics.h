// Prometheus text exposition for the /metrics endpoint.
//
// sched_server answers `GET /metrics` on its NDJSON port with the
// text/plain 0.0.4 exposition format, covering the scheduling service's
// counters and gauges (ServiceStats), the solve cache (CacheStats) and the
// server's own connection/byte/frame counters — everything a scrape needs
// to alert on load shedding, cache efficiency and slow clients.
#pragma once

#include <string>

#include "net/protocol.h"

namespace bagsched::persist {
struct JournalStats;
}  // namespace bagsched::persist

namespace bagsched::net {

/// The full exposition document (HELP/TYPE lines included). `journal`
/// (optional — sched_server passes it when --journal-dir is set) adds the
/// write-ahead journal's append/fsync/snapshot/recovery gauges.
std::string prometheus_text(const api::ServiceStats& service,
                            const cache::CacheStats& cache,
                            const ServerCounters& server,
                            const persist::JournalStats* journal = nullptr);

/// Minimal HTTP/1.0 response envelope (Content-Length + close).
std::string http_response(int status, const std::string& content_type,
                          const std::string& body);

}  // namespace bagsched::net
