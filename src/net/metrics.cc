#include "net/metrics.h"

#include <cstdint>

#include "persist/journal.h"

namespace bagsched::net {

namespace {

void metric_header(std::string& out, const char* name, const char* type,
                   const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  out += name;
  out += ' ';
}

void metric(std::string& out, const char* name, const char* type,
            const char* help, std::uint64_t value) {
  metric_header(out, name, type, help);
  out += std::to_string(value);
  out += '\n';
}

void metric(std::string& out, const char* name, const char* type,
            const char* help, double value) {
  metric_header(out, name, type, help);
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string prometheus_text(const api::ServiceStats& service,
                            const cache::CacheStats& cache,
                            const ServerCounters& server,
                            const persist::JournalStats* journal) {
  std::string out;
  out.reserve(4096);
  // --- SchedulingService ---------------------------------------------------
  metric(out, "bagsched_service_submitted_total", "counter",
         "Requests accepted by the service queue", service.submitted);
  metric(out, "bagsched_service_rejected_total", "counter",
         "Requests shed at the max_queue_depth cap", service.rejected);
  metric(out, "bagsched_service_finished_total", "counter",
         "Accepted requests that resolved", service.finished);
  metric(out, "bagsched_service_queue_depth", "gauge",
         "Requests waiting for a slot right now", service.queue_depth);
  metric(out, "bagsched_service_active", "gauge",
         "Requests running right now", service.active);
  metric(out, "bagsched_service_cache_hits_total", "counter",
         "Requests served from the solve cache", service.cache_hits);
  metric(out, "bagsched_service_cache_rounded_hits_total", "counter",
         "Cache hits through the eps-rounded key", service.cache_rounded_hits);
  metric(out, "bagsched_service_dedup_shared_total", "counter",
         "Single-flight followers resolved from another request's solve",
         service.dedup_shared);
  metric(out, "bagsched_service_queue_wait_ewma_seconds", "gauge",
         "EWMA of request queue wait in seconds (brown-out signal)",
         service.queue_wait_ewma_seconds);
  metric(out, "bagsched_service_sessions_opened_total", "counter",
         "Online schedule sessions opened", service.sessions_opened);
  metric(out, "bagsched_service_sessions_closed_total", "counter",
         "Online schedule sessions closed", service.sessions_closed);
  metric(out, "bagsched_service_open_sessions", "gauge",
         "Online schedule sessions open right now", service.open_sessions);
  metric(out, "bagsched_service_session_deltas_total", "counter",
         "Delta requests resolved by online sessions", service.session_deltas);
  metric(out, "bagsched_service_session_repaired_total", "counter",
         "Deltas settled without a full solve (noop/memo/repair/region)",
         service.session_repaired);
  metric(out, "bagsched_service_session_fresh_total", "counter",
         "Deltas that fell through to a fresh portfolio solve",
         service.session_fresh);
  metric(out, "bagsched_service_sessions_restored_total", "counter",
         "Sessions re-adopted from the journal at boot",
         service.sessions_restored);
  metric(out, "bagsched_service_session_duplicates_total", "counter",
         "Deltas answered from the commit cache via expect_revision",
         service.session_duplicates);
  // --- SolveCache ----------------------------------------------------------
  metric(out, "bagsched_cache_hits_total", "counter", "Solve-cache lookup hits",
         cache.hits);
  metric(out, "bagsched_cache_misses_total", "counter",
         "Solve-cache lookup misses", cache.misses);
  metric(out, "bagsched_cache_insertions_total", "counter",
         "Solve-cache insertions", cache.insertions);
  metric(out, "bagsched_cache_evictions_total", "counter",
         "Entries evicted to fit the byte budget", cache.evictions);
  metric(out, "bagsched_cache_entries", "gauge", "Resident cache entries",
         cache.entries);
  metric(out, "bagsched_cache_bytes", "gauge",
         "Approximate resident cache footprint in bytes", cache.bytes);
  // --- Server --------------------------------------------------------------
  metric(out, "bagsched_server_connections_accepted_total", "counter",
         "Client connections accepted", server.connections_accepted);
  metric(out, "bagsched_server_connections_active", "gauge",
         "Client connections open right now", server.connections_active);
  metric(out, "bagsched_server_frames_in_total", "counter",
         "Protocol frames received", server.frames_in);
  metric(out, "bagsched_server_frames_out_total", "counter",
         "Protocol frames sent", server.frames_out);
  metric(out, "bagsched_server_bytes_in_total", "counter",
         "Bytes received from clients", server.bytes_in);
  metric(out, "bagsched_server_bytes_out_total", "counter",
         "Bytes sent to clients", server.bytes_out);
  metric(out, "bagsched_server_parse_errors_total", "counter",
         "Frames rejected by the JSON parser", server.parse_errors);
  metric(out, "bagsched_server_oversized_frames_total", "counter",
         "Connections closed for exceeding the frame-size cap",
         server.oversized_frames);
  metric(out, "bagsched_server_submits_total", "counter",
         "Submit frames admitted to the service", server.submits);
  metric(out, "bagsched_server_cancels_total", "counter",
         "Cancel frames applied to an in-flight request", server.cancels);
  metric(out, "bagsched_server_metrics_requests_total", "counter",
         "GET /metrics scrapes served", server.metrics_requests);
  metric(out, "bagsched_server_disconnect_cancels_total", "counter",
         "Orphaned solves cancelled after a client disconnect",
         server.disconnect_cancels);
  metric(out, "bagsched_server_slow_client_disconnects_total", "counter",
         "Clients dropped for an overfull outbound buffer",
         server.slow_client_disconnects);
  metric(out, "bagsched_server_healthz_requests_total", "counter",
         "GET /healthz probes served", server.healthz_requests);
  metric(out, "bagsched_server_brownouts_total", "counter",
         "Submits degraded to the brown-out solver under queue pressure",
         server.brownouts);
  metric(out, "bagsched_server_request_timeouts_total", "counter",
         "Requests escalated to a timeout error by the budget watchdog",
         server.request_timeouts);
  metric(out, "bagsched_server_session_opens_total", "counter",
         "open_session frames admitted to the service", server.session_opens);
  metric(out, "bagsched_server_session_deltas_total", "counter",
         "delta frames routed to an open session", server.session_deltas);
  metric(out, "bagsched_server_session_closes_total", "counter",
         "Sessions closed by close_session frames or disconnects",
         server.session_closes);
  metric(out, "bagsched_server_version_rejects_total", "counter",
         "Frames rejected for declaring a newer proto_version",
         server.version_rejects);
  metric(out, "bagsched_server_session_resumes_total", "counter",
         "Sessions reclaimed via resume_session", server.session_resumes);
  metric(out, "bagsched_server_resume_rejects_total", "counter",
         "resume_session frames refused", server.resume_rejects);
  metric(out, "bagsched_server_sessions_orphaned_total", "counter",
         "Sessions parked in the linger window after a disconnect",
         server.sessions_orphaned);
  metric(out, "bagsched_server_orphans_expired_total", "counter",
         "Orphaned sessions closed because nobody resumed them",
         server.orphans_expired);
  metric(out, "bagsched_server_recovering_rejects_total", "counter",
         "Frames refused while the journal replayed",
         server.recovering_rejects);
  // --- Journal (only when sched_server runs with --journal-dir) -----------
  if (journal != nullptr) {
    metric(out, "bagsched_journal_records_appended_total", "counter",
           "Records appended to the write-ahead journal",
           journal->records_appended);
    metric(out, "bagsched_journal_bytes_appended_total", "counter",
           "Payload bytes appended to the journal", journal->bytes_appended);
    metric(out, "bagsched_journal_fsyncs_total", "counter",
           "fsync calls issued by the journal", journal->fsyncs);
    metric(out, "bagsched_journal_snapshots_total", "counter",
           "Snapshot compactions completed", journal->snapshots);
    metric(out, "bagsched_journal_snapshot_failures_total", "counter",
           "Snapshot compactions abandoned (old journal kept)",
           journal->snapshot_failures);
    metric(out, "bagsched_journal_records_replayed_total", "counter",
           "Records replayed from the journal at boot",
           journal->records_replayed);
    metric(out, "bagsched_journal_sessions_recovered_total", "counter",
           "Sessions reconstructed from the journal at boot",
           journal->sessions_recovered);
    metric(out, "bagsched_journal_truncated_bytes_total", "counter",
           "Torn-tail bytes truncated at journal open",
           journal->truncated_bytes);
    metric(out, "bagsched_journal_live_sessions", "gauge",
           "Sessions the journal currently tracks", journal->live_sessions);
    metric(out, "bagsched_journal_bytes", "gauge",
           "Journal file size in bytes", journal->journal_bytes);
  }
  return out;
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 503 ? "Service Unavailable"
                                       : "Bad Request";
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace bagsched::net
