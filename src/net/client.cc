#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "api/serialize.h"
#include "net/protocol.h"

namespace bagsched::net {

std::pair<std::string, std::uint16_t> parse_hostport(
    const std::string& hostport) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= hostport.size()) {
    throw std::runtime_error("expected HOST:PORT, got \"" + hostport + "\"");
  }
  const std::string host = hostport.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(hostport.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("bad port in \"" + hostport + "\"");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

namespace {

int connect_fd(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address \"" + host + "\"");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string message = std::string("connect ") + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(message);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), framer_(std::move(other.framer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    framer_ = std::move(other.framer_);
    other.fd_ = -1;
  }
  return *this;
}

Client Client::connect(const std::string& host, std::uint16_t port) {
  Client client;
  client.fd_ = connect_fd(host, port);
  return client;
}

Client Client::connect(const std::string& hostport) {
  const auto [host, port] = parse_hostport(hostport);
  return connect(host, port);
}

void Client::close() {
  if (fd_ != -1) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::abort() {
  if (fd_ == -1) return;
  const linger hard{1, 0};  // RST on close instead of a FIN handshake
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd_);
  fd_ = -1;
}

void Client::send_line(const std::string& line) {
  if (fd_ == -1) throw std::runtime_error("client: not connected");
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("send: ") + std::strerror(errno));
  }
}

std::optional<util::Json> Client::read_frame() {
  if (fd_ == -1) throw std::runtime_error("client: not connected");
  for (;;) {
    if (auto line = framer_.next()) {
      if (line->empty()) continue;
      return util::Json::parse(*line);
    }
    char buffer[16384];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      framer_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
  }
}

void Client::submit(const api::SolveRequest& request, const std::string& id,
                    bool want_progress, bool want_schedule) {
  util::Json frame = util::Json::object();
  frame.set("type", "submit");
  frame.set("id", id);
  frame.set("request", api::to_json(request));
  if (want_progress) frame.set("progress", true);
  if (!want_schedule) frame.set("schedule", false);
  send_line(frame.dump());
}

void Client::cancel(const std::string& id) {
  util::Json frame = util::Json::object();
  frame.set("type", "cancel");
  frame.set("id", id);
  send_line(frame.dump());
}

api::SolveResult Client::solve(const api::SolveRequest& request,
                               const std::string& id, bool want_progress,
                               const api::ProgressFn& on_progress,
                               bool want_schedule) {
  submit(request, id, want_progress, want_schedule);
  for (;;) {
    auto frame = read_frame();
    if (!frame.has_value()) {
      throw std::runtime_error(
          "server closed the connection before the result arrived");
    }
    const std::string type = frame->string_or("type", "");
    if (type == "error") {
      const std::string code = frame->string_or("code", "");
      const std::string message = frame->string_or("message", "");
      if (frame->string_or("id", "") != id && code != "parse_error") {
        continue;  // concerns another in-flight request
      }
      if (code == "rejected") {
        api::SolveResult result;
        result.status = api::SolveStatus::Cancelled;
        result.cancelled = true;
        result.error = message;
        return result;
      }
      throw std::runtime_error(code + ": " + message);
    }
    if (type != "event" || frame->string_or("id", "") != id) continue;
    const api::ProgressKind kind =
        progress_kind_from_string(frame->at("event").as_string());
    if (kind == api::ProgressKind::Finished) {
      const util::Json* result = frame->find("result");
      if (result == nullptr) {
        throw std::runtime_error("finished event without a result");
      }
      return api::solve_result_from_json(*result);
    }
    if (on_progress) {
      api::ProgressEvent event;
      event.kind = kind;
      event.solver = frame->string_or("solver", "");
      event.phase = frame->string_or("phase", "");
      event.incumbent_makespan = frame->number_or("incumbent_makespan", 0.0);
      event.elapsed_seconds = frame->number_or("elapsed_seconds", 0.0);
      on_progress(event);
    }
  }
}

util::Json Client::stats() {
  util::Json frame = util::Json::object();
  frame.set("type", "stats");
  send_line(frame.dump());
  for (;;) {
    auto reply = read_frame();
    if (!reply.has_value()) {
      throw std::runtime_error(
          "server closed the connection before the stats frame arrived");
    }
    if (reply->string_or("type", "") == "stats") return *reply;
  }
}

std::string fetch_metrics(const std::string& host, std::uint16_t port) {
  const int fd = connect_fd(host, port);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    throw std::runtime_error(std::string("send: ") + std::strerror(errno));
  }
  std::string response;
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw std::runtime_error("malformed HTTP response");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    throw std::runtime_error("metrics scrape failed: " + status_line);
  }
  return response.substr(header_end + 4);
}

}  // namespace bagsched::net
