#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "api/serialize.h"
#include "api/telemetry.h"
#include "net/protocol.h"
#include "util/fault.h"
#include "util/prng.h"

namespace bagsched::net {

std::pair<std::string, std::uint16_t> parse_hostport(
    const std::string& hostport) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= hostport.size()) {
    throw std::runtime_error("expected HOST:PORT, got \"" + hostport + "\"");
  }
  const std::string host = hostport.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(hostport.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("bad port in \"" + hostport + "\"");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

namespace {

/// Remaining milliseconds until `deadline`, clamped to >= 0.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

int connect_fd(const std::string& host, std::uint16_t port,
               double timeout_seconds = 0.0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ConnectionError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ConnectionError("bad address \"" + host + "\"");
  }
  const std::string where = host + ":" + std::to_string(port);
  if (timeout_seconds > 0.0) {
    // Poll-based bounded connect: go nonblocking for the handshake, wait
    // for writability, read the outcome from SO_ERROR, then restore
    // blocking mode for the send/recv paths.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      const std::string message =
          "connect " + where + ": " + std::strerror(errno);
      ::close(fd);
      throw ConnectionError(message);
    }
    if (rc != 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timeout_seconds));
      for (;;) {
        pollfd waiter{fd, POLLOUT, 0};
        const int ready = ::poll(&waiter, 1, remaining_ms(deadline));
        if (ready < 0 && errno == EINTR) continue;
        if (ready == 0) {
          ::close(fd);
          throw TimedOut("connect " + where + ": timed out after " +
                         std::to_string(timeout_seconds) + "s");
        }
        if (ready < 0) {
          const std::string message =
              "connect " + where + ": " + std::strerror(errno);
          ::close(fd);
          throw ConnectionError(message);
        }
        break;
      }
      int error = 0;
      socklen_t error_size = sizeof(error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_size);
      if (error != 0) {
        ::close(fd);
        throw ConnectionError("connect " + where + ": " +
                              std::strerror(error));
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    const std::string message =
        "connect " + where + ": " + std::strerror(errno);
    ::close(fd);
    throw ConnectionError(message);
  }
  if (BAGSCHED_FAULT("net.client.connect")) {
    ::close(fd);
    throw ConnectionError("connect " + where + ": injected fault");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Sends the whole buffer, handling EINTR and partial writes explicitly.
/// ::send returning -1 is never folded into the short-write path: the
/// errno decides between retry (EINTR) and a typed ConnectionError. A
/// zero return (no progress on a nonzero count) is treated as a broken
/// connection rather than spinning.
void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ConnectionError(std::string("send: ") + std::strerror(errno));
    }
    if (n == 0) {
      throw ConnectionError("send: connection closed mid-write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// One-shot HTTP/1.0 GET on the NDJSON port; returns {status, body}.
std::pair<int, std::string> http_get(const std::string& host,
                                     std::uint16_t port,
                                     const std::string& target) {
  const int fd = connect_fd(host, port);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  try {
    send_all(fd, request.data(), request.size());
  } catch (...) {
    ::close(fd);
    throw;
  }
  std::string response;
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    throw std::runtime_error("malformed HTTP response");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  // "HTTP/1.0 200 OK" — the status code is the second token.
  const std::size_t space = status_line.find(' ');
  int status = 0;
  if (space != std::string::npos) {
    try {
      status = std::stoi(status_line.substr(space + 1));
    } catch (const std::exception&) {
      status = 0;
    }
  }
  if (status == 0) {
    throw std::runtime_error("malformed HTTP status line: " + status_line);
  }
  return {status, response.substr(header_end + 4)};
}

/// Epoch token off the wire: issued as a decimal string (a u64 does not
/// survive a JSON double) but an integer is tolerated.
std::uint64_t epoch_from_json(const util::Json& value) {
  if (value.is_string()) return std::stoull(value.as_string());
  return static_cast<std::uint64_t>(value.as_int());
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      server_proto_version_(other.server_proto_version_),
      framer_(std::move(other.framer_)) {
  other.fd_ = -1;
  other.server_proto_version_ = 0;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    server_proto_version_ = other.server_proto_version_;
    framer_ = std::move(other.framer_);
    other.fd_ = -1;
    other.server_proto_version_ = 0;
  }
  return *this;
}

Client Client::connect(const std::string& host, std::uint16_t port,
                       double connect_timeout_seconds) {
  Client client;
  client.fd_ = connect_fd(host, port, connect_timeout_seconds);
  return client;
}

Client Client::connect(const std::string& hostport) {
  const auto [host, port] = parse_hostport(hostport);
  return connect(host, port);
}

void Client::close() {
  if (fd_ != -1) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::abort() {
  if (fd_ == -1) return;
  const linger hard{1, 0};  // RST on close instead of a FIN handshake
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd_);
  fd_ = -1;
}

void Client::send_line(const std::string& line) {
  if (fd_ == -1) throw ConnectionError("client: not connected");
  if (BAGSCHED_FAULT("net.client.send")) {
    close();  // model a peer reset surfacing as EPIPE on this write
    throw ConnectionError("send: injected fault");
  }
  std::string out = line;
  out += '\n';
  try {
    send_all(fd_, out.data(), out.size());
  } catch (...) {
    close();  // a failed write leaves the stream unusable
    throw;
  }
}

std::optional<util::Json> Client::read_frame(double timeout_seconds) {
  if (fd_ == -1) throw ConnectionError("client: not connected");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    if (auto line = framer_.next()) {
      if (line->empty()) continue;
      util::Json frame = util::Json::parse(*line);
      // Handshake capture: the hello greeting carries the server's
      // protocol version. It is swallowed here (recorded, not returned) so
      // callers written against the v1 protocol — read one frame, expect
      // the response — keep working against a v2 server.
      if (frame.is_object() && frame.string_or("type", "") == "hello") {
        server_proto_version_ =
            static_cast<int>(frame.number_or("proto_version", 0.0));
        continue;
      }
      return frame;
    }
    if (BAGSCHED_FAULT("net.client.recv")) {
      close();
      throw ConnectionError("recv: injected fault");
    }
    if (timeout_seconds > 0.0) {
      pollfd waiter{fd_, POLLIN, 0};
      const int ready = ::poll(&waiter, 1, remaining_ms(deadline));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) {
        throw ConnectionError(std::string("poll: ") + std::strerror(errno));
      }
      if (ready == 0) {
        throw TimedOut("recv: no frame within " +
                       std::to_string(timeout_seconds) + "s");
      }
    }
    char buffer[16384];
    // Short-read injection stresses the framing reassembly path without
    // violating the protocol: the bytes still arrive, one at a time.
    const std::size_t cap =
        BAGSCHED_FAULT("net.client.recv.short") ? 1 : sizeof(buffer);
    const ssize_t n = ::recv(fd_, buffer, cap, 0);
    if (n > 0) {
      framer_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return std::nullopt;
    if (errno == EINTR) continue;
    throw ConnectionError(std::string("recv: ") + std::strerror(errno));
  }
}

void Client::submit(const api::SolveRequest& request, const std::string& id,
                    bool want_progress, bool want_schedule) {
  util::Json frame = util::Json::object();
  frame.set("type", "submit");
  frame.set("id", id);
  frame.set("request", api::to_json(request));
  if (want_progress) frame.set("progress", true);
  if (!want_schedule) frame.set("schedule", false);
  send_line(frame.dump());
}

void Client::cancel(const std::string& id) {
  util::Json frame = util::Json::object();
  frame.set("type", "cancel");
  frame.set("id", id);
  send_line(frame.dump());
}

Client::Session Client::open_session(const api::SolveRequest& request,
                                     const std::string& id,
                                     double regret_bound, bool want_schedule,
                                     double read_timeout_seconds) {
  util::Json frame = util::Json::object();
  frame.set("type", "open_session");
  frame.set("id", id);
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  frame.set("request", api::to_json(request));
  if (regret_bound >= 0.0) frame.set("regret_bound", regret_bound);
  if (!want_schedule) frame.set("schedule", false);
  send_line(frame.dump());
  Session session;
  // The ok frame (with the session id) precedes the initial solve's events.
  for (;;) {
    auto reply = read_frame(read_timeout_seconds);
    if (!reply.has_value()) {
      throw ConnectionError(
          "server closed the connection before the session opened");
    }
    const std::string type = reply->string_or("type", "");
    if (type == "error" && reply->string_or("id", "") == id) {
      throw std::runtime_error(reply->string_or("code", "") + ": " +
                               reply->string_or("message", ""));
    }
    if (type == "ok" && reply->string_or("op", "") == "open_session" &&
        reply->string_or("id", "") == id) {
      session.id = static_cast<std::uint64_t>(reply->at("session").as_int());
      if (const util::Json* epoch = reply->find("epoch")) {
        session.epoch = epoch_from_json(*epoch);
      }
      break;
    }
  }
  session.initial = await_result(id, {}, read_timeout_seconds);
  return session;
}

Client::Resumed Client::resume_session(std::uint64_t session,
                                       std::uint64_t epoch,
                                       const std::string& id,
                                       double read_timeout_seconds) {
  util::Json frame = util::Json::object();
  frame.set("type", "resume_session");
  frame.set("id", id);
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  frame.set("session", session);
  frame.set("epoch", std::to_string(epoch));
  send_line(frame.dump());
  for (;;) {
    auto reply = read_frame(read_timeout_seconds);
    if (!reply.has_value()) {
      throw ConnectionError(
          "server closed the connection before the resume was acknowledged");
    }
    const std::string type = reply->string_or("type", "");
    if (type == "error" && reply->string_or("id", "") == id) {
      throw std::runtime_error(reply->string_or("code", "") + ": " +
                               reply->string_or("message", ""));
    }
    if (type == "ok" && reply->string_or("op", "") == "resume_session" &&
        reply->string_or("id", "") == id) {
      Resumed resumed;
      resumed.session =
          static_cast<std::uint64_t>(reply->at("session").as_int());
      if (const util::Json* token = reply->find("epoch")) {
        resumed.epoch = epoch_from_json(*token);
      }
      resumed.revision = static_cast<std::uint64_t>(
          reply->find("revision") ? reply->at("revision").as_int() : 0);
      resumed.digest = reply->string_or("digest", "");
      return resumed;
    }
  }
}

api::SolveResult Client::delta(std::uint64_t session,
                               const model::Delta& delta,
                               const std::string& id, bool want_schedule,
                               double read_timeout_seconds,
                               std::optional<std::uint64_t> expect_revision) {
  util::Json frame = util::Json::object();
  frame.set("type", "delta");
  frame.set("id", id);
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  frame.set("session", session);
  frame.set("delta", api::to_json(delta));
  if (expect_revision.has_value()) {
    frame.set("expect_revision", static_cast<long long>(*expect_revision));
  }
  if (!want_schedule) frame.set("schedule", false);
  send_line(frame.dump());
  return await_result(id, {}, read_timeout_seconds);
}

void Client::close_session(std::uint64_t session, const std::string& id,
                           double read_timeout_seconds) {
  util::Json frame = util::Json::object();
  frame.set("type", "close_session");
  frame.set("id", id);
  frame.set("proto_version", static_cast<long long>(kProtoVersion));
  frame.set("session", session);
  send_line(frame.dump());
  for (;;) {
    auto reply = read_frame(read_timeout_seconds);
    if (!reply.has_value()) {
      throw ConnectionError(
          "server closed the connection before the close was acknowledged");
    }
    const std::string type = reply->string_or("type", "");
    if (type == "error" && reply->string_or("id", "") == id) {
      throw std::runtime_error(reply->string_or("code", "") + ": " +
                               reply->string_or("message", ""));
    }
    if (type == "ok" && reply->string_or("op", "") == "close_session" &&
        reply->string_or("id", "") == id) {
      return;
    }
  }
}

api::SolveResult Client::solve(const api::SolveRequest& request,
                               const std::string& id, bool want_progress,
                               const api::ProgressFn& on_progress,
                               bool want_schedule,
                               double read_timeout_seconds) {
  submit(request, id, want_progress, want_schedule);
  return await_result(id, on_progress, read_timeout_seconds);
}

api::SolveResult Client::await_result(const std::string& id,
                                      const api::ProgressFn& on_progress,
                                      double read_timeout_seconds) {
  for (;;) {
    auto frame = read_frame(read_timeout_seconds);
    if (!frame.has_value()) {
      throw ConnectionError(
          "server closed the connection before the result arrived");
    }
    const std::string type = frame->string_or("type", "");
    if (type == "error") {
      const std::string code = frame->string_or("code", "");
      const std::string message = frame->string_or("message", "");
      if (frame->string_or("id", "") != id && code != "parse_error") {
        continue;  // concerns another in-flight request
      }
      if (code == "rejected") {
        api::SolveResult result;
        result.status = api::SolveStatus::Cancelled;
        result.cancelled = true;
        result.error = message;
        return result;
      }
      throw std::runtime_error(code + ": " + message);
    }
    if (type != "event" || frame->string_or("id", "") != id) continue;
    const api::ProgressKind kind =
        progress_kind_from_string(frame->at("event").as_string());
    if (kind == api::ProgressKind::Finished) {
      const util::Json* result = frame->find("result");
      if (result == nullptr) {
        throw std::runtime_error("finished event without a result");
      }
      api::SolveResult out = api::solve_result_from_json(*result);
      if (frame->bool_or("degraded", false)) {
        out.stats["degraded"] = true;
      }
      return out;
    }
    if (on_progress) {
      api::ProgressEvent event;
      event.kind = kind;
      event.solver = frame->string_or("solver", "");
      event.phase = frame->string_or("phase", "");
      event.incumbent_makespan = frame->number_or("incumbent_makespan", 0.0);
      event.elapsed_seconds = frame->number_or("elapsed_seconds", 0.0);
      on_progress(event);
    }
  }
}

util::Json Client::stats() {
  util::Json frame = util::Json::object();
  frame.set("type", "stats");
  send_line(frame.dump());
  for (;;) {
    auto reply = read_frame();
    if (!reply.has_value()) {
      throw ConnectionError(
          "server closed the connection before the stats frame arrived");
    }
    if (reply->string_or("type", "") == "stats") return *reply;
  }
}

// --- RetryingClient --------------------------------------------------------

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)), port_(port), policy_(policy) {}

void RetryingClient::backoff(int attempt, const std::string& id) {
  double delay = policy_.initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) delay *= policy_.backoff_multiplier;
  if (delay > policy_.max_backoff_seconds) {
    delay = policy_.max_backoff_seconds;
  }
  // Deterministic jitter: seeded from (policy seed, request id, attempt),
  // so a replay with the same seed sleeps the same schedule.
  util::Xoshiro256 rng(policy_.seed ^
                       (std::hash<std::string>{}(id) +
                        static_cast<std::uint64_t>(attempt) * 0x9e3779b9ULL));
  const double factor =
      rng.uniform_real(1.0 - policy_.jitter, 1.0 + policy_.jitter);
  delay *= factor;
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

api::SolveResult RetryingClient::solve(const api::SolveRequest& request,
                                       const std::string& id,
                                       bool want_progress,
                                       const api::ProgressFn& on_progress,
                                       bool want_schedule) {
  for (int attempt = 1;; ++attempt) {
    ++stats_.attempts;
    bool submitted = false;
    try {
      if (!client_.connected()) {
        client_ = Client::connect(host_, port_,
                                  policy_.connect_timeout_seconds);
        if (attempt > 1) ++stats_.reconnects;
      }
      if (attempt > 1) ++stats_.resubmits;
      submitted = true;  // submit is the first thing solve() does
      api::SolveResult result =
          client_.solve(request, id, want_progress, on_progress,
                        want_schedule, policy_.read_timeout_seconds);
      if (attempt > 1) ++stats_.recovered;
      return result;
    } catch (const TimedOut&) {
      ++stats_.timeouts;
      client_.close();  // mid-frame state is unknown; start clean
      if (attempt >= policy_.max_attempts) throw;
      if (submitted && !policy_.resubmit) throw;
    } catch (const ConnectionError&) {
      client_.close();
      if (attempt >= policy_.max_attempts) throw;
      if (submitted && !policy_.resubmit) throw;
    }
    if (attempt == 1) --stats_.resubmits;  // never counted a first submit
    backoff(attempt, id);
  }
}

void RetryingClient::ensure_session(const std::string& id) {
  if (!client_.connected()) {
    const bool reconnect = session_ != 0;
    client_ =
        Client::connect(host_, port_, policy_.connect_timeout_seconds);
    if (reconnect) ++stats_.reconnects;
  }
  if (session_ == 0 || session_claimed_) return;
  try {
    const Client::Resumed resumed = client_.resume_session(
        session_, epoch_, "resume-" + id, policy_.read_timeout_seconds);
    revision_ = resumed.revision;
    session_claimed_ = true;
    ++stats_.resumes;
  } catch (const ConnectionError&) {
    throw;  // retryable; the caller's loop reconnects
  } catch (const TimedOut&) {
    throw;
  } catch (const std::runtime_error&) {
    // A structured refusal (unknown_session / stale_epoch / session_owned):
    // the server genuinely lost the session, so stop tracking it — further
    // deltas must fail loudly instead of retrying forever.
    session_ = 0;
    epoch_ = 0;
    session_claimed_ = false;
    throw;
  }
}

Client::Session RetryingClient::open_session(const api::SolveRequest& request,
                                             const std::string& id,
                                             double regret_bound,
                                             bool want_schedule) {
  for (int attempt = 1;; ++attempt) {
    ++stats_.attempts;
    bool submitted = false;
    try {
      if (!client_.connected()) {
        client_ =
            Client::connect(host_, port_, policy_.connect_timeout_seconds);
        if (attempt > 1) ++stats_.reconnects;
      }
      if (attempt > 1) ++stats_.resubmits;
      submitted = true;
      Client::Session opened =
          client_.open_session(request, id, regret_bound, want_schedule,
                               policy_.read_timeout_seconds);
      // A previous attempt may have opened a session whose ok was lost;
      // that orphan expires via the server's linger window. Track the one
      // whose acknowledgement we actually hold.
      session_ = opened.id;
      epoch_ = opened.epoch;
      revision_ = 0;
      session_claimed_ = true;
      if (attempt > 1) ++stats_.recovered;
      return opened;
    } catch (const TimedOut&) {
      ++stats_.timeouts;
      client_.close();
      session_claimed_ = false;
      if (attempt >= policy_.max_attempts) throw;
      if (submitted && !policy_.resubmit) throw;
    } catch (const ConnectionError&) {
      client_.close();
      session_claimed_ = false;
      if (attempt >= policy_.max_attempts) throw;
      if (submitted && !policy_.resubmit) throw;
    }
    if (attempt == 1) --stats_.resubmits;  // never counted a first submit
    backoff(attempt, id);
  }
}

api::SolveResult RetryingClient::delta(const model::Delta& delta,
                                       const std::string& id,
                                       bool want_schedule) {
  if (session_ == 0) {
    throw std::runtime_error("RetryingClient: no session open");
  }
  // The commit this call is trying to land sits at expect+1. The token is
  // pinned BEFORE the first attempt: a resume mid-retry reports the
  // server's revision, which already includes this delta when the lost ack
  // actually committed — resending with the pinned token then hits the
  // server's commit cache instead of applying twice.
  const std::uint64_t expect = revision_;
  for (int attempt = 1;; ++attempt) {
    ++stats_.attempts;
    try {
      ensure_session(id);
      if (attempt > 1) ++stats_.resubmits;
      api::SolveResult result =
          client_.delta(session_, delta, id, want_schedule,
                        policy_.read_timeout_seconds, expect);
      if (api::stat_bool(result.stats, "online.duplicate")) {
        ++stats_.duplicate_acks;
      }
      revision_ = static_cast<std::uint64_t>(
          api::stat_int(result.stats, "online.revision",
                        static_cast<long long>(revision_)));
      if (attempt > 1) ++stats_.recovered;
      return result;
    } catch (const TimedOut&) {
      ++stats_.timeouts;
      client_.close();
      session_claimed_ = false;
      if (attempt >= policy_.max_attempts) throw;
      if (!policy_.resubmit) throw;
    } catch (const ConnectionError&) {
      client_.close();
      session_claimed_ = false;
      if (attempt >= policy_.max_attempts) throw;
      if (!policy_.resubmit) throw;
    }
    if (attempt == 1) --stats_.resubmits;
    backoff(attempt, id);
  }
}

void RetryingClient::close_session(const std::string& id) {
  if (session_ == 0) return;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    try {
      ensure_session(id);
      client_.close_session(session_, id, policy_.read_timeout_seconds);
      break;
    } catch (const TimedOut&) {
      ++stats_.timeouts;
      client_.close();
      session_claimed_ = false;
      if (attempt >= policy_.max_attempts) break;
    } catch (const ConnectionError&) {
      client_.close();
      session_claimed_ = false;
      if (attempt >= policy_.max_attempts) break;
    } catch (const std::runtime_error&) {
      break;  // already gone server-side — that IS closed
    }
    backoff(attempt, id);
  }
  session_ = 0;
  epoch_ = 0;
  revision_ = 0;
  session_claimed_ = false;
}

std::string fetch_metrics(const std::string& host, std::uint16_t port) {
  const auto [status, body] = http_get(host, port, "/metrics");
  if (status != 200) {
    throw std::runtime_error("metrics scrape failed: HTTP " +
                             std::to_string(status));
  }
  return body;
}

std::pair<int, std::string> fetch_healthz(const std::string& host,
                                          std::uint16_t port) {
  return http_get(host, port, "/healthz");
}

}  // namespace bagsched::net
