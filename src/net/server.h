// sched_server core: a TCP front end over api::SchedulingService speaking
// the NDJSON wire protocol (net/protocol.h, DESIGN.md §5).
//
//   net::ServerConfig config;
//   config.port = 0;                    // ephemeral; port() tells which
//   config.service.max_queue_depth = 256;
//   net::SchedServer server(config);
//   server.start();
//   ...
//   server.request_drain();             // SIGTERM handler calls this
//   server.wait();                      // returns once drained
//
// Architecture: ONE event-loop thread owns every socket (accept, read,
// frame, dispatch, write) via poll() — no thread-per-connection — while
// the solves run on the SchedulingService's worker pool. The bridge back
// is a per-connection Sink: progress callbacks (worker threads) serialize
// their frame, append it under the sink mutex and wake the loop through a
// self-pipe; the loop moves pending frames into the connection's outbound
// buffer and flushes when the socket is writable. A disconnected client's
// sink goes dead (late events are dropped) and every solve it still had in
// flight is cancelled, so orphaned requests release their slots instead of
// leaking.
//
// Graceful drain (request_drain): the listener closes, new submits are
// refused with a "draining" error frame, in-flight solves get
// drain_grace_seconds to finish before they are cancelled, every Finished
// event is flushed, connections close, and wait() returns. The /metrics
// endpoint (HTTP GET on the same port) serves Prometheus text of
// ServiceStats + SolveCache counters + the ServerCounters gauges.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/service.h"
#include "net/protocol.h"

namespace bagsched::persist {
class SessionJournal;
}  // namespace bagsched::persist

namespace bagsched::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 = ephemeral (read the bound port back via port()).
  std::uint16_t port = 0;
  /// Forwarded to the owned SchedulingService (threads, max_concurrent,
  /// max_queue_depth, cache budget).
  api::ServiceConfig service;
  /// One NDJSON frame (line) may not exceed this; larger frames close the
  /// connection with an oversized_frame error.
  std::size_t max_frame_bytes = 4u << 20;
  /// Outbound-buffer cap per connection; a client that cannot keep up with
  /// its own event stream is disconnected instead of ballooning memory.
  std::size_t max_output_bytes = 64u << 20;
  /// Connection cap; accepts beyond it are closed immediately.
  std::size_t max_connections = 1024;
  /// Drain: how long in-flight solves may keep running before they are
  /// cancelled so the server can exit.
  double drain_grace_seconds = 5.0;
  /// Per-request wall-clock budget (0 = unlimited). Enforced twice: the
  /// submit's deadline is clamped to it (cooperative cancellation through
  /// the service watchdog), and a solver still unresolved
  /// stuck_grace_seconds past the budget is escalated — the request gets a
  /// terminal "timeout" error frame and its late result is suppressed.
  double request_budget_seconds = 0.0;
  /// Grace between the budget's cooperative cancel and the stuck-solver
  /// escalation above.
  double stuck_grace_seconds = 2.0;
  /// Overload brown-out (0 = disabled): when the service's queue-wait EWMA
  /// exceeds this, new submits are degraded to the cheap `bag-lpt` solver
  /// and their frames are flagged "degraded":true on the wire.
  double brownout_queue_latency_seconds = 0.0;
  /// Orphan grace (0 = sessions die with their connection, the pre-v3
  /// behaviour): with a linger, a disconnect parks the connection's open
  /// sessions as orphans for this many seconds, during which a client
  /// holding the epoch token can reclaim them with resume_session. Expired
  /// orphans are closed by the event loop.
  double session_linger_seconds = 0.0;
  /// Boot in the "recovering" state: every frame except ping/stats is
  /// refused with a "recovering" error and /healthz answers 503 until
  /// set_ready() is called. sched_server uses this to replay its journal
  /// after the port is already bound, so probes see the boot progressing.
  bool start_recovering = false;
};

namespace detail {
struct Connection;
struct Sink;
}  // namespace detail

class SchedServer {
 public:
  explicit SchedServer(ServerConfig config = {});
  /// stop() + wait().
  ~SchedServer();

  SchedServer(const SchedServer&) = delete;
  SchedServer& operator=(const SchedServer&) = delete;

  /// Binds, listens and starts the event-loop thread. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// The bound TCP port (resolves port 0 to the ephemeral choice).
  std::uint16_t port() const { return port_; }

  /// Graceful drain; thread-safe and idempotent. wait() returns once every
  /// in-flight request resolved and every event flushed.
  void request_drain();
  /// Hard stop: cancels everything, drops unflushed frames, closes.
  void stop();
  /// Joins the event loop (after request_drain()/stop()).
  void wait();

  bool draining() const {
    return drain_.load(std::memory_order_relaxed) ||
           stop_.load(std::memory_order_relaxed);
  }

  /// True while the server refuses work with "recovering" errors (journal
  /// replay still running). Starts true iff config.start_recovering.
  bool recovering() const {
    return recovering_.load(std::memory_order_acquire);
  }
  /// Leaves the recovering state; thread-safe, idempotent. Called by
  /// sched_server once journal replay and session restoration finished.
  void set_ready();

  /// Park sessions (typically the ones just restored from the journal) as
  /// orphans, exactly as if their connection had died: resumable with
  /// resume_session inside the linger window, closed when it expires.
  /// Thread-safe; the event loop adopts them on its next pass.
  void adopt_orphans(const std::vector<std::uint64_t>& sessions);

  ServerCounters counters() const;
  api::SchedulingService& service() { return service_; }
  const ServerConfig& config() const { return config_; }

 private:
  void loop();
  void escalate_stuck();
  void accept_ready();
  void read_ready(detail::Connection& connection);
  void flush(detail::Connection& connection);
  void pump_sink(detail::Connection& connection);
  void close_connection(detail::Connection& connection,
                        bool count_orphans = true);
  void handle_line(detail::Connection& connection, const std::string& line);
  void handle_http(detail::Connection& connection, const std::string& line);
  void handle_submit(detail::Connection& connection, const util::Json& frame);
  void handle_cancel(detail::Connection& connection, const util::Json& frame);
  void handle_open_session(detail::Connection& connection,
                           const util::Json& frame);
  void handle_delta(detail::Connection& connection, const util::Json& frame);
  void handle_close_session(detail::Connection& connection,
                            const util::Json& frame);
  void handle_resume_session(detail::Connection& connection,
                             const util::Json& frame);
  void sweep_orphans(bool close_all);
  void send_frame(detail::Connection& connection, std::string frame);
  void wake();

  ServerConfig config_;
  api::SchedulingService service_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> drain_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> recovering_{false};
  std::thread loop_thread_;

  /// Owned by the loop thread exclusively.
  std::vector<std::unique_ptr<detail::Connection>> connections_;
  /// Sessions whose connection died inside the linger window, keyed to the
  /// instant they were orphaned. Owned by the loop thread exclusively;
  /// swept every iteration and resume_session removes entries on reclaim.
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      orphaned_sessions_;
  /// Hand-off for adopt_orphans() callers (main thread at boot): drained
  /// into orphaned_sessions_ by the loop under adopted_mutex_.
  std::mutex adopted_mutex_;
  std::vector<std::uint64_t> adopted_orphans_;

  mutable std::mutex counters_mutex_;
  ServerCounters counters_;

  std::mutex wait_mutex_;  ///< serializes wait() callers around the join
};

}  // namespace bagsched::net
