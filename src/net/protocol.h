// Wire-protocol frame schemas for sched_server (see DESIGN.md §5).
//
// Every frame is one JSON object on one line. Client → server:
//
//   {"type":"submit","id":ID,"request":{...},"progress":B,"schedule":B}
//   {"type":"open_session","id":ID,"request":{...},"schedule":B
//    [,"regret_bound":R]}                              — v2
//   {"type":"delta","id":ID,"session":S,"delta":{...},"schedule":B
//    [,"expect_revision":R]}                           — v2 (+R: v3)
//   {"type":"close_session","id":ID,"session":S}                    — v2
//   {"type":"resume_session","id":ID,"session":S,"epoch":"E"}       — v3
//   {"type":"cancel","id":ID}
//   {"type":"stats"}
//   {"type":"ping"}
//
// Server → client:
//
//   {"type":"hello","proto_version":V,"server":"bagsched"} — greeting, sent
//     once per connection before the first NDJSON response (v2+ servers)
//   {"type":"event","id":ID,"event":"queued|started|phase|incumbent|
//    finished",...}                       — streamed request lifecycle
//   {"type":"error","code":C,"message":M[,"id":ID]}   — structured errors
//   {"type":"stats","service":{...},"cache":{...},"server":{...}}
//   {"type":"ok","op":OP,"id":ID,"proto_version":V[,"session":S]
//    [,"epoch":"E","revision":R,"digest":D]}  — session fields: v3
//   {"type":"pong"}
//
// ID is client-assigned (a JSON string or integer, canonicalized to its
// text) and scopes the request on its connection: all event frames for a
// submit echo it back, so one connection can multiplex any number of
// in-flight requests. The request payload and the finished event's result
// reuse the api/serialize JSON shapes verbatim.
//
// Versioning (DESIGN.md §5): kProtoVersion is the server's protocol level.
// Any client frame may declare "proto_version"; the server rejects frames
// from the future (declared version > its own) with an
// "unsupported_version" error and processes undeclared or older versions
// as today — new response fields are additive and unknown frame types are
// skipped by v1 clients, so old clients keep working against new servers.
// Session frames require a v2 server. Up to v2, sessions were scoped to
// their connection and died with it; from v3 sessions are server-scoped:
// a disconnect orphans them for a configurable linger window, during
// which a client presenting the session's epoch token (issued verbatim —
// as a decimal string — in open_session's ok frame) can reclaim them
// with resume_session. The resume ok echoes the committed revision and
// schedule digest so the client can verify where the session is before
// continuing, and delta frames may carry expect_revision to make resent
// commits idempotent across the reconnect (see api/request.h).
#pragma once

#include <cstdint>
#include <string>

#include "api/progress.h"
#include "api/service.h"
#include "cache/solve_cache.h"
#include "util/json.h"

namespace bagsched::net {

/// The protocol level this build speaks.
/// v1: submit/cancel/stats/ping. v2: hello greeting, versioned ok frames,
/// open_session/delta/close_session. v3: durable sessions —
/// resume_session, epoch tokens, expect_revision, recovering state.
inline constexpr int kProtoVersion = 3;

/// Error codes carried by {"type":"error"} frames.
///   parse_error      the line was not a JSON object
///   oversized_frame  the line exceeded the frame-size cap (connection
///                    closes: the stream cannot be resynchronized)
///   bad_request      well-formed JSON, malformed request
///   unknown_solver   a requested solver name is not registered
///   duplicate_id     the id is already in flight on this connection
///   unknown_id       cancel for an id that is not in flight
///   unknown_session  delta/close_session for a session this connection
///                    does not hold open
///   unsupported_version  the frame declared proto_version > the server's
///                    kProtoVersion; re-send without the field (or with a
///                    supported version) to proceed
///   rejected         load shed: the service's max_queue_depth is full
///   draining         the server is draining and takes no new submits
///   recovering       the server is still replaying its journal; only
///                    ping/stats are served — retry shortly (v3)
///   stale_epoch      resume_session named a live session but the epoch
///                    token does not match — the id belongs to another
///                    journal lineage (e.g. reissued after a wipe) (v3)
///   session_owned    resume_session for a session currently bound to
///                    another live connection (v3)
///   timeout          the per-request wall-clock budget expired and the
///                    stuck-solver watchdog escalated: this error IS the
///                    request's terminal frame (any late result is dropped)
/// Codes are plain strings on the wire so clients never break on new ones.
///
/// Event frames carry "degraded":true when the server's overload brown-out
/// rewrote the request to a cheap heuristic solver — the answer is valid
/// but weaker than what was asked for.

/// Connection/byte/frame gauges exported at /metrics next to the
/// ServiceStats and cache counters.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;  ///< gauge
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t oversized_frames = 0;
  std::uint64_t submits = 0;
  std::uint64_t cancels = 0;
  std::uint64_t metrics_requests = 0;
  std::uint64_t healthz_requests = 0;
  /// Orphaned solves cancelled because their client disconnected.
  std::uint64_t disconnect_cancels = 0;
  /// Clients dropped because their outbound buffer exceeded the cap.
  std::uint64_t slow_client_disconnects = 0;
  /// Submits degraded to the brown-out solver under queue-latency pressure.
  std::uint64_t brownouts = 0;
  /// Requests escalated to a "timeout" error by the per-request budget's
  /// stuck-solver watchdog.
  std::uint64_t request_timeouts = 0;
  // --- v2 ---------------------------------------------------------------
  std::uint64_t session_opens = 0;
  std::uint64_t session_deltas = 0;
  std::uint64_t session_closes = 0;
  /// Frames rejected for declaring a proto_version above the server's.
  std::uint64_t version_rejects = 0;
  // --- v3: durable sessions ---------------------------------------------
  /// Sessions successfully reclaimed via resume_session.
  std::uint64_t session_resumes = 0;
  /// resume_session frames refused (unknown_session / stale_epoch /
  /// session_owned / draining).
  std::uint64_t resume_rejects = 0;
  /// Sessions whose connection died inside the linger window (they stay
  /// open, orphaned, until resumed or expired).
  std::uint64_t sessions_orphaned = 0;
  /// Orphaned sessions closed because nobody resumed them in time.
  std::uint64_t orphans_expired = 0;
  /// Frames refused with "recovering" while the journal replayed.
  std::uint64_t recovering_rejects = 0;
};

/// Canonical text of a client-assigned id: a JSON string passes through,
/// an integer becomes its decimal text. Throws std::runtime_error on any
/// other kind (null/bool/array/object/non-integer number).
std::string client_id_text(const util::Json& id);

/// Inverse of api::to_string(api::ProgressKind); throws std::runtime_error
/// on an unknown name.
api::ProgressKind progress_kind_from_string(const std::string& name);

// --- Frame builders (compact dump, no trailing newline) --------------------

/// Event frame for one progress event. Finished events embed the full
/// result (schedule included only when `include_schedule`); `degraded`
/// marks answers produced under overload brown-out.
std::string event_frame(const std::string& id, const api::ProgressEvent& event,
                        bool include_schedule, bool degraded = false);

/// Error frame; `id` is echoed when the error concerns a specific request.
std::string error_frame(const std::string& code, const std::string& message,
                        const std::string* id = nullptr);

/// Versioned ok frame; `session` >0 adds the session id (open_session's
/// acknowledgement carries the freshly assigned id).
std::string ok_frame(const std::string& op, const std::string& id,
                     std::uint64_t session = 0);

/// Session ok frame (open_session / resume_session acknowledgement): the
/// session id, its epoch token (decimal string — full u64 range doesn't
/// survive a JSON double), the committed revision, and — when non-empty —
/// the committed schedule's digest so a resuming client can verify state.
std::string session_ok_frame(const std::string& op, const std::string& id,
                             std::uint64_t session, std::uint64_t epoch,
                             std::uint64_t revision,
                             const std::string& digest = std::string());

std::string pong_frame();

/// Connection greeting: the server's protocol version and software name.
std::string hello_frame();

util::Json to_json(const api::ServiceStats& stats);
util::Json to_json(const cache::CacheStats& stats);
util::Json to_json(const ServerCounters& counters);

std::string stats_frame(const api::ServiceStats& service,
                        const cache::CacheStats& cache,
                        const ServerCounters& server);

}  // namespace bagsched::net
