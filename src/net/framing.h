// Newline-delimited framing for the wire protocol.
//
// The protocol is NDJSON: one JSON document per line, LF-terminated (a
// trailing CR is tolerated so CRLF clients and netcat sessions work).
// LineFramer turns an arbitrary byte stream — frames split across reads,
// several frames merged into one read — back into complete lines:
//
//   net::LineFramer framer(4 << 20);
//   framer.feed(buffer, n);
//   while (auto line = framer.next()) dispatch(*line);
//   if (framer.overflowed()) close_connection();  // oversized frame
//
// A line longer than the configured maximum trips the sticky overflowed()
// state: the connection-level caller is expected to report a structured
// error and close, because the stream can no longer be resynchronized
// safely (the tail of an oversized frame would parse as garbage frames).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>

namespace bagsched::net {

class LineFramer {
 public:
  /// `max_line_bytes` bounds one frame (terminator excluded); 0 = unlimited.
  explicit LineFramer(std::size_t max_line_bytes = 0)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes and splits off every complete line. No-op once
  /// overflowed.
  void feed(const char* data, std::size_t size);
  void feed(const std::string& data) { feed(data.data(), data.size()); }

  /// Next complete line without its terminator; std::nullopt when none is
  /// pending. Empty lines are delivered (callers usually skip them).
  std::optional<std::string> next();

  /// Sticky: a line exceeded max_line_bytes. Complete lines extracted
  /// before the oversized one remain retrievable via next().
  bool overflowed() const { return overflowed_; }

  /// Bytes of the current partial (unterminated) line.
  std::size_t buffered() const { return partial_.size(); }

 private:
  std::size_t max_line_bytes_;
  std::string partial_;
  std::deque<std::string> lines_;
  bool overflowed_ = false;
};

}  // namespace bagsched::net
