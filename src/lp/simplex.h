// Dense two-phase primal simplex.
//
// This is the exact-LP substrate standing in for the theoretical
// Lenstra/Kannan oracle of the paper (see DESIGN.md §3). Scope decisions:
//  * dense tableau — our MILP relaxations are small (hundreds of rows and
//    columns), where a dense tableau beats a sparse revised implementation
//    in both simplicity and constant factors;
//  * Dantzig pricing with an automatic switch to Bland's rule after a burn-in
//    proportional to the problem size, guaranteeing termination;
//  * variable lower bounds handled by shifting; upper bounds by the
//    bounded-variable simplex (nonbasic columns rest at either bound and
//    bound hits become O(rows) flips), so the branch-and-bound's box
//    tightenings never change the tableau shape — the property the warm
//    starts and the persistent IncrementalSimplex build on;
//  * dual-simplex repair pivots for warm starts: a previously optimal
//    basis stays dual feasible under pure bound/RHS changes.
#pragma once

#include <memory>
#include <vector>

#include "lp/model.h"

namespace bagsched::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// A simplex basis snapshot: which tableau column is basic in each
/// standardized row, plus the at-upper flag of every nonbasic column
/// (variable upper bounds are handled by the bounded-variable simplex, not
/// by explicit rows). Opaque to callers except as a warm-start hint for a
/// re-solve of the same model with tightened variable bounds: the column
/// layout depends only on the constraint senses, which bound tightening
/// never changes.
struct Basis {
  std::vector<int> columns;             ///< one per standardized row
  std::vector<unsigned char> at_upper;  ///< one per tableau column
};

struct LpResult {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< values for all model variables
  /// Dual value per model constraint (sign convention: Lagrangian
  /// y with  reduced_cost(col) = c_col - y . a_col  for a minimization
  /// problem). Only filled on Optimal. For Maximize models the duals refer
  /// to the internally minimized (-objective) problem.
  std::vector<double> duals;
  /// Optimal basis, filled on Optimal by lp::solve (see Basis).
  /// IncrementalSimplex::resolve leaves it empty — its warm state lives in
  /// the persistent tableau, and snapshotting per node would dominate the
  /// branch-and-bound loop it serves.
  Basis basis;
  long long iterations = 0;
};

struct SimplexOptions {
  long long max_iterations = 200000;
  double tolerance = 1e-8;
};

/// Solves the model; result.x has one entry per model variable.
/// `warm_basis` (optional) is a basis returned by a previous solve of a
/// structurally identical model (same constraints, bounds possibly
/// tightened). The basis stays dual feasible under such bound changes, so
/// the re-solve runs dual-simplex repair pivots instead of simplex
/// phase 1; a stale basis silently cold-starts.
LpResult solve(const Model& model, const SimplexOptions& options = {},
               const Basis* warm_basis = nullptr);

/// Persistent simplex for branch-and-bound: one tableau kept across many
/// re-solves of the same model under changing variable bounds.
///
/// Bound tightenings change only the standardized right-hand side, never
/// the matrix, so each resolve() recomputes the basic solution through the
/// implicit inverse basis (O(rows^2)) and repairs primal feasibility with
/// a handful of dual-simplex pivots — no model copy, no re-standardization
/// and no phase 1. Requires that re-solves only tighten bounds and that
/// every variable acquiring a finite upper bound already had one at
/// construction (otherwise the standardized row structure would change —
/// callers like milp::solve check this precondition up front).
class IncrementalSimplex {
 public:
  explicit IncrementalSimplex(const Model& model,
                              const SimplexOptions& options = {});
  ~IncrementalSimplex();
  IncrementalSimplex(IncrementalSimplex&&) noexcept;
  IncrementalSimplex& operator=(IncrementalSimplex&&) noexcept;

  /// Re-solves against the variable bounds currently stored in `model`
  /// (which must be the construction model, possibly with tightened
  /// bounds). The first call performs the one full cold solve.
  LpResult resolve(const Model& model);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

const char* to_string(SolveStatus status);

}  // namespace bagsched::lp
