// Dense two-phase primal simplex.
//
// This is the exact-LP substrate standing in for the theoretical
// Lenstra/Kannan oracle of the paper (see DESIGN.md §3). Scope decisions:
//  * dense tableau — our MILP relaxations are small (hundreds of rows and
//    columns), where a dense tableau beats a sparse revised implementation
//    in both simplicity and constant factors;
//  * Dantzig pricing with an automatic switch to Bland's rule after a burn-in
//    proportional to the problem size, guaranteeing termination;
//  * variable lower bounds handled by shifting, upper bounds by explicit
//    rows (branch-and-bound only ever adds bounds, so this keeps the node
//    LPs trivially re-buildable).
#pragma once

#include <vector>

#include "lp/model.h"

namespace bagsched::lp {

enum class SolveStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  SolveStatus status = SolveStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< values for all model variables
  /// Dual value per model constraint (sign convention: Lagrangian
  /// y with  reduced_cost(col) = c_col - y . a_col  for a minimization
  /// problem). Only filled on Optimal. For Maximize models the duals refer
  /// to the internally minimized (-objective) problem.
  std::vector<double> duals;
  long long iterations = 0;
};

struct SimplexOptions {
  long long max_iterations = 200000;
  double tolerance = 1e-8;
};

/// Solves the model; result.x has one entry per model variable.
LpResult solve(const Model& model, const SimplexOptions& options = {});

const char* to_string(SolveStatus status);

}  // namespace bagsched::lp
