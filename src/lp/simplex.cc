#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bagsched::lp {

namespace {

/// One row of the standardized problem: a * x {<=,>=,=} rhs with rhs >= 0.
struct StdRow {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
  bool flipped = false;  ///< standardization multiplied the row by -1
};

/// Dense tableau simplex working on the standardized rows.
class Tableau {
 public:
  Tableau(const std::vector<StdRow>& rows, int num_structural,
          const SimplexOptions& options)
      : num_rows_(static_cast<int>(rows.size())),
        num_structural_(num_structural),
        options_(options) {
    // Column layout: [structural | slack/surplus | artificial], then RHS.
    int extra = 0;
    for (const StdRow& row : rows) {
      if (row.sense != Sense::Equal) ++extra;
    }
    int artificials = 0;
    for (const StdRow& row : rows) {
      if (row.sense != Sense::LessEqual) ++artificials;
    }
    num_cols_ = num_structural_ + extra + artificials;
    first_artificial_ = num_cols_ - artificials;

    matrix_.assign(static_cast<std::size_t>(num_rows_) *
                       (static_cast<std::size_t>(num_cols_) + 1),
                   0.0);
    basis_.assign(static_cast<std::size_t>(num_rows_), -1);

    int next_extra = num_structural_;
    int next_artificial = first_artificial_;
    dual_column_.assign(static_cast<std::size_t>(num_rows_), -1);
    dual_sign_.assign(static_cast<std::size_t>(num_rows_), 0.0);
    for (int r = 0; r < num_rows_; ++r) {
      const StdRow& row = rows[static_cast<std::size_t>(r)];
      for (const auto& [var, coeff] : row.terms) at(r, var) = coeff;
      rhs(r) = row.rhs;
      const double flip = row.flipped ? -1.0 : 1.0;
      switch (row.sense) {
        case Sense::LessEqual:
          at(r, next_extra) = 1.0;
          // y_r = -reduced(slack): slack column is +e_r with zero cost.
          dual_column_[static_cast<std::size_t>(r)] = next_extra;
          dual_sign_[static_cast<std::size_t>(r)] = -flip;
          basis_[static_cast<std::size_t>(r)] = next_extra++;
          break;
        case Sense::GreaterEqual:
          at(r, next_extra) = -1.0;
          // y_r = +reduced(surplus): surplus column is -e_r.
          dual_column_[static_cast<std::size_t>(r)] = next_extra;
          dual_sign_[static_cast<std::size_t>(r)] = flip;
          ++next_extra;
          at(r, next_artificial) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_artificial++;
          break;
        case Sense::Equal:
          at(r, next_artificial) = 1.0;
          // y_r = -reduced(artificial): artificial is +e_r, cost 0 in ph.2.
          dual_column_[static_cast<std::size_t>(r)] = next_artificial;
          dual_sign_[static_cast<std::size_t>(r)] = -flip;
          basis_[static_cast<std::size_t>(r)] = next_artificial++;
          break;
      }
    }
  }

  /// Dual value of standardized row r (valid after an optimal phase 2).
  double dual_of_row(int r) const {
    const int col = dual_column_[static_cast<std::size_t>(r)];
    if (col < 0) return 0.0;
    return dual_sign_[static_cast<std::size_t>(r)] *
           reduced_[static_cast<std::size_t>(col)];
  }

  /// Runs phase 1 (feasibility); returns false on infeasible/limit.
  SolveStatus phase1(long long& iterations) {
    // Cost: minimize sum of artificial variables.
    cost_.assign(static_cast<std::size_t>(num_cols_), 0.0);
    for (int c = first_artificial_; c < num_cols_; ++c) {
      cost_[static_cast<std::size_t>(c)] = 1.0;
    }
    build_reduced_costs();
    const SolveStatus status = iterate(iterations);
    if (status != SolveStatus::Optimal) return status;
    if (objective_value() > 1e-6) return SolveStatus::Infeasible;
    pivot_out_artificials();
    return SolveStatus::Optimal;
  }

  /// Runs phase 2 with the given structural costs (minimization).
  SolveStatus phase2(const std::vector<double>& structural_cost,
                     long long& iterations) {
    cost_.assign(static_cast<std::size_t>(num_cols_), 0.0);
    for (int c = 0; c < num_structural_; ++c) {
      cost_[static_cast<std::size_t>(c)] =
          structural_cost[static_cast<std::size_t>(c)];
    }
    build_reduced_costs();
    return iterate(iterations);
  }

  /// Value of structural variable c in the current basic solution.
  double structural_value(int c) const {
    for (int r = 0; r < num_rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] == c) return rhs_const(r);
    }
    return 0.0;
  }

  double objective_value() const {
    double value = 0.0;
    for (int r = 0; r < num_rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      value += cost_[static_cast<std::size_t>(b)] * rhs_const(r);
    }
    return value;
  }

 private:
  double& at(int r, int c) {
    return matrix_[static_cast<std::size_t>(r) *
                       (static_cast<std::size_t>(num_cols_) + 1) +
                   static_cast<std::size_t>(c)];
  }
  double at_const(int r, int c) const {
    return matrix_[static_cast<std::size_t>(r) *
                       (static_cast<std::size_t>(num_cols_) + 1) +
                   static_cast<std::size_t>(c)];
  }
  double& rhs(int r) { return at(r, num_cols_); }
  double rhs_const(int r) const { return at_const(r, num_cols_); }

  void build_reduced_costs() {
    reduced_.assign(static_cast<std::size_t>(num_cols_) + 1, 0.0);
    for (int c = 0; c <= num_cols_; ++c) {
      double value = (c < num_cols_) ? cost_[static_cast<std::size_t>(c)]
                                     : 0.0;
      for (int r = 0; r < num_rows_; ++r) {
        const int b = basis_[static_cast<std::size_t>(r)];
        value -= cost_[static_cast<std::size_t>(b)] * at_const(r, c);
      }
      reduced_[static_cast<std::size_t>(c)] = value;
    }
  }

  bool column_allowed(int c) const {
    // Artificials may never re-enter the basis once phase 1 is done.
    return !(phase1_done_ && c >= first_artificial_);
  }

  int choose_entering(bool bland) const {
    const double tol = options_.tolerance;
    if (bland) {
      for (int c = 0; c < num_cols_; ++c) {
        if (column_allowed(c) && reduced_[static_cast<std::size_t>(c)] < -tol)
          return c;
      }
      return -1;
    }
    int best = -1;
    double best_value = -tol;
    for (int c = 0; c < num_cols_; ++c) {
      if (!column_allowed(c)) continue;
      const double value = reduced_[static_cast<std::size_t>(c)];
      if (value < best_value) {
        best_value = value;
        best = c;
      }
    }
    return best;
  }

  int choose_leaving(int entering) const {
    const double tol = options_.tolerance;
    int best_row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < num_rows_; ++r) {
      const double pivot = at_const(r, entering);
      if (pivot <= tol) continue;
      const double ratio = rhs_const(r) / pivot;
      // Bland-compatible tie-break: smaller basis index wins.
      if (ratio < best_ratio - tol ||
          (ratio < best_ratio + tol && best_row >= 0 &&
           basis_[static_cast<std::size_t>(r)] <
               basis_[static_cast<std::size_t>(best_row)])) {
        best_ratio = ratio;
        best_row = r;
      }
    }
    return best_row;
  }

  void pivot(int row, int col) {
    const double pivot_value = at(row, col);
    for (int c = 0; c <= num_cols_; ++c) at(row, c) /= pivot_value;
    for (int r = 0; r < num_rows_; ++r) {
      if (r == row) continue;
      const double factor = at(r, col);
      if (factor == 0.0) continue;
      for (int c = 0; c <= num_cols_; ++c) {
        at(r, c) -= factor * at(row, c);
      }
    }
    const double reduced_factor = reduced_[static_cast<std::size_t>(col)];
    if (reduced_factor != 0.0) {
      for (int c = 0; c <= num_cols_; ++c) {
        reduced_[static_cast<std::size_t>(c)] -=
            reduced_factor * at(row, c);
      }
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  SolveStatus iterate(long long& iterations) {
    // Switch to Bland's rule after a burn-in to break potential cycles.
    const long long bland_after =
        64LL * (num_rows_ + num_cols_) + 1024;
    long long local = 0;
    for (;;) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::IterationLimit;
      }
      const bool bland = local > bland_after;
      const int entering = choose_entering(bland);
      if (entering < 0) return SolveStatus::Optimal;
      const int leaving = choose_leaving(entering);
      if (leaving < 0) return SolveStatus::Unbounded;
      pivot(leaving, entering);
      ++iterations;
      ++local;
    }
  }

  /// After phase 1, tries to drive basic artificials (at value 0) out of the
  /// basis; rows where that is impossible are redundant and harmless.
  void pivot_out_artificials() {
    for (int r = 0; r < num_rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < first_artificial_) continue;
      for (int c = 0; c < first_artificial_; ++c) {
        if (std::abs(at_const(r, c)) > options_.tolerance) {
          pivot(r, c);
          break;
        }
      }
    }
    phase1_done_ = true;
  }

  int num_rows_;
  int num_structural_;
  int num_cols_ = 0;
  int first_artificial_ = 0;
  bool phase1_done_ = false;
  SimplexOptions options_;
  std::vector<double> matrix_;   ///< num_rows x (num_cols + 1), row-major
  std::vector<double> reduced_;  ///< reduced costs + objective cell
  std::vector<double> cost_;
  std::vector<int> basis_;
  std::vector<int> dual_column_;   ///< per row: column whose rc encodes y_r
  std::vector<double> dual_sign_;  ///< per row: sign applied to that rc
};

}  // namespace

LpResult solve(const Model& model, const SimplexOptions& options) {
  const int n = model.num_variables();

  // Standardize: shift out lower bounds, turn finite upper bounds into rows,
  // normalize all RHS to be non-negative.
  std::vector<StdRow> rows;
  rows.reserve(static_cast<std::size_t>(model.num_constraints()) +
               static_cast<std::size_t>(n));
  for (const Constraint& constraint : model.constraints()) {
    StdRow row;
    row.sense = constraint.sense;
    double rhs = constraint.rhs;
    for (const auto& [var, coeff] : constraint.terms) {
      rhs -= coeff * model.variable(var).lower;
      row.terms.emplace_back(var, coeff);
    }
    if (rhs < 0.0) {
      rhs = -rhs;
      for (auto& [var, coeff] : row.terms) coeff = -coeff;
      row.flipped = true;
      if (row.sense == Sense::LessEqual) {
        row.sense = Sense::GreaterEqual;
      } else if (row.sense == Sense::GreaterEqual) {
        row.sense = Sense::LessEqual;
      }
    }
    row.rhs = rhs;
    rows.push_back(std::move(row));
  }
  for (int v = 0; v < n; ++v) {
    const Variable& var = model.variable(v);
    if (std::isfinite(var.upper)) {
      StdRow row;
      row.terms.emplace_back(v, 1.0);
      row.sense = Sense::LessEqual;
      row.rhs = var.upper - var.lower;
      rows.push_back(std::move(row));
    }
  }

  Tableau tableau(rows, n, options);

  LpResult result;
  result.x.assign(static_cast<std::size_t>(n), 0.0);

  SolveStatus status = tableau.phase1(result.iterations);
  if (status != SolveStatus::Optimal) {
    result.status = status;
    return result;
  }

  const bool maximize = model.objective() == Objective::Maximize;
  std::vector<double> cost(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    const double c = model.variable(v).objective;
    cost[static_cast<std::size_t>(v)] = maximize ? -c : c;
  }
  status = tableau.phase2(cost, result.iterations);
  result.status = status;
  if (status != SolveStatus::Optimal) return result;

  for (int v = 0; v < n; ++v) {
    result.x[static_cast<std::size_t>(v)] =
        tableau.structural_value(v) + model.variable(v).lower;
  }
  result.objective = model.objective_value(result.x);
  // Duals for the model's own constraints (bound rows are appended after
  // them in `rows` and are not reported).
  result.duals.resize(static_cast<std::size_t>(model.num_constraints()));
  for (int r = 0; r < model.num_constraints(); ++r) {
    result.duals[static_cast<std::size_t>(r)] = tableau.dual_of_row(r);
  }
  return result;
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
  }
  return "?";
}

}  // namespace bagsched::lp
