#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>

namespace bagsched::lp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One row of the standardized problem: a * x {<=,>=,=} rhs, variables
/// shifted to x' in [0, upper - lower]. Standardization never changes the
/// sense: a negative RHS is handled by negating the row numerically
/// (`flipped`), so the tableau column layout depends only on the senses
/// and is invariant under variable-bound changes — the property the warm
/// starts and the persistent IncrementalSimplex rely on. Upper bounds are
/// NOT rows: the bounded-variable simplex keeps nonbasic columns at either
/// bound.
struct StdRow {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
  bool flipped = false;  ///< standardization multiplied the row by -1
};

/// Dense bounded-variable tableau simplex working on the standardized rows.
///
/// Column layout: [structural | slack/surplus (one per non-Equal row) |
/// artificial (one per row)], then RHS; the layout is a function of the
/// senses only. The RHS column always holds the CURRENT basic values x_B
/// (which account for nonbasic-at-upper columns), so pivots update it
/// explicitly rather than by blind row elimination. Every artificial
/// column is +e_r and doubles as column r of the implicit inverse basis.
class Tableau {
 public:
  Tableau(const std::vector<StdRow>& rows, int num_structural,
          const SimplexOptions& options)
      : num_rows_(static_cast<int>(rows.size())),
        num_structural_(num_structural),
        options_(options) {
    int extra = 0;
    for (const StdRow& row : rows) {
      if (row.sense != Sense::Equal) ++extra;
    }
    first_artificial_ = num_structural_ + extra;
    num_cols_ = first_artificial_ + num_rows_;

    matrix_.assign(static_cast<std::size_t>(num_rows_) *
                       (static_cast<std::size_t>(num_cols_) + 1),
                   0.0);
    basis_.assign(static_cast<std::size_t>(num_rows_), -1);
    upper_.assign(static_cast<std::size_t>(num_cols_), kInf);
    at_upper_.assign(static_cast<std::size_t>(num_cols_), 0);
    in_basis_.assign(static_cast<std::size_t>(num_cols_), 0);

    int next_extra = num_structural_;
    dual_column_.assign(static_cast<std::size_t>(num_rows_), -1);
    dual_sign_.assign(static_cast<std::size_t>(num_rows_), 0.0);
    for (int r = 0; r < num_rows_; ++r) {
      const StdRow& row = rows[static_cast<std::size_t>(r)];
      for (const auto& [var, coeff] : row.terms) at(r, var) = coeff;
      rhs(r) = row.rhs;
      const double f = row.flipped ? -1.0 : 1.0;
      const int artificial = first_artificial_ + r;
      at(r, artificial) = 1.0;  // +e_r regardless of flip state
      if (row.sense == Sense::Equal) {
        basis_[static_cast<std::size_t>(r)] = artificial;
        // y_r = -f * reduced(artificial): artificial is +e_r of the
        // (possibly negated) row, cost 0 in phase 2.
        dual_column_[static_cast<std::size_t>(r)] = artificial;
        dual_sign_[static_cast<std::size_t>(r)] = -f;
      } else {
        // Slack (+1 for <=) or surplus (-1 for >=), negated with the row.
        const double base = row.sense == Sense::LessEqual ? 1.0 : -1.0;
        const double coeff = f * base;
        at(r, next_extra) = coeff;
        basis_[static_cast<std::size_t>(r)] =
            coeff > 0.0 ? next_extra : artificial;
        // Dual of the ORIGINAL row from the slack/surplus reduced cost;
        // the f factors from the column sign and the row negation cancel
        // into a sense-only sign.
        dual_column_[static_cast<std::size_t>(r)] = next_extra;
        dual_sign_[static_cast<std::size_t>(r)] =
            row.sense == Sense::LessEqual ? -1.0 : 1.0;
        ++next_extra;
      }
      in_basis_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(r)])] = 1;
    }
  }

  /// Installs the structural upper bounds (in shifted space, i.e.
  /// upper - lower per variable; kInf for unbounded). Must be called
  /// before solving and again whenever the model's bounds change.
  void set_structural_uppers(const std::vector<double>& uppers) {
    for (int c = 0; c < num_structural_; ++c) {
      upper_[static_cast<std::size_t>(c)] =
          uppers[static_cast<std::size_t>(c)];
    }
  }

  /// Dual value of standardized row r (valid after an optimal phase 2).
  double dual_of_row(int r) const {
    const int col = dual_column_[static_cast<std::size_t>(r)];
    if (col < 0) return 0.0;
    return dual_sign_[static_cast<std::size_t>(r)] *
           reduced_[static_cast<std::size_t>(col)];
  }

  /// Runs phase 1 (feasibility); assumes the fresh-construction state
  /// (everything nonbasic at lower, RHS >= 0).
  SolveStatus phase1(long long& iterations) {
    // Cost: minimize sum of artificial variables.
    cost_.assign(static_cast<std::size_t>(num_cols_), 0.0);
    for (int c = first_artificial_; c < num_cols_; ++c) {
      cost_[static_cast<std::size_t>(c)] = 1.0;
    }
    build_reduced_costs();
    const SolveStatus status = iterate(iterations);
    if (status != SolveStatus::Optimal) return status;
    if (objective_value() > 1e-6) return SolveStatus::Infeasible;
    pivot_out_artificials();
    return SolveStatus::Optimal;
  }

  /// Runs phase 2 with the given structural costs (minimization).
  SolveStatus phase2(const std::vector<double>& structural_cost,
                     long long& iterations) {
    load_phase2_costs(structural_cost);
    return iterate(iterations);
  }

  /// Re-establishes a previously optimal basis (columns + at-upper set),
  /// skipping phase 1. Returns false — leaving the tableau unusable — when
  /// the snapshot is structurally invalid or singular. The resulting basic
  /// solution may be primal INfeasible (the usual state after a
  /// branch-and-bound bound tightening); reoptimize() repairs that.
  bool warm_start(const Basis& warm) {
    if (static_cast<int>(warm.columns.size()) != num_rows_) return false;
    if (static_cast<int>(warm.at_upper.size()) != num_cols_) return false;
    for (const int col : warm.columns) {
      if (col < 0 || col >= first_artificial_) return false;
    }
    for (int c = 0; c < num_cols_; ++c) {
      at_upper_[static_cast<std::size_t>(c)] = warm.at_upper[
          static_cast<std::size_t>(c)];
      if (at_upper_[static_cast<std::size_t>(c)] &&
          !std::isfinite(upper_[static_cast<std::size_t>(c)])) {
        return false;
      }
    }
    // Fold the nonbasic-at-upper contributions into the RHS while the
    // matrix still IS the original A (identity basis).
    for (int c = 0; c < num_structural_; ++c) {
      if (!at_upper_[static_cast<std::size_t>(c)]) continue;
      const double u = upper_[static_cast<std::size_t>(c)];
      for (int r = 0; r < num_rows_; ++r) {
        const double a = at(r, c);
        if (a != 0.0) rhs(r) -= a * u;
      }
    }
    // Rows whose current (identity) basis column already belongs to the
    // warm basis keep it without elimination: their column is e_r and
    // stays e_r as long as the row itself is never a pivot row. Only the
    // remaining rows need pivots.
    std::vector<bool> used(warm.columns.size(), false);
    std::vector<int> unmatched_rows;
    for (int r = 0; r < num_rows_; ++r) {
      const int current = basis_[static_cast<std::size_t>(r)];
      bool matched = false;
      for (std::size_t i = 0; i < warm.columns.size(); ++i) {
        if (!used[i] && warm.columns[i] == current) {
          used[i] = true;
          matched = true;
          break;
        }
      }
      if (!matched) unmatched_rows.push_back(r);
    }
    std::vector<int> remaining;
    for (std::size_t i = 0; i < warm.columns.size(); ++i) {
      if (!used[i]) remaining.push_back(warm.columns[i]);
    }
    // Partial pivoting: each unmatched row takes the remaining warm column
    // with the largest pivot element (the row/column assignment is free).
    // These pivots transform the RHS by plain elimination, which is exact
    // here: re-basing changes the representation, not the point.
    for (const int r : unmatched_rows) {
      int pick = -1;
      double best = loose_tolerance();
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        const double value = std::abs(at(r, remaining[i]));
        if (value > best) {
          best = value;
          pick = static_cast<int>(i);
        }
      }
      if (pick < 0) return false;  // singular under this row order
      pivot(r, remaining[static_cast<std::size_t>(pick)], true);
      remaining.erase(remaining.begin() + pick);
    }
    in_basis_.assign(static_cast<std::size_t>(num_cols_), 0);
    for (int r = 0; r < num_rows_; ++r) {
      at_upper_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(r)])] = 0;
      in_basis_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(r)])] = 1;
    }
    phase1_done_ = true;
    return true;
  }

  /// Re-optimizes from a warm basis: when the basis is still dual feasible
  /// (always true after pure RHS/bound changes against a previously
  /// optimal basis), dual-simplex pivots restore primal feasibility, then
  /// primal iterations finish up — usually in zero additional pivots.
  /// Returns nullopt when the basis is neither dual nor primal feasible,
  /// in which case the caller must cold-start from a fresh tableau.
  std::optional<SolveStatus> reoptimize(
      const std::vector<double>& structural_cost, long long& iterations) {
    load_phase2_costs(structural_cost);
    if (dual_feasible()) return repair_and_iterate(iterations);
    // Dual infeasible (stale costs): still usable when primal feasible.
    const double tol = options_.tolerance;
    for (int r = 0; r < num_rows_; ++r) {
      const double value = rhs_const(r);
      const double u =
          upper_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
      if (value < -tol || value > u + tol) return std::nullopt;
    }
    return iterate(iterations);
  }

  /// True when every allowed column's reduced cost respects its bound
  /// state (>= 0 at lower, <= 0 at upper, tolerantly).
  bool dual_feasible() const {
    const double tol = loose_tolerance();
    for (int c = 0; c < num_cols_; ++c) {
      if (!column_allowed(c)) continue;
      const double r = reduced_[static_cast<std::size_t>(c)];
      if (at_upper_[static_cast<std::size_t>(c)] ? r > tol : r < -tol) {
        return false;
      }
    }
    return true;
  }

  /// Dual-simplex repair of primal feasibility from a dual-feasible basis,
  /// followed by primal iterations to optimality.
  SolveStatus repair_and_iterate(long long& iterations) {
    const double tol = options_.tolerance;
    for (;;) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::IterationLimit;
      }
      // Leaving row: the basic value violating its box the most.
      int row = -1;
      bool above = false;
      double worst = tol;
      for (int r = 0; r < num_rows_; ++r) {
        const double value = rhs_const(r);
        if (-value > worst) {
          worst = -value;
          row = r;
          above = false;
        }
        const double u = upper_[static_cast<std::size_t>(
            basis_[static_cast<std::size_t>(r)])];
        if (std::isfinite(u) && value - u > worst) {
          worst = value - u;
          row = r;
          above = true;
        }
      }
      if (row < 0) break;  // primal feasible
      // Entering column: dual ratio test over sign-valid columns. For a
      // below-lower violation the leaving value must rise, for an
      // above-upper one it must drop; at-upper columns move downwards.
      int col = -1;
      double best_ratio = kInf;
      for (int c = 0; c < num_cols_; ++c) {
        if (!column_allowed(c) || in_basis_[static_cast<std::size_t>(c)]) {
          continue;
        }
        const double a = at_const(row, c);
        const bool up = at_upper_[static_cast<std::size_t>(c)] != 0;
        bool valid;
        if (!above) {
          valid = up ? a > tol : a < -tol;
        } else {
          valid = up ? a < -tol : a > tol;
        }
        if (!valid) continue;
        const double r = reduced_[static_cast<std::size_t>(c)];
        const double ratio = (up ? -r : r) / std::abs(a);
        // Harris-style tie-break: among (near-)tied ratios — ubiquitous on
        // these degenerate assignment LPs — take the largest pivot
        // element, which both stabilizes the basis and stalls less.
        if (ratio < best_ratio - tol ||
            (ratio < best_ratio + tol && col >= 0 &&
             std::abs(a) > std::abs(at_const(row, col)))) {
          best_ratio = ratio;
          col = c;
        }
      }
      if (col < 0) return SolveStatus::Infeasible;  // dual ray
      // Drive the leaving variable exactly onto its violated bound.
      const int leaving = basis_[static_cast<std::size_t>(row)];
      const double target =
          above ? upper_[static_cast<std::size_t>(leaving)] : 0.0;
      bounded_pivot(row, col, (rhs_const(row) - target) / at_const(row, col));
      at_upper_[static_cast<std::size_t>(leaving)] = above ? 1 : 0;
      ++iterations;
    }
    return iterate(iterations);
  }

  /// Recomputes the basic solution for new standardized RHS + bounds
  /// through the implicit inverse basis: effective_rhs = std_rhs minus the
  /// at-upper structural columns (given by `structural_cols`, the original
  /// sparse matrix columns), then x_B = B^-1 * effective_rhs where column
  /// r of B^-1 is the artificial column of row r.
  void update_rhs(
      const std::vector<double>& std_rhs,
      const std::vector<std::vector<std::pair<int, double>>>&
          structural_cols) {
    scratch_.assign(static_cast<std::size_t>(num_rows_), 0.0);
    effective_.assign(std_rhs.begin(), std_rhs.end());
    for (int c = 0; c < num_structural_; ++c) {
      if (!at_upper_[static_cast<std::size_t>(c)]) continue;
      const double u = upper_[static_cast<std::size_t>(c)];
      for (const auto& [r, a] : structural_cols[static_cast<std::size_t>(c)]) {
        effective_[static_cast<std::size_t>(r)] -= a * u;
      }
    }
    for (int k = 0; k < num_rows_; ++k) {
      const double value = effective_[static_cast<std::size_t>(k)];
      if (value == 0.0) continue;
      const int col = first_artificial_ + k;
      for (int r = 0; r < num_rows_; ++r) {
        scratch_[static_cast<std::size_t>(r)] += value * at_const(r, col);
      }
    }
    for (int r = 0; r < num_rows_; ++r) {
      rhs(r) = scratch_[static_cast<std::size_t>(r)];
    }
  }

  /// Writes all structural values at once (x must have num_structural
  /// entries): nonbasic columns contribute their bound, basic rows their
  /// current value.
  void structural_values(std::vector<double>& x) const {
    for (int c = 0; c < num_structural_; ++c) {
      x[static_cast<std::size_t>(c)] =
          at_upper_[static_cast<std::size_t>(c)]
              ? upper_[static_cast<std::size_t>(c)]
              : 0.0;
    }
    for (int r = 0; r < num_rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < num_structural_) {
        x[static_cast<std::size_t>(b)] = rhs_const(r);
      }
    }
  }

  double objective_value() const {
    double value = 0.0;
    for (int r = 0; r < num_rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      value += cost_[static_cast<std::size_t>(b)] * rhs_const(r);
    }
    for (int c = 0; c < num_cols_; ++c) {
      if (at_upper_[static_cast<std::size_t>(c)]) {
        value += cost_[static_cast<std::size_t>(c)] *
                 upper_[static_cast<std::size_t>(c)];
      }
    }
    return value;
  }

  Basis snapshot() const {
    Basis basis;
    basis.columns = basis_;
    basis.at_upper = at_upper_;
    return basis;
  }

 private:
  double& at(int r, int c) {
    return matrix_[static_cast<std::size_t>(r) *
                       (static_cast<std::size_t>(num_cols_) + 1) +
                   static_cast<std::size_t>(c)];
  }
  double at_const(int r, int c) const {
    return matrix_[static_cast<std::size_t>(r) *
                       (static_cast<std::size_t>(num_cols_) + 1) +
                   static_cast<std::size_t>(c)];
  }
  double& rhs(int r) { return at(r, num_cols_); }
  double rhs_const(int r) const { return at_const(r, num_cols_); }

  void load_phase2_costs(const std::vector<double>& structural_cost) {
    cost_.assign(static_cast<std::size_t>(num_cols_), 0.0);
    for (int c = 0; c < num_structural_; ++c) {
      cost_[static_cast<std::size_t>(c)] =
          structural_cost[static_cast<std::size_t>(c)];
    }
    build_reduced_costs();
  }

  void build_reduced_costs() {
    reduced_.assign(static_cast<std::size_t>(num_cols_), 0.0);
    for (int c = 0; c < num_cols_; ++c) {
      double value = cost_[static_cast<std::size_t>(c)];
      for (int r = 0; r < num_rows_; ++r) {
        const int b = basis_[static_cast<std::size_t>(r)];
        value -= cost_[static_cast<std::size_t>(b)] * at_const(r, c);
      }
      reduced_[static_cast<std::size_t>(c)] = value;
    }
  }

  bool column_allowed(int c) const {
    // Artificials may never re-enter the basis once phase 1 is done.
    return !(phase1_done_ && c >= first_artificial_);
  }

  /// Slightly looser threshold than the pivot tolerance, absorbing the
  /// round-off that accumulates across warm restarts. Scales with the
  /// configured tolerance so looser SimplexOptions stay self-consistent.
  double loose_tolerance() const { return 10.0 * options_.tolerance; }

  /// Eliminates column `col` into +e_row (matrix + reduced costs). The RHS
  /// column is transformed only when `with_rhs` (warm-start re-basing);
  /// the solving loops update it explicitly through bounded_pivot.
  void pivot(int row, int col, bool with_rhs) {
    const double pivot_value = at(row, col);
    const int limit = with_rhs ? num_cols_ + 1 : num_cols_;
    // The elimination only ever reads the pivot row's nonzeros; indexing
    // them once cuts the O(rows * cols) update to its support.
    pivot_cols_.clear();
    for (int c = 0; c < limit; ++c) {
      double& value = at(row, c);
      if (value == 0.0) continue;
      value /= pivot_value;
      pivot_cols_.push_back(c);
    }
    const double* prow =
        &matrix_[static_cast<std::size_t>(row) *
                 (static_cast<std::size_t>(num_cols_) + 1)];
    for (int r = 0; r < num_rows_; ++r) {
      if (r == row) continue;
      const double factor = at(r, col);
      if (factor == 0.0) continue;
      double* target = &matrix_[static_cast<std::size_t>(r) *
                                (static_cast<std::size_t>(num_cols_) + 1)];
      for (const int c : pivot_cols_) {
        target[c] -= factor * prow[c];
      }
      target[col] = 0.0;  // exact by construction; keep it sparse
    }
    // During warm-start re-basing the reduced costs are not built yet.
    if (!reduced_.empty()) {
      const double reduced_factor = reduced_[static_cast<std::size_t>(col)];
      if (reduced_factor != 0.0) {
        for (const int c : pivot_cols_) {
          if (c < num_cols_) {
            reduced_[static_cast<std::size_t>(c)] -=
                reduced_factor * prow[c];
          }
        }
        reduced_[static_cast<std::size_t>(col)] = 0.0;
      }
    }
    in_basis_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(row)])] = 0;
    in_basis_[static_cast<std::size_t>(col)] = 1;
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// Makes `col` basic in `row` with the entering variable moving by
  /// delta_j from its current bound, updating the basic values explicitly
  /// (the RHS column holds x_B, not B^-1 b, once at-upper columns exist).
  void bounded_pivot(int row, int col, double delta_j) {
    const double entering_old =
        at_upper_[static_cast<std::size_t>(col)]
            ? upper_[static_cast<std::size_t>(col)]
            : 0.0;
    for (int r = 0; r < num_rows_; ++r) {
      const double a = at_const(r, col);
      if (a != 0.0) rhs(r) -= delta_j * a;
    }
    rhs(row) = entering_old + delta_j;
    at_upper_[static_cast<std::size_t>(col)] = 0;
    pivot(row, col, false);
  }

  SolveStatus iterate(long long& iterations) {
    // Switch to Bland's rule after a burn-in to break potential cycles.
    const long long bland_after = 64LL * (num_rows_ + num_cols_) + 1024;
    const double tol = options_.tolerance;
    long long local = 0;
    for (;;) {
      if (iterations >= options_.max_iterations) {
        return SolveStatus::IterationLimit;
      }
      const bool bland = local > bland_after;
      // Entering column: most negative reduced cost at lower bound, most
      // positive at upper bound (Dantzig), or first eligible (Bland).
      int entering = -1;
      int dir = 0;
      double best_score = -tol;
      for (int c = 0; c < num_cols_; ++c) {
        if (!column_allowed(c) || in_basis_[static_cast<std::size_t>(c)]) {
          continue;
        }
        const bool up = at_upper_[static_cast<std::size_t>(c)] != 0;
        const double r = reduced_[static_cast<std::size_t>(c)];
        const double score = up ? -r : r;
        if (score < best_score) {
          best_score = score;
          entering = c;
          dir = up ? -1 : 1;
          if (bland) break;
        }
      }
      if (entering < 0) return SolveStatus::Optimal;

      // Bounded ratio test: the entering variable moves by t in direction
      // dir; basic values move by -dir * t * a. Blockers are basics
      // hitting either end of their box, or the entering variable
      // reaching its own opposite bound (a pivot-free flip).
      double t_limit = upper_[static_cast<std::size_t>(entering)];
      int block_row = -1;
      bool block_above = false;
      for (int r = 0; r < num_rows_; ++r) {
        const double a = at_const(r, entering);
        const double delta = -dir * a;  // d x_B[r] / dt
        if (delta < -tol) {
          const double limit = rhs_const(r) / -delta;
          if (limit < t_limit - tol ||
              (limit < t_limit + tol && block_row >= 0 &&
               basis_[static_cast<std::size_t>(r)] <
                   basis_[static_cast<std::size_t>(block_row)])) {
            t_limit = limit;
            block_row = r;
            block_above = false;
          }
        } else if (delta > tol) {
          const double u = upper_[static_cast<std::size_t>(
              basis_[static_cast<std::size_t>(r)])];
          if (!std::isfinite(u)) continue;
          const double limit = (u - rhs_const(r)) / delta;
          if (limit < t_limit - tol ||
              (limit < t_limit + tol && block_row >= 0 &&
               basis_[static_cast<std::size_t>(r)] <
                   basis_[static_cast<std::size_t>(block_row)])) {
            t_limit = limit;
            block_row = r;
            block_above = true;
          }
        }
      }
      if (block_row < 0) {
        if (!std::isfinite(t_limit)) return SolveStatus::Unbounded;
        // Bound flip: the entering variable crosses to its other bound
        // without any basis change — O(rows) instead of a pivot.
        const double delta_j = dir * t_limit;
        for (int r = 0; r < num_rows_; ++r) {
          const double a = at_const(r, entering);
          if (a != 0.0) rhs(r) -= delta_j * a;
        }
        at_upper_[static_cast<std::size_t>(entering)] ^= 1;
      } else {
        const int leaving = basis_[static_cast<std::size_t>(block_row)];
        bounded_pivot(block_row, entering,
                      dir * std::max(t_limit, 0.0));
        at_upper_[static_cast<std::size_t>(leaving)] = block_above ? 1 : 0;
      }
      ++iterations;
      ++local;
    }
  }

  /// After phase 1, tries to drive basic artificials (at value ~0) out of
  /// the basis; rows where that is impossible are redundant and harmless.
  void pivot_out_artificials() {
    const double tol = options_.tolerance;
    for (int r = 0; r < num_rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < first_artificial_) continue;
      for (int c = 0; c < first_artificial_; ++c) {
        if (std::abs(at_const(r, c)) > tol) {
          // Drive the artificial exactly to zero; the entering variable
          // absorbs the (tiny) residual.
          const int leaving = b;
          bounded_pivot(r, c, rhs_const(r) / at_const(r, c));
          at_upper_[static_cast<std::size_t>(leaving)] = 0;
          break;
        }
      }
    }
    phase1_done_ = true;
  }

  int num_rows_;
  int num_structural_;
  int num_cols_ = 0;
  int first_artificial_ = 0;
  bool phase1_done_ = false;
  SimplexOptions options_;
  std::vector<double> matrix_;   ///< num_rows x (num_cols + 1), row-major
  std::vector<double> reduced_;  ///< reduced costs per column
  std::vector<double> cost_;
  std::vector<int> basis_;
  std::vector<double> upper_;          ///< box size per column (shifted)
  std::vector<unsigned char> at_upper_;  ///< nonbasic-at-upper flags
  std::vector<unsigned char> in_basis_;  ///< membership flag per column
  std::vector<int> dual_column_;   ///< per row: column whose rc encodes y_r
  std::vector<double> dual_sign_;  ///< per row: sign applied to that rc
  std::vector<double> scratch_;    ///< update_rhs workspace
  std::vector<double> effective_;  ///< update_rhs workspace
  std::vector<int> pivot_cols_;    ///< pivot-row support workspace
};

/// Standardized rows for the model: lower bounds shifted out, negative RHS
/// handled by numeric negation (sense preserved). Upper bounds do not
/// produce rows — the bounded-variable simplex handles them.
std::vector<StdRow> standardize(const Model& model) {
  std::vector<StdRow> rows;
  rows.reserve(static_cast<std::size_t>(model.num_constraints()));
  for (const Constraint& constraint : model.constraints()) {
    StdRow row;
    row.sense = constraint.sense;
    double rhs = constraint.rhs;
    for (const auto& [var, coeff] : constraint.terms) {
      rhs -= coeff * model.variable(var).lower;
      row.terms.emplace_back(var, coeff);
    }
    if (rhs < 0.0) {
      rhs = -rhs;
      for (auto& [var, coeff] : row.terms) coeff = -coeff;
      row.flipped = true;
    }
    row.rhs = rhs;
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Shifted upper bounds (upper - lower) per variable.
std::vector<double> shifted_uppers(const Model& model) {
  std::vector<double> uppers(
      static_cast<std::size_t>(model.num_variables()), kInf);
  for (int v = 0; v < model.num_variables(); ++v) {
    const Variable& var = model.variable(v);
    if (std::isfinite(var.upper)) {
      uppers[static_cast<std::size_t>(v)] = var.upper - var.lower;
    }
  }
  return uppers;
}

/// True when some variable's bounds cross (empty box -> infeasible).
bool bounds_crossed(const Model& model, double tol) {
  for (int v = 0; v < model.num_variables(); ++v) {
    const Variable& var = model.variable(v);
    if (var.lower > var.upper + tol) return true;
  }
  return false;
}

/// Shared result assembly for lp::solve and IncrementalSimplex::resolve:
/// structural values shifted back by the lower bounds, objective, duals
/// and (optionally — the incremental path keeps its warm state in the
/// tableau instead) the basis snapshot.
void fill_result(const Tableau& tableau, const Model& model,
                 SolveStatus status, bool with_basis, LpResult& result) {
  result.status = status;
  if (status != SolveStatus::Optimal) return;
  tableau.structural_values(result.x);
  for (int v = 0; v < model.num_variables(); ++v) {
    result.x[static_cast<std::size_t>(v)] += model.variable(v).lower;
  }
  result.objective = model.objective_value(result.x);
  result.duals.resize(static_cast<std::size_t>(model.num_constraints()));
  for (int r = 0; r < model.num_constraints(); ++r) {
    result.duals[static_cast<std::size_t>(r)] = tableau.dual_of_row(r);
  }
  if (with_basis) result.basis = tableau.snapshot();
}

}  // namespace

LpResult solve(const Model& model, const SimplexOptions& options,
               const Basis* warm_basis) {
  const int n = model.num_variables();

  LpResult result;
  result.x.assign(static_cast<std::size_t>(n), 0.0);
  if (bounds_crossed(model, options.tolerance)) {
    result.status = SolveStatus::Infeasible;
    return result;
  }

  const std::vector<StdRow> rows = standardize(model);
  const std::vector<double> uppers = shifted_uppers(model);

  const bool maximize = model.objective() == Objective::Maximize;
  std::vector<double> cost(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    const double c = model.variable(v).objective;
    cost[static_cast<std::size_t>(v)] = maximize ? -c : c;
  }

  if (warm_basis != nullptr) {
    Tableau tableau(rows, n, options);
    tableau.set_structural_uppers(uppers);
    if (tableau.warm_start(*warm_basis)) {
      // Dual-simplex repair + primal finish replaces phase 1 entirely;
      // its outcomes (including Infeasible and Unbounded) are genuine.
      if (const auto status = tableau.reoptimize(cost, result.iterations)) {
        fill_result(tableau, model, *status, /*with_basis=*/true, result);
        return result;
      }
    }
    // Stale or singular basis: fall through to a fresh cold start.
  }

  Tableau tableau(rows, n, options);
  tableau.set_structural_uppers(uppers);
  SolveStatus status = tableau.phase1(result.iterations);
  if (status != SolveStatus::Optimal) {
    result.status = status;
    return result;
  }
  fill_result(tableau, model, tableau.phase2(cost, result.iterations),
              /*with_basis=*/true, result);
  return result;
}

struct IncrementalSimplex::Impl {
  SimplexOptions options;
  int n = 0;
  std::vector<StdRow> rows;        ///< standardized at setup; flips fixed
  std::vector<double> flip_base;   ///< per row: flip_sign * original rhs
  /// Original standardized matrix, column-wise per structural variable:
  /// (row, coefficient) — needed to fold at-upper columns into the RHS.
  std::vector<std::vector<std::pair<int, double>>> structural_cols;
  std::vector<double> cost;        ///< minimization-oriented costs
  std::unique_ptr<Tableau> tableau;
  std::vector<double> std_rhs;     ///< workspace
  std::vector<double> uppers;      ///< workspace (shifted uppers)
  bool ready = false;  ///< tableau carries a reusable (dual-feasible) basis

  /// (Re-)standardizes against the model's current bounds. Fixes the flip
  /// pattern — and with it the matrix — until the next rebuild.
  void setup(const Model& model) {
    n = model.num_variables();
    rows = standardize(model);
    flip_base.assign(rows.size(), 0.0);
    structural_cols.assign(static_cast<std::size_t>(n), {});
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const double f = rows[r].flipped ? -1.0 : 1.0;
      flip_base[r] =
          f * model.constraint(static_cast<int>(r)).rhs;
      for (const auto& [var, coeff] : rows[r].terms) {
        structural_cols[static_cast<std::size_t>(var)].emplace_back(
            static_cast<int>(r), coeff);
      }
    }
    cost.assign(static_cast<std::size_t>(n), 0.0);
    const bool maximize = model.objective() == Objective::Maximize;
    for (int v = 0; v < n; ++v) {
      const double c = model.variable(v).objective;
      cost[static_cast<std::size_t>(v)] = maximize ? -c : c;
    }
    tableau = std::make_unique<Tableau>(rows, n, options);
  }

  /// Standardized RHS under the model's current bounds, using the flip
  /// pattern fixed at setup (entries may be negative; dual simplex copes).
  void compute_rhs(const Model& model) {
    std_rhs.assign(rows.size(), 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      double rhs = flip_base[r];
      for (const auto& [var, coeff] : rows[r].terms) {
        rhs -= coeff * model.variable(var).lower;
      }
      std_rhs[r] = rhs;
    }
  }

  LpResult extract(const Model& model, SolveStatus status,
                   long long iterations) const {
    LpResult result;
    result.iterations = iterations;
    result.x.assign(static_cast<std::size_t>(n), 0.0);
    // No basis snapshot: the warm state lives in the persistent tableau,
    // and copying it per node would dominate the hot branch-and-bound
    // loop this class exists for.
    fill_result(*tableau, model, status, /*with_basis=*/false, result);
    return result;
  }

  LpResult resolve(const Model& model) {
    long long iterations = 0;
    if (bounds_crossed(model, options.tolerance)) {
      LpResult result;
      result.status = SolveStatus::Infeasible;
      result.x.assign(static_cast<std::size_t>(n), 0.0);
      return result;
    }
    if (!ready) {
      // Cold start: standardize fresh (RHS >= 0 under the current bounds
      // by construction), full phase 1 + phase 2.
      setup(model);
      tableau->set_structural_uppers(shifted_uppers(model));
      SolveStatus status = tableau->phase1(iterations);
      if (status == SolveStatus::Optimal) {
        status = tableau->phase2(cost, iterations);
        // Phase-2 costs are loaded into the reduced costs, so the basis
        // is reusable; a phase-1 failure leaves phase-1 costs behind and
        // forces a rebuild on the next resolve.
        ready = true;
      }
      return extract(model, status, iterations);
    }
    uppers = shifted_uppers(model);
    tableau->set_structural_uppers(uppers);
    compute_rhs(model);
    tableau->update_rhs(std_rhs, structural_cols);
    if (!tableau->dual_feasible()) {
      // An abandoned primal iteration (LP iteration limit) can leave the
      // basis dual infeasible; rebuild once from scratch.
      ready = false;
      return resolve(model);
    }
    const SolveStatus status = tableau->repair_and_iterate(iterations);
    return extract(model, status, iterations);
  }
};

IncrementalSimplex::IncrementalSimplex(const Model& model,
                                       const SimplexOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  impl_->n = model.num_variables();  // the full setup runs on first resolve
}

IncrementalSimplex::~IncrementalSimplex() = default;
IncrementalSimplex::IncrementalSimplex(IncrementalSimplex&&) noexcept =
    default;
IncrementalSimplex& IncrementalSimplex::operator=(
    IncrementalSimplex&&) noexcept = default;

LpResult IncrementalSimplex::resolve(const Model& model) {
  return impl_->resolve(model);
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterationLimit: return "iteration-limit";
  }
  return "?";
}

}  // namespace bagsched::lp
