#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace bagsched::lp {

int Model::add_variable(double objective_coeff, double lower, double upper,
                        std::string name) {
  if (lower < 0.0) {
    throw std::invalid_argument("Model: variable lower bounds must be >= 0");
  }
  if (upper < lower) {
    throw std::invalid_argument("Model: upper < lower bound");
  }
  variables_.push_back(Variable{objective_coeff, lower, upper,
                                std::move(name)});
  return num_variables() - 1;
}

int Model::add_constraint(std::vector<std::pair<int, double>> terms,
                          Sense sense, double rhs) {
  std::map<int, double> merged;
  for (const auto& [var, coeff] : terms) {
    if (var < 0 || var >= num_variables()) {
      throw std::invalid_argument("Model: constraint references unknown var");
    }
    merged[var] += coeff;
  }
  Constraint constraint;
  constraint.sense = sense;
  constraint.rhs = rhs;
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) constraint.terms.emplace_back(var, coeff);
  }
  constraints_.push_back(std::move(constraint));
  return num_constraints() - 1;
}

double Model::objective_value(const std::vector<double>& x) const {
  double value = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    value += variables_[static_cast<std::size_t>(v)].objective *
             x[static_cast<std::size_t>(v)];
  }
  return value;
}

double Model::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    const Variable& var = variables_[static_cast<std::size_t>(v)];
    const double value = x[static_cast<std::size_t>(v)];
    worst = std::max(worst, var.lower - value);
    if (std::isfinite(var.upper)) worst = std::max(worst, value - var.upper);
  }
  for (const Constraint& constraint : constraints_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : constraint.terms) {
      lhs += coeff * x[static_cast<std::size_t>(var)];
    }
    switch (constraint.sense) {
      case Sense::LessEqual:
        worst = std::max(worst, lhs - constraint.rhs);
        break;
      case Sense::GreaterEqual:
        worst = std::max(worst, constraint.rhs - lhs);
        break;
      case Sense::Equal:
        worst = std::max(worst, std::abs(lhs - constraint.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace bagsched::lp
