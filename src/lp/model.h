// Linear-program model builder.
//
// Variables are continuous and non-negative by default with optional finite
// lower/upper bounds; constraints are sparse rows with <=, >= or = sense.
// The model is solver-agnostic: lp::Simplex consumes it directly and
// milp::BranchAndBound layers integrality on top.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace bagsched::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { LessEqual, GreaterEqual, Equal };
enum class Objective { Minimize, Maximize };

struct Variable {
  double objective = 0.0;
  double lower = 0.0;
  double upper = kInfinity;
  std::string name;
};

struct Constraint {
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coeff)
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
};

class Model {
 public:
  /// Adds a variable; returns its index.
  int add_variable(double objective_coeff, double lower = 0.0,
                   double upper = kInfinity, std::string name = {});

  /// Adds a constraint; returns its index. Zero/duplicate coefficients are
  /// merged; terms referencing unknown variables throw.
  int add_constraint(std::vector<std::pair<int, double>> terms, Sense sense,
                     double rhs);

  void set_objective(Objective objective) { objective_ = objective; }
  Objective objective() const { return objective_; }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }

  const Variable& variable(int index) const {
    return variables_[static_cast<std::size_t>(index)];
  }
  Variable& mutable_variable(int index) {
    return variables_[static_cast<std::size_t>(index)];
  }
  const Constraint& constraint(int index) const {
    return constraints_[static_cast<std::size_t>(index)];
  }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value of a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Max violation of any constraint or bound at x (0 when feasible).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  Objective objective_ = Objective::Minimize;
};

}  // namespace bagsched::lp
