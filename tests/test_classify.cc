// Tests for the EPTAS preprocessing: grid rounding, Lemma 1 k-selection,
// job classes and priority-bag designation (Definition 2).
#include <gtest/gtest.h>

#include <cmath>

#include "eptas/classify.h"
#include "gen/generators.h"

namespace bagsched {
namespace {

using eptas::Classification;
using eptas::EptasConfig;
using eptas::JobClass;
using model::Instance;

/// Scales an instance by 1/guess like the driver does.
Instance scaled_copy(const Instance& instance, double guess) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  return Instance::from_vectors(sizes, bags, instance.num_machines());
}

TEST(ClassifyTest, RoundsOntoGrid) {
  const Instance instance =
      Instance::from_vectors({0.3, 0.45, 0.7, 0.05}, {0, 1, 2, 3}, 4);
  const auto cls = eptas::classify(instance, 0.5, EptasConfig{});
  ASSERT_TRUE(cls.has_value());
  for (int j = 0; j < instance.num_jobs(); ++j) {
    const double rounded = cls->size_of(j);
    EXPECT_GE(rounded, instance.job(j).size - 1e-12);
    EXPECT_LE(rounded, instance.job(j).size * 1.5 + 1e-12);
    // Power of 1.5: log must be integral.
    const double log_value = std::log(rounded) / std::log(1.5);
    EXPECT_NEAR(log_value, std::round(log_value), 1e-6);
  }
}

TEST(ClassifyTest, RejectsOversizedJob) {
  // A job of size 2 cannot fit below makespan guess 1 (even rounded).
  const Instance instance = Instance::from_vectors({2.0}, {0}, 1);
  EXPECT_FALSE(eptas::classify(instance, 0.5, EptasConfig{}).has_value());
}

TEST(ClassifyTest, RejectsExcessArea) {
  // Area 4 on 2 machines: guess 1 is hopeless.
  const Instance instance =
      Instance::from_vectors({1, 1, 1, 1}, {0, 1, 2, 3}, 2);
  EXPECT_FALSE(eptas::classify(instance, 0.25, EptasConfig{}).has_value());
}

TEST(ClassifyTest, Lemma1BandAreaSmall) {
  // The chosen k must satisfy the Lemma 1 inequality.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto planted = gen::planted({.num_machines = 6,
                                       .num_bags = 12,
                                       .min_jobs_per_machine = 3,
                                       .max_jobs_per_machine = 6,
                                       .target = 1.0,
                                       .seed = seed});
    const double eps = 0.5;
    const auto cls = eptas::classify(planted.instance, eps, EptasConfig{});
    ASSERT_TRUE(cls.has_value()) << "seed " << seed;
    EXPECT_GE(cls->k, 1);
    EXPECT_LE(cls->k, static_cast<int>(std::ceil(1.0 / (eps * eps))));
    double band_area = 0.0;
    for (int j = 0; j < planted.instance.num_jobs(); ++j) {
      const double p = cls->size_of(j);
      if (p >= cls->medium_threshold - 1e-15 &&
          p < cls->large_threshold - 1e-15) {
        band_area += p;
      }
    }
    EXPECT_LE(band_area,
              eps * eps * planted.instance.num_machines() + 1e-6);
  }
}

TEST(ClassifyTest, ClassesMatchThresholds) {
  const auto planted = gen::planted({.num_machines = 8,
                                     .num_bags = 16,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 8,
                                     .target = 1.0,
                                     .seed = 3});
  const auto cls = eptas::classify(planted.instance, 0.5, EptasConfig{});
  ASSERT_TRUE(cls.has_value());
  for (int j = 0; j < planted.instance.num_jobs(); ++j) {
    const double p = cls->size_of(j);
    switch (cls->class_of(j)) {
      case JobClass::Large:
        EXPECT_GE(p, cls->large_threshold - 1e-12);
        break;
      case JobClass::Medium:
        EXPECT_GE(p, cls->medium_threshold - 1e-12);
        EXPECT_LT(p, cls->large_threshold + 1e-12);
        break;
      case JobClass::Small:
        EXPECT_LT(p, cls->medium_threshold + 1e-12);
        break;
    }
  }
}

TEST(ClassifyTest, ThresholdsAreEpsPowers) {
  const Instance instance = Instance::from_vectors({0.5}, {0}, 1);
  const auto cls = eptas::classify(instance, 0.5, EptasConfig{});
  ASSERT_TRUE(cls.has_value());
  EXPECT_NEAR(cls->large_threshold, std::pow(0.5, cls->k), 1e-12);
  EXPECT_NEAR(cls->medium_threshold, std::pow(0.5, cls->k + 1), 1e-12);
  EXPECT_NEAR(cls->target_height, 1.0 + 2 * 0.5 + 0.25, 1e-12);
}

TEST(ClassifyTest, LargeBagsAreDetectedAndPriority) {
  // One bag with every large job (>= eps*m of them) must be a large bag.
  const int m = 4;
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  for (int i = 0; i < 4; ++i) {  // 4 >= eps*m = 2 large jobs in bag 0
    sizes.push_back(0.8);
    bags.push_back(0);
  }
  sizes.push_back(0.01);
  bags.push_back(1);
  const Instance instance = Instance::from_vectors(sizes, bags, m);
  const auto cls = eptas::classify(instance, 0.5, EptasConfig{});
  ASSERT_TRUE(cls.has_value());
  EXPECT_TRUE(cls->is_large_bag[0]);
  EXPECT_TRUE(cls->is_priority[0]);
  EXPECT_FALSE(cls->is_large_bag[1]);
}

TEST(ClassifyTest, PriorityCapRespected) {
  EptasConfig config;
  config.max_priority_total = 3;
  const auto planted = gen::planted({.num_machines = 10,
                                     .num_bags = 30,
                                     .min_jobs_per_machine = 3,
                                     .max_jobs_per_machine = 5,
                                     .target = 1.0,
                                     .seed = 7});
  const auto cls =
      eptas::classify(planted.instance, 0.5, config);
  ASSERT_TRUE(cls.has_value());
  int priority = 0, large_bags = 0;
  for (std::size_t l = 0; l < cls->is_priority.size(); ++l) {
    if (cls->is_priority[l]) ++priority;
    if (cls->is_large_bag[l]) ++large_bags;
  }
  EXPECT_LE(priority, std::max(config.max_priority_total, large_bags));
}

TEST(ClassifyTest, PriorityBagsHoldTheLargestSizeCounts) {
  // The top bag per large size (by size-restricted count) must be priority.
  const int m = 6;
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  // Bag 0: five jobs of size 0.5 (dominant); bags 1..5 one each.
  for (int i = 0; i < 5; ++i) {
    sizes.push_back(0.5);
    bags.push_back(0);
  }
  for (int i = 1; i <= 5; ++i) {
    sizes.push_back(0.5);
    bags.push_back(static_cast<model::BagId>(i));
  }
  const Instance instance = Instance::from_vectors(sizes, bags, m);
  const auto cls = eptas::classify(instance, 0.5, EptasConfig{});
  ASSERT_TRUE(cls.has_value());
  EXPECT_TRUE(cls->is_priority[0]);
}

TEST(ClassifyTest, PaperBPrimeFormula) {
  EXPECT_EQ(eptas::paper_b_prime(1, 1.0), 2);      // (1*1+1)*1
  EXPECT_EQ(eptas::paper_b_prime(2, 3.0), 21);     // (2*3+1)*3
  EXPECT_EQ(eptas::paper_b_prime(3, 2.5), 30);     // ceil(q)=3: (3*3+1)*3
}

TEST(ClassifyTest, ScaledInstanceHelperConsistency) {
  const auto planted = gen::planted({.num_machines = 4,
                                     .num_bags = 8,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 4,
                                     .target = 3.0,
                                     .seed = 5});
  const Instance scaled = scaled_copy(planted.instance, 3.0);
  // After scaling by OPT the area bound is m: classification must succeed.
  EXPECT_TRUE(eptas::classify(scaled, 0.5, EptasConfig{}).has_value());
}

}  // namespace
}  // namespace bagsched
