// Chaos and resilience tests: the deterministic fault-injection framework
// (triggers, seeding, reproducible fired sequences), the retrying client's
// recovery behaviour under injected transport failures, the server's
// per-request budget escalation, overload brown-out and /healthz, graceful
// drain racing injected faults, and a seeded loopback chaos run driving
// hundreds of requests with faults firing at every registered point.
//
// The chaos seed is printed on every run and read back from
// BAGSCHED_CHAOS_SEED, so a CI failure is replayed locally with
//   BAGSCHED_CHAOS_SEED=<printed seed> ./test_chaos
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "api/serialize.h"
#include "net/client.h"
#include "net/server.h"
#include "util/fault.h"

namespace bagsched {
namespace {

using net::Client;
using net::RetryingClient;
using net::RetryPolicy;
using net::SchedServer;
using net::ServerConfig;
namespace fault = util::fault;

api::SolveRequest quick_request(std::uint64_t seed = 1,
                                const char* solver = "greedy-bags") {
  api::SolveOptions options;
  options.seed = seed;
  return api::make_request(api::make_instance("uniform", 30, 4, options),
                           options, {solver});
}

/// A request the worker cannot finish within any test budget (exact B&B on
/// 60 jobs); resolves only via cancellation or its generous time limit.
api::SolveRequest slow_request() {
  api::SolveOptions options;
  options.time_limit_seconds = 30.0;
  options.seed = 3;
  return api::make_request(api::make_instance("uniform", 60, 8, options),
                           options, {"exact"});
}

ServerConfig test_config() {
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.service.num_threads = 2;
  config.service.max_concurrent = 2;
  return config;
}

/// Every test must leave injection disabled, whatever path it exits by.
struct FaultGuard {
  ~FaultGuard() { fault::disable(); }
};

/// Aborts the whole process (printing `context`) if `done` is not set
/// within `seconds` — a hung chaos run fails loudly instead of tripping
/// the ctest timeout with no diagnostics.
class HangWatchdog {
 public:
  HangWatchdog(double seconds, std::string context)
      : context_(std::move(context)),
        thread_([this, seconds] {
          std::unique_lock<std::mutex> lock(mutex_);
          if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                            [this] { return done_; })) {
            std::fprintf(stderr, "HANG: %s\n", context_.c_str());
            std::fflush(stderr);
            std::_Exit(2);
          }
        }) {}

  ~HangWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::string context_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

/// Raw blocking HTTP GET over an already-open socket — used to probe
/// /healthz on a connection that predates the drain (the listener is
/// closed while draining, so a fresh connect cannot reach the 503 path).
std::string raw_http_get(int fd, const std::string& target) {
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  return response;
}

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// --- Fault framework -------------------------------------------------------

TEST(FaultFrameworkTest, DisabledByDefaultAndAfterDisable) {
  FaultGuard guard;
  fault::disable();
  EXPECT_FALSE(fault::enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(BAGSCHED_FAULT("chaos.test.disabled"));
  }
  EXPECT_EQ(fault::fires("chaos.test.disabled"), 0u);
}

TEST(FaultFrameworkTest, NthFiresExactlyOnceAndEveryFiresPeriodically) {
  FaultGuard guard;
  fault::configure("chaos.test.nth=n3");
  std::vector<int> fired;
  for (int call = 1; call <= 10; ++call) {
    if (BAGSCHED_FAULT("chaos.test.nth")) fired.push_back(call);
  }
  EXPECT_EQ(fired, std::vector<int>{3});

  fault::configure("chaos.test.nth=e4");  // same point, new trigger
  fired.clear();
  for (int call = 1; call <= 10; ++call) {
    if (BAGSCHED_FAULT("chaos.test.nth")) fired.push_back(call);
  }
  EXPECT_EQ(fired, (std::vector<int>{4, 8}));
}

TEST(FaultFrameworkTest, LastMatchingRuleWinsAndOffMasksGlobs) {
  FaultGuard guard;
  fault::configure("chaos.test.glob.*=p1.0;chaos.test.glob.masked=off");
  EXPECT_TRUE(BAGSCHED_FAULT("chaos.test.glob.hot"));
  EXPECT_FALSE(BAGSCHED_FAULT("chaos.test.glob.masked"));
}

TEST(FaultFrameworkTest, ProbabilitySequenceIsAPureFunctionOfTheSeed) {
  FaultGuard guard;
  const auto run = [](std::uint64_t seed) {
    fault::configure("chaos.test.prob=p0.2", seed);
    for (int i = 0; i < 500; ++i) {
      (void)BAGSCHED_FAULT("chaos.test.prob");
    }
    for (const auto& point : fault::snapshot()) {
      if (point.name == "chaos.test.prob") {
        EXPECT_EQ(point.calls, 500u);
        return point.fired_calls;
      }
    }
    return std::vector<std::uint64_t>{};
  };
  const auto first = run(42);
  const auto replay = run(42);
  const auto other = run(43);
  // p=0.2 over 500 calls: far from zero and far from all.
  EXPECT_GT(first.size(), 50u);
  EXPECT_LT(first.size(), 200u);
  EXPECT_EQ(first, replay);  // identical seed → identical fired sequence
  EXPECT_NE(first, other);
}

TEST(FaultFrameworkTest, MalformedSpecsThrow) {
  FaultGuard guard;
  EXPECT_THROW(fault::configure("no-equals-sign"), std::invalid_argument);
  EXPECT_THROW(fault::configure("a=p1.5"), std::invalid_argument);
  EXPECT_THROW(fault::configure("a=n0"), std::invalid_argument);
  EXPECT_THROW(fault::configure("a=zebra"), std::invalid_argument);
  EXPECT_FALSE(fault::enabled());  // a failed configure never half-enables
}

// --- Client timeouts and typed errors --------------------------------------

TEST(ChaosClientTest, ConnectRefusedThrowsConnectionError) {
  SchedServer probe(test_config());
  probe.start();
  const std::uint16_t dead_port = probe.port();
  probe.stop();
  probe.wait();
  EXPECT_THROW(Client::connect("127.0.0.1", dead_port, 1.0),
               net::ConnectionError);
}

TEST(ChaosClientTest, ReadTimeoutThrowsTimedOutDistinctly) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  // The exact B&B cannot answer within 300ms, so the bounded read expires.
  try {
    client.solve(slow_request(), "slow", false, {}, true,
                 /*read_timeout_seconds=*/0.3);
    FAIL() << "expected TimedOut";
  } catch (const net::TimedOut&) {
  } catch (const net::ConnectionError& error) {
    FAIL() << "wrong error type: " << error.what();
  }
  client.close();  // mid-frame state is unknown after a timeout
  server.stop();
  server.wait();
}

TEST(ChaosClientTest, RetryRecoversFromInjectedSendFailure) {
  FaultGuard guard;
  SchedServer server(test_config());
  server.start();
  // The first send on the connection fails; the retry layer reconnects and
  // resubmits under the same id.
  fault::configure("net.client.send=n1", 7);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.005;
  policy.max_backoff_seconds = 0.02;
  RetryingClient client("127.0.0.1", server.port(), policy);
  const api::SolveResult result = client.solve(quick_request(), "retry-1");
  EXPECT_TRUE(result.ok());
  EXPECT_GE(client.stats().attempts, 2u);
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_EQ(client.stats().recovered, 1u);
  client.close();
  server.stop();
  server.wait();
}

TEST(ChaosClientTest, RetryGivesUpAfterMaxAttempts) {
  FaultGuard guard;
  SchedServer server(test_config());
  server.start();
  fault::configure("net.client.connect=p1.0", 7);  // every connect fails
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.002;
  policy.max_backoff_seconds = 0.01;
  RetryingClient client("127.0.0.1", server.port(), policy);
  EXPECT_THROW(client.solve(quick_request(), "doomed"),
               net::ConnectionError);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().recovered, 0u);
  server.stop();
  server.wait();
}

TEST(ChaosClientTest, ProtocolErrorFramesAreAnswersNotRetried) {
  SchedServer server(test_config());
  server.start();
  RetryingClient client("127.0.0.1", server.port());
  api::SolveRequest request = quick_request();
  request.solvers = {"no-such-solver"};
  try {
    client.solve(request, "bad-solver");
    FAIL() << "expected a protocol error";
  } catch (const net::ConnectionError&) {
    FAIL() << "protocol errors must not surface as transport errors";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown_solver"),
              std::string::npos);
  }
  EXPECT_EQ(client.stats().attempts, 1u);  // no retry on a definitive answer
  client.close();
  server.stop();
  server.wait();
}

// --- Server budget, brown-out, healthz -------------------------------------

TEST(ChaosServerTest, BudgetEscalatesStuckSolverToTimeoutError) {
  FaultGuard guard;
  HangWatchdog watchdog(60.0, "budget escalation test");
  ServerConfig config = test_config();
  config.request_budget_seconds = 0.05;
  config.stuck_grace_seconds = 0.05;
  SchedServer server(config);
  server.start();
  // Every cancellation poll of the exact solver sleeps 250ms with the
  // token unchecked mid-sleep: the budget's cooperative cancel at 50ms
  // goes unnoticed long past the escalation instant at 100ms.
  fault::configure("solver.stall.exact=e1", 11);
  auto client = Client::connect("127.0.0.1", server.port());
  client.submit(slow_request(), "stuck");
  std::string terminal_code;
  for (;;) {
    auto frame = client.read_frame(/*timeout_seconds=*/30.0);
    ASSERT_TRUE(frame.has_value()) << "connection closed before a terminal";
    const std::string type = frame->string_or("type", "");
    if (type == "error") {
      terminal_code = frame->string_or("code", "");
      break;
    }
    if (type == "event" &&
        frame->string_or("event", "") == "finished") {
      FAIL() << "escalated request must terminate with the timeout error, "
                "not a finished event";
    }
  }
  EXPECT_EQ(terminal_code, "timeout");
  // No second terminal frame arrives for the id: the late (cancelled)
  // result is suppressed at the sink. A short bounded read must time out.
  EXPECT_THROW(client.read_frame(0.6), net::TimedOut);
  EXPECT_GE(server.counters().request_timeouts, 1u);
  client.close();
  server.stop();
  server.wait();
}

TEST(ChaosServerTest, BrownOutDegradesUnderQueuePressure) {
  HangWatchdog watchdog(60.0, "brown-out test");
  ServerConfig config = test_config();
  config.service.max_concurrent = 1;
  config.brownout_queue_latency_seconds = 0.001;
  SchedServer server(config);
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  // Occupy the single slot, park a second request in the queue for ~100ms,
  // then release: the queued request's wait raises the EWMA over 1ms.
  client.submit(slow_request(), "blocker");
  client.submit(quick_request(2), "queued");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  client.cancel("blocker");
  int terminals = 0;
  while (terminals < 2) {
    auto frame = client.read_frame(30.0);
    ASSERT_TRUE(frame.has_value());
    const std::string type = frame->string_or("type", "");
    if (type == "error" ||
        (type == "event" && frame->string_or("event", "") == "finished")) {
      ++terminals;
    }
  }
  // The next submit lands in brown-out: answered by bag-lpt even though it
  // asked for the exact solver, and flagged degraded on the wire.
  api::SolveRequest degraded_request = quick_request(3);
  degraded_request.solvers = {"exact"};
  client.submit(degraded_request, "browned");
  for (;;) {
    auto frame = client.read_frame(30.0);
    ASSERT_TRUE(frame.has_value());
    if (frame->string_or("type", "") == "event" &&
        frame->string_or("event", "") == "finished") {
      EXPECT_TRUE(frame->bool_or("degraded", false));
      const util::Json* result = frame->find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_EQ(result->string_or("solver", ""), "bag-lpt");
      break;
    }
  }
  EXPECT_GE(server.counters().brownouts, 1u);
  client.close();
  server.stop();
  server.wait();
}

TEST(ChaosServerTest, HealthzReports200LiveAnd503Draining) {
  HangWatchdog watchdog(60.0, "healthz test");
  ServerConfig config = test_config();
  config.drain_grace_seconds = 0.2;
  SchedServer server(config);
  server.start();
  const auto [status, body] = net::fetch_healthz("127.0.0.1", server.port());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  EXPECT_GE(server.counters().healthz_requests, 1u);
  // The 503 path needs a connection that predates the drain — draining
  // closes the listener, which is itself the "not ready" signal for fresh
  // probes. The drain spares connections that have not sent their first
  // line precisely so a probe's in-flight GET still gets its answer.
  const int fd = raw_connect(server.port());
  ASSERT_GE(fd, 0);
  server.request_drain();
  const std::string response = raw_http_get(fd, "/healthz");
  ::close(fd);
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("draining"), std::string::npos);
  server.wait();
}

// --- Drain racing injected faults ------------------------------------------

TEST(ChaosDrainTest, GracefulDrainSurvivesFaultsMidFlight) {
  FaultGuard guard;
  HangWatchdog watchdog(120.0, "drain race test");
  ServerConfig config = test_config();
  config.drain_grace_seconds = 0.5;
  SchedServer server(config);
  server.start();
  fault::configure(
      "net.server.read=p0.03;net.server.write=p0.03;"
      "net.server.read.short=p0.1;net.server.write.short=p0.1;"
      "service.execute=p0.1",
      99);
  std::atomic<int> resolved{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([t, &server, &resolved] {
      RetryPolicy policy;
      policy.max_attempts = 5;
      policy.connect_timeout_seconds = 5.0;
      policy.read_timeout_seconds = 10.0;
      policy.initial_backoff_seconds = 0.002;
      policy.max_backoff_seconds = 0.02;
      policy.seed = 0xd12a + static_cast<std::uint64_t>(t);
      RetryingClient client("127.0.0.1", server.port(), policy);
      for (int i = 0; i < 15; ++i) {
        const std::string id =
            "drain-" + std::to_string(t) + "-" + std::to_string(i);
        try {
          (void)client.solve(
              quick_request(static_cast<std::uint64_t>(t * 100 + i)), id);
          ++resolved;
        } catch (const std::exception&) {
          // Draining rejections and exhausted retries both terminate the
          // request cleanly; what matters is that nothing hangs.
        }
      }
    });
  }
  // Start the drain while the clients are mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_drain();
  for (auto& thread : clients) thread.join();
  server.wait();  // must return: no hang, every request terminal
  EXPECT_GT(resolved.load(), 0);
  const auto service = server.service().stats();
  EXPECT_EQ(service.queue_depth, 0u);
  EXPECT_EQ(service.active, 0u);
  EXPECT_EQ(service.submitted, service.finished);
}

// --- The chaos run ---------------------------------------------------------

TEST(ChaosSuiteTest, SeededChaosRunRecoversAndSettles) {
  FaultGuard guard;
  HangWatchdog watchdog(240.0, "chaos run");
  std::uint64_t seed = 0xc4a05;
  if (const char* env = std::getenv("BAGSCHED_CHAOS_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  // Printed FIRST: a failure anywhere below is replayed with
  // BAGSCHED_CHAOS_SEED=<seed>.
  std::printf("chaos seed: %llu\n",
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);

  ServerConfig config = test_config();
  config.service.num_threads = 4;
  config.service.max_concurrent = 4;
  config.request_budget_seconds = 20.0;  // backstop, not the common path
  config.stuck_grace_seconds = 2.0;
  config.drain_grace_seconds = 2.0;
  SchedServer server(config);
  server.start();

  // p≈0.05 (and below for the fatal points) at every registered fault
  // point. The solver stalls get a sparse every-N trigger: each fire costs
  // 250ms of injected stall, so probability triggers would dominate the
  // run's wall clock without adding coverage.
  fault::configure(
      "net.client.connect=p0.05;net.client.send=p0.05;"
      "net.client.recv=p0.05;net.client.recv.short=p0.05;"
      "net.server.accept=p0.05;net.server.read=p0.02;"
      "net.server.read.short=p0.05;net.server.write=p0.02;"
      "net.server.write.short=p0.05;"
      "service.execute=p0.05;cache.insert=p0.5;"
      "solver.stall.local_search=e7;solver.stall.exact=e50",
      seed);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;  // 240 requests total
  std::atomic<int> terminal{0};   // requests that reached ANY terminal state
  std::atomic<int> answered{0};   // terminal via a SolveResult (recovered)
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &server, &terminal, &answered] {
      RetryPolicy policy;
      policy.max_attempts = 6;
      policy.connect_timeout_seconds = 10.0;
      policy.read_timeout_seconds = 30.0;
      policy.initial_backoff_seconds = 0.002;
      policy.max_backoff_seconds = 0.05;
      policy.seed = 0xfeed + static_cast<std::uint64_t>(t);
      RetryingClient client("127.0.0.1", server.port(), policy);
      for (int i = 0; i < kPerThread; ++i) {
        const std::string id =
            "chaos-" + std::to_string(t) + "-" + std::to_string(i);
        // Mostly quick heuristic solves; every 8th runs local-search so
        // the solver stall points see traffic too.
        api::SolveRequest request =
            i % 8 == 7
                ? quick_request(static_cast<std::uint64_t>(t * 1000 + i),
                                "local-search")
                : quick_request(static_cast<std::uint64_t>(t * 1000 + i));
        // Route results through the solve cache so the cache.insert fault
        // point (simulated memory pressure) sees traffic too. The time
        // limit must sit below the server's request budget: a request
        // whose deadline clamps the solver is (correctly) considered
        // truncated and never stored.
        request.options.cache_mode = api::CacheMode::ReadWrite;
        request.options.time_limit_seconds = 10.0;
        try {
          // Any SolveResult is a terminal answer — including Error results
          // from injected service.execute faults and Cancelled ones.
          (void)client.solve(request, id, /*want_progress=*/i % 3 == 0);
          ++answered;
        } catch (const net::ConnectionError&) {
          // Retries exhausted: terminal, but not recovered.
        } catch (const net::TimedOut&) {
        } catch (const std::runtime_error&) {
          // A structured protocol error frame: terminal answer.
          ++answered;
        }
        ++terminal;
      }
    });
  }
  for (auto& thread : workers) thread.join();

  const int total = kThreads * kPerThread;
  EXPECT_EQ(terminal.load(), total);  // every request reached a terminal state
  // The retry layer must recover ≥99% of requests across the injected
  // disconnects (the acceptance bar for this suite).
  EXPECT_GE(answered.load(), (total * 99) / 100)
      << "chaos seed " << seed << ": only " << answered.load() << "/"
      << total << " requests recovered";

  // Faults really fired — at client points, server points and the service.
  EXPECT_GT(fault::fires("net.client.*"), 0u);
  EXPECT_GT(fault::fires("net.server.*"), 0u);
  EXPECT_GT(fault::fires("service.execute"), 0u);
  EXPECT_GT(fault::fires("cache.insert"), 0u);

  // Drain with faults still armed, then verify the service settled: every
  // accepted request resolved, nothing queued, nothing running.
  server.request_drain();
  server.wait();
  const auto service = server.service().stats();
  EXPECT_EQ(service.queue_depth, 0u);
  EXPECT_EQ(service.active, 0u);
  EXPECT_EQ(service.submitted, service.finished);
}

}  // namespace
}  // namespace bagsched
