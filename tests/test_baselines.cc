// Tests for the baseline schedulers: LPT (Graham bound), bag-LPT (paper
// Lemma 8 invariants), greedy list scheduling with bags, and local search.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/bag_lpt.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"
#include "sched/lpt.h"

namespace bagsched {
namespace {

using model::Instance;
using model::Schedule;

TEST(LptTest, BalancesEqualJobs) {
  const Instance instance = Instance::without_bags({1, 1, 1, 1}, 2);
  const Schedule schedule = sched::lpt(instance);
  const auto loads = schedule.loads(instance);
  EXPECT_DOUBLE_EQ(loads[0], 2.0);
  EXPECT_DOUBLE_EQ(loads[1], 2.0);
}

TEST(LptTest, GrahamBoundHolds) {
  // LPT is a (4/3 - 1/(3m))-approximation; check against the area/pmax
  // lower bound on random instances.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::UniformParams params;
    params.num_jobs = 50;
    params.num_machines = 7;
    params.seed = seed;
    const Instance instance = gen::uniform(params);
    const Schedule schedule = sched::lpt(instance);
    const double bound = model::combined_lower_bound(instance);
    const double ratio = schedule.makespan(instance) / bound;
    EXPECT_LE(ratio, 4.0 / 3.0 + 1e-9) << "seed " << seed;
  }
}

TEST(BagLptTest, ProducesFeasibleSchedules) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = gen::by_name("bagheavy", 60, 8, seed);
    const Schedule schedule = sched::bag_lpt(instance);
    EXPECT_TRUE(model::validate(instance, schedule).ok()) << seed;
  }
}

TEST(BagLptTest, Lemma8SpreadBound) {
  // Lemma 8: starting from equal heights, any two machines end within
  // p_max of each other.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::BagHeavyParams params;
    params.num_machines = 6;
    params.num_bags = 5;
    params.fill = 1.0;  // every bag has exactly m jobs: bag-LPT's home turf
    params.seed = seed;
    const Instance instance = gen::bag_heavy(params);
    const Schedule schedule = sched::bag_lpt(instance);
    const auto loads = schedule.loads(instance);
    const double lo = *std::min_element(loads.begin(), loads.end());
    const double hi = *std::max_element(loads.begin(), loads.end());
    EXPECT_LE(hi - lo, instance.max_size() + 1e-9) << "seed " << seed;
  }
}

TEST(BagLptTest, Lemma8HeightBound) {
  // Lemma 8 second part: highest machine <= h + x + pmax where x = A/m'.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::BagHeavyParams params;
    params.num_machines = 5;
    params.num_bags = 7;
    params.fill = 1.0;
    params.seed = seed + 100;
    const Instance instance = gen::bag_heavy(params);
    const Schedule schedule = sched::bag_lpt(instance);
    const double x = instance.total_area() / instance.num_machines();
    EXPECT_LE(schedule.makespan(instance),
              x + instance.max_size() + 1e-9);
  }
}

TEST(BagLptTest, ThrowsOnInfeasibleInstance) {
  const Instance instance = Instance::from_vectors({1, 1, 1}, {0, 0, 0}, 2);
  EXPECT_THROW(sched::bag_lpt(instance), std::invalid_argument);
}

TEST(BagLptAssignTest, RespectsInitialLoads) {
  // One bag, two machines with loads {0, 10}: the bigger job goes to the
  // empty machine.
  const Instance instance =
      Instance::from_vectors({5.0, 1.0}, {0, 0}, 2);
  std::vector<sched::LptBag> bags{{{0, 1}}};
  const auto assignment =
      sched::bag_lpt_assign(instance, bags, {0.0, 10.0});
  EXPECT_EQ(assignment[0][0], 0);  // job 0 (size 5) -> machine 0
  EXPECT_EQ(assignment[0][1], 1);
}

TEST(BagLptAssignTest, RejectsOversizedBag) {
  const Instance instance =
      Instance::from_vectors({1.0, 1.0, 1.0}, {0, 0, 0}, 3);
  std::vector<sched::LptBag> bags{{{0, 1, 2}}};
  EXPECT_THROW(sched::bag_lpt_assign(instance, bags, {0.0, 0.0}),
               std::invalid_argument);
}

TEST(GreedyBagsTest, AlwaysFeasibleAcrossFamilies) {
  for (const auto& family : gen::family_names()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = gen::by_name(family, 40, 6, seed);
      const Schedule schedule = sched::greedy_bags(instance);
      EXPECT_TRUE(model::validate(instance, schedule).ok())
          << family << " seed " << seed;
    }
  }
}

TEST(GreedyBagsTest, TightBagSpreadsAcrossMachines) {
  // A bag with exactly m jobs must occupy every machine.
  gen::Figure1Params params;
  params.num_machines = 4;
  const Instance instance = gen::figure1(params).instance;
  const Schedule schedule = sched::greedy_bags(instance);
  std::vector<bool> machine_has_bag0(4, false);
  for (const auto& job : instance.jobs()) {
    if (job.bag == 0) {
      machine_has_bag0[static_cast<std::size_t>(
          schedule.machine_of(job.id))] = true;
    }
  }
  for (bool has : machine_has_bag0) EXPECT_TRUE(has);
}

TEST(GreedyStackLargeFirstTest, FallsIntoFigure1Trap) {
  // The stacking heuristic must produce a makespan of 5/3 * OPT on the
  // figure-1 family (that is the family's purpose): two stacked 2/3-jobs
  // plus a forced 1/3-job of the tight bag.
  const auto planted = gen::figure1({.num_machines = 6, .scale = 1.0,
                                     .seed = 2});
  const Schedule trapped =
      sched::greedy_stack_large_first(planted.instance, 0.5);
  EXPECT_TRUE(model::validate(planted.instance, trapped).ok());
  EXPECT_GE(trapped.makespan(planted.instance),
            5.0 / 3.0 * planted.opt - 1e-9);
}

TEST(LocalSearchTest, NeverWorseThanGreedy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = gen::by_name("uniform", 50, 6, seed);
    const double greedy =
        sched::greedy_bags(instance).makespan(instance);
    const Schedule improved = sched::local_search(instance);
    EXPECT_TRUE(model::validate(instance, improved).ok());
    EXPECT_LE(improved.makespan(instance), greedy + 1e-9);
  }
}

TEST(LocalSearchTest, SolvesFigure1ToOptimum) {
  // Relocate/swap moves undo the stacking trap.
  const auto planted = gen::figure1({.num_machines = 4, .scale = 1.0,
                                     .seed = 3});
  const Schedule schedule = sched::local_search(planted.instance);
  EXPECT_NEAR(schedule.makespan(planted.instance), planted.opt, 1e-9);
}

TEST(LocalSearchTest, ImproveOnExistingSchedule) {
  const Instance instance = gen::by_name("twopoint", 40, 5, 4);
  Schedule schedule = sched::greedy_bags(instance);
  const double before = schedule.makespan(instance);
  sched::improve(instance, schedule);
  EXPECT_LE(schedule.makespan(instance), before + 1e-12);
  EXPECT_TRUE(model::validate(instance, schedule).ok());
}

}  // namespace
}  // namespace bagsched
