// Unit tests for the model module: Instance invariants, Schedule
// validation, lower bounds, and text I/O round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "model/instance.h"
#include "model/io.h"
#include "model/lower_bounds.h"
#include "model/schedule.h"

namespace bagsched {
namespace {

using model::Instance;
using model::Schedule;

Instance tiny() {
  // 4 jobs, 2 machines, 2 bags: bag 0 = {0, 1}, bag 1 = {2, 3}.
  return Instance::from_vectors({1.0, 2.0, 3.0, 4.0}, {0, 0, 1, 1}, 2);
}

TEST(InstanceTest, BasicAccessors) {
  const Instance instance = tiny();
  EXPECT_EQ(instance.num_jobs(), 4);
  EXPECT_EQ(instance.num_machines(), 2);
  EXPECT_EQ(instance.num_bags(), 2);
  EXPECT_DOUBLE_EQ(instance.total_area(), 10.0);
  EXPECT_DOUBLE_EQ(instance.max_size(), 4.0);
  EXPECT_EQ(instance.bag_size(0), 2);
  EXPECT_EQ(instance.max_bag_size(), 2);
  EXPECT_TRUE(instance.is_feasible());
}

TEST(InstanceTest, InfeasibleWhenBagExceedsMachines) {
  const Instance instance =
      Instance::from_vectors({1, 1, 1}, {0, 0, 0}, 2);
  EXPECT_FALSE(instance.is_feasible());
}

TEST(InstanceTest, WithoutBagsGivesSingletons) {
  const Instance instance = Instance::without_bags({1, 2, 3}, 2);
  EXPECT_EQ(instance.num_bags(), 3);
  EXPECT_EQ(instance.max_bag_size(), 1);
}

TEST(InstanceTest, RejectsNonPositiveSizes) {
  EXPECT_THROW(Instance::from_vectors({0.0}, {0}, 1),
               std::invalid_argument);
  EXPECT_THROW(Instance::from_vectors({-1.0}, {0}, 1),
               std::invalid_argument);
}

TEST(InstanceTest, RejectsBadBagIds) {
  std::vector<model::Job> jobs(1);
  jobs[0].size = 1.0;
  jobs[0].bag = 5;
  EXPECT_THROW(Instance(jobs, 2, 2), std::invalid_argument);
}

TEST(InstanceTest, RejectsZeroMachines) {
  EXPECT_THROW(Instance({}, 0, 0), std::invalid_argument);
}

TEST(ScheduleTest, LoadsAndMakespan) {
  const Instance instance = tiny();
  Schedule schedule(4, 2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  schedule.assign(2, 0);
  schedule.assign(3, 1);
  const auto loads = schedule.loads(instance);
  EXPECT_DOUBLE_EQ(loads[0], 4.0);  // 1 + 3
  EXPECT_DOUBLE_EQ(loads[1], 6.0);  // 2 + 4
  EXPECT_DOUBLE_EQ(schedule.makespan(instance), 6.0);
}

TEST(ScheduleTest, ValidDetectsComplete) {
  const Instance instance = tiny();
  Schedule schedule(4, 2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  schedule.assign(2, 1);
  schedule.assign(3, 0);
  const auto result = model::validate(instance, schedule);
  EXPECT_TRUE(result.ok()) << result.message;
}

TEST(ScheduleTest, ValidateDetectsUnassigned) {
  const Instance instance = tiny();
  Schedule schedule(4, 2);
  schedule.assign(0, 0);
  const auto result = model::validate(instance, schedule);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.unassigned_jobs, 3);
}

TEST(ScheduleTest, ValidateDetectsBagConflict) {
  const Instance instance = tiny();
  Schedule schedule(4, 2);
  schedule.assign(0, 0);
  schedule.assign(1, 0);  // bag 0 twice on machine 0
  schedule.assign(2, 1);
  schedule.assign(3, 0);
  const auto result = model::validate(instance, schedule);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.bag_feasible);
  EXPECT_EQ(result.bag_conflicts, 1);
}

TEST(ScheduleTest, SwapJobs) {
  Schedule schedule(2, 2);
  schedule.assign(0, 0);
  schedule.assign(1, 1);
  schedule.swap_jobs(0, 1);
  EXPECT_EQ(schedule.machine_of(0), 1);
  EXPECT_EQ(schedule.machine_of(1), 0);
}

TEST(ScheduleTest, RequireValidThrows) {
  const Instance instance = tiny();
  Schedule schedule(4, 2);
  EXPECT_THROW(model::require_valid(instance, schedule, "test"),
               std::logic_error);
}

TEST(LowerBoundsTest, AreaAndPmax) {
  const Instance instance = tiny();
  EXPECT_DOUBLE_EQ(model::area_lower_bound(instance), 5.0);
  EXPECT_DOUBLE_EQ(model::pmax_lower_bound(instance), 4.0);
}

TEST(LowerBoundsTest, PairingBoundWhenMoreJobsThanMachines) {
  // Sizes sorted desc: 4 3 2 1, m = 2 -> bound = 3 + 2 = 5.
  const Instance instance = tiny();
  EXPECT_DOUBLE_EQ(model::pairing_lower_bound(instance), 5.0);
}

TEST(LowerBoundsTest, PairingZeroWhenFewJobs) {
  const Instance instance = Instance::from_vectors({5.0}, {0}, 2);
  EXPECT_DOUBLE_EQ(model::pairing_lower_bound(instance), 0.0);
}

TEST(LowerBoundsTest, CombinedIsMax) {
  const Instance instance = tiny();
  EXPECT_DOUBLE_EQ(model::combined_lower_bound(instance), 5.0);
}

TEST(LowerBoundsTest, BoundsNeverExceedOptOnKnownInstance) {
  // Perfect split exists: {4,1} and {3,2} -> OPT = 5.
  const Instance instance = tiny();
  EXPECT_LE(model::combined_lower_bound(instance), 5.0 + 1e-12);
}

TEST(IoTest, InstanceRoundTrip) {
  const Instance instance = tiny();
  std::stringstream stream;
  model::write_instance(stream, instance);
  const Instance loaded = model::read_instance(stream);
  EXPECT_EQ(loaded.num_jobs(), instance.num_jobs());
  EXPECT_EQ(loaded.num_machines(), instance.num_machines());
  EXPECT_EQ(loaded.num_bags(), instance.num_bags());
  for (int j = 0; j < instance.num_jobs(); ++j) {
    EXPECT_DOUBLE_EQ(loaded.job(j).size, instance.job(j).size);
    EXPECT_EQ(loaded.job(j).bag, instance.job(j).bag);
  }
}

TEST(IoTest, ScheduleRoundTrip) {
  Schedule schedule(3, 2);
  schedule.assign(0, 1);
  schedule.assign(1, 0);
  // job 2 left unassigned
  std::stringstream stream;
  model::write_schedule(stream, schedule);
  const Schedule loaded = model::read_schedule(stream);
  EXPECT_EQ(loaded.machine_of(0), 1);
  EXPECT_EQ(loaded.machine_of(1), 0);
  EXPECT_EQ(loaded.machine_of(2), model::kUnassigned);
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# a comment\nbagsched 1\n\nmachines 2\nbags 1\njobs 1\n"
         << "1.5 0  # trailing comment\n";
  const Instance loaded = model::read_instance(stream);
  EXPECT_EQ(loaded.num_jobs(), 1);
  EXPECT_DOUBLE_EQ(loaded.job(0).size, 1.5);
}

TEST(IoTest, BadHeaderThrows) {
  std::stringstream stream("nonsense 1\n");
  EXPECT_THROW(model::read_instance(stream), std::runtime_error);
}

}  // namespace
}  // namespace bagsched
