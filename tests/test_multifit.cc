// Tests for the bag-aware MULTIFIT baseline.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "sched/exact.h"
#include "sched/greedy_bags.h"
#include "sched/multifit.h"

namespace bagsched {
namespace {

using model::Instance;

TEST(MultifitTest, EmptyInstance) {
  const Instance instance(std::vector<model::Job>{}, 2, 0);
  const auto schedule = sched::multifit(instance);
  EXPECT_EQ(schedule.num_jobs(), 0);
}

TEST(MultifitTest, PerfectSplit) {
  const Instance instance = Instance::without_bags({4, 3, 2, 1}, 2);
  const auto schedule = sched::multifit(instance);
  EXPECT_TRUE(model::validate(instance, schedule).ok());
  EXPECT_DOUBLE_EQ(schedule.makespan(instance), 5.0);
}

TEST(MultifitTest, FeasibleAcrossFamilies) {
  for (const auto& family : gen::family_names()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = gen::by_name(family, 40, 6, seed);
      const auto schedule = sched::multifit(instance);
      EXPECT_TRUE(model::validate(instance, schedule).ok())
          << family << " seed " << seed;
      EXPECT_GE(schedule.makespan(instance),
                model::combined_lower_bound(instance) - 1e-9);
    }
  }
}

TEST(MultifitTest, NeverWorseThanGreedy) {
  // MULTIFIT starts from the greedy schedule and only replaces it with
  // strictly better packings.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = gen::by_name("uniform", 50, 7, seed);
    const double greedy =
        sched::greedy_bags(instance).makespan(instance);
    const double mf = sched::multifit(instance).makespan(instance);
    EXPECT_LE(mf, greedy + 1e-9) << "seed " << seed;
  }
}

TEST(MultifitTest, NearOptimalOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = gen::by_name("twopoint", 14, 3, seed);
    const auto exact = sched::solve_exact(instance);
    if (!exact.proven_optimal) continue;
    const double mf = sched::multifit(instance).makespan(instance);
    // Classical MULTIFIT is a 13/11-approximation; with bags we check a
    // slightly generous 1.3 band.
    EXPECT_LE(mf, 1.3 * exact.makespan + 1e-9) << "seed " << seed;
  }
}

TEST(MultifitTest, RespectsBagConstraintsOnTightBags) {
  const auto planted = gen::figure1({.num_machines = 6, .scale = 1.0,
                                     .seed = 1});
  const auto schedule = sched::multifit(planted.instance);
  EXPECT_TRUE(model::validate(planted.instance, schedule).ok());
  EXPECT_NEAR(schedule.makespan(planted.instance), 1.0, 1e-9);
}

TEST(MultifitTest, FewIterationsStillValid) {
  const Instance instance = gen::by_name("mixed", 40, 6, 2);
  const auto schedule =
      sched::multifit(instance, sched::MultifitOptions{2});
  EXPECT_TRUE(model::validate(instance, schedule).ok());
}

}  // namespace
}  // namespace bagsched
