// Unit tests for the util module: PRNG determinism, exact rationals,
// epsilon-grid rounding, tables, flat bitsets and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "util/bitset64.h"
#include "util/csv.h"
#include "util/fraction.h"
#include "util/grid.h"
#include "util/prng.h"
#include "util/thread_pool.h"

namespace bagsched {
namespace {

using util::EpsGrid;
using util::Fraction;
using util::Table;
using util::ThreadPool;
using util::Xoshiro256;

TEST(Prng, DeterministicForFixedSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Prng, UniformIntInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto value = rng.uniform_int(-5, 9);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 9);
  }
}

TEST(Prng, UniformIntCoversRange) {
  Xoshiro256 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, UniformRealInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(value, 0.25);
    EXPECT_LT(value, 0.75);
  }
}

TEST(Prng, ShuffleIsPermutation) {
  Xoshiro256 rng(5);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  auto copy = values;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Fraction, BasicArithmetic) {
  const Fraction half(1, 2);
  const Fraction third(1, 3);
  EXPECT_EQ(half + third, Fraction(5, 6));
  EXPECT_EQ(half - third, Fraction(1, 6));
  EXPECT_EQ(half * third, Fraction(1, 6));
  EXPECT_EQ(half / third, Fraction(3, 2));
}

TEST(Fraction, NormalizesSignAndGcd) {
  EXPECT_EQ(Fraction(2, 4), Fraction(1, 2));
  EXPECT_EQ(Fraction(1, -2), Fraction(-1, 2));
  EXPECT_EQ(Fraction(-3, -6), Fraction(1, 2));
  EXPECT_EQ(Fraction(0, 5).den(), 1);
}

TEST(Fraction, Comparisons) {
  EXPECT_LT(Fraction(1, 3), Fraction(1, 2));
  EXPECT_GT(Fraction(-1, 3), Fraction(-1, 2));
  EXPECT_LE(Fraction(2, 4), Fraction(1, 2));
}

TEST(Fraction, PowExact) {
  EXPECT_EQ(Fraction::pow(Fraction(1, 2), 3), Fraction(1, 8));
  EXPECT_EQ(Fraction::pow(Fraction(1, 2), -2), Fraction(4));
  EXPECT_EQ(Fraction::pow(Fraction(3, 2), 0), Fraction(1));
}

TEST(Fraction, ZeroDenominatorThrows) {
  EXPECT_THROW(Fraction(1, 0), std::invalid_argument);
  EXPECT_THROW(Fraction(1, 2) / Fraction(0, 3), std::invalid_argument);
}

TEST(EpsGridTest, RoundUpIsOnGridAndAbove) {
  const EpsGrid grid(0.5);
  for (double p : {0.05, 0.31, 0.5, 0.9, 1.0, 1.49}) {
    const double rounded = grid.round_up(p);
    EXPECT_GE(rounded, p * (1 - 1e-12));
    EXPECT_LE(rounded, p * 1.5 + 1e-12);  // at most one factor above
    // Idempotent: rounding a grid value returns itself.
    EXPECT_NEAR(grid.round_up(rounded), rounded, 1e-12);
  }
}

TEST(EpsGridTest, IndexAboveMatchesValue) {
  const EpsGrid grid(0.25);
  EXPECT_EQ(grid.index_above(1.0), 0);
  EXPECT_EQ(grid.index_above(1.25), 1);
  EXPECT_EQ(grid.index_above(1.2), 1);
  EXPECT_EQ(grid.index_above(0.9), 0);
}

TEST(EpsGridTest, RoundUpToMultiple) {
  EXPECT_DOUBLE_EQ(util::round_up_to_multiple(0.31, 0.1), 0.4);
  EXPECT_NEAR(util::round_up_to_multiple(0.4, 0.1), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(util::round_up_to_multiple(0.0, 0.1), 0.0);
}

TEST(TableTest, CsvRoundTrip) {
  Table table({"a", "b"});
  table.row().add(1).add(2.5, 1);
  table.row().add("x").add("y");
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\nx,y\n");
}

TEST(TableTest, AlignedHasHeader) {
  Table table({"col", "value"});
  table.row().add("hello").add(3LL);
  std::ostringstream os;
  table.write_aligned(os);
  EXPECT_NE(os.str().find("col"), std::string::npos);
  EXPECT_NE(os.str().find("hello"), std::string::npos);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitReturnsTypedFutures) {
  ThreadPool pool(2);
  std::future<int> answer = pool.submit([] { return 6 * 7; });
  std::future<std::string> text =
      pool.submit([] { return std::string("hello"); });
  // Move-only callables are accepted too.
  auto owned = std::make_unique<int>(5);
  std::future<int> moved =
      pool.submit([owned = std::move(owned)] { return *owned; });
  EXPECT_EQ(answer.get(), 42);
  EXPECT_EQ(text.get(), "hello");
  EXPECT_EQ(moved.get(), 5);
}

TEST(ThreadPoolTest, TypedSubmitPropagatesExceptions) {
  ThreadPool pool(1);
  std::future<int> future =
      pool.submit([]() -> int { throw std::runtime_error("typed boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(Bitset64, SetTestResetAcrossWordBoundaries) {
  util::Bitset64 bits(130);
  EXPECT_EQ(bits.bits(), 130);
  for (const int b : {0, 1, 63, 64, 65, 127, 128, 129}) {
    EXPECT_FALSE(bits.test(b));
    bits.set(b);
    EXPECT_TRUE(bits.test(b));
  }
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(65));
  util::Bitset64 other(130);
  EXPECT_FALSE(bits == other);
  bits.clear();
  EXPECT_TRUE(bits == other);
}

TEST(BitMatrix64, RowsAreIndependentAndComparable) {
  util::BitMatrix64 matrix(3, 70);
  matrix.set(0, 5);
  matrix.set(0, 69);
  matrix.set(2, 5);
  matrix.set(2, 69);
  EXPECT_TRUE(matrix.test(0, 5));
  EXPECT_FALSE(matrix.test(1, 5));
  EXPECT_TRUE(matrix.rows_equal(0, 2));
  EXPECT_FALSE(matrix.rows_equal(0, 1));
  matrix.reset(2, 69);
  EXPECT_FALSE(matrix.rows_equal(0, 2));
  matrix.clear();
  EXPECT_TRUE(matrix.rows_equal(0, 2));
  EXPECT_FALSE(matrix.test(0, 5));
}

}  // namespace
}  // namespace bagsched
