// Tests for the Lemma 7 placement stage: all ml jobs placed, bag-feasible,
// origins recorded, and swaps repair injected conflicts.
#include <gtest/gtest.h>

#include <set>

#include "eptas/classify.h"
#include "eptas/milp_model.h"
#include "eptas/placement.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using model::Instance;

struct Prepared {
  Instance scaled;
  eptas::Classification cls;
  eptas::Transformed transformed;
  eptas::PatternSpace space;
  eptas::MasterSolution master;
};

std::optional<Prepared> prepare(const Instance& instance, double eps,
                                double guess) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  Instance scaled =
      Instance::from_vectors(sizes, bags, instance.num_machines());
  const auto cls = eptas::classify(scaled, eps, EptasConfig{});
  if (!cls) return std::nullopt;
  auto transformed = eptas::transform(scaled, *cls);
  auto space = eptas::build_pattern_space(transformed, *cls);
  auto master = eptas::solve_master(space, transformed, *cls, EptasConfig{});
  if (!master) return std::nullopt;
  return Prepared{std::move(scaled), *cls, std::move(transformed),
                  std::move(space), std::move(*master)};
}

void check_placement(const Prepared& prep,
                     const eptas::PlacementResult& placement) {
  const auto& inst = prep.transformed.instance;
  // Every ml job of I' is assigned; no two of the same bag share a machine.
  std::set<std::pair<int, model::BagId>> seen;
  for (model::JobId j = 0; j < inst.num_jobs(); ++j) {
    if (prep.transformed.class_of(j) == eptas::JobClass::Small) {
      EXPECT_FALSE(placement.schedule.is_assigned(j));
      continue;
    }
    ASSERT_TRUE(placement.schedule.is_assigned(j)) << "ml job " << j;
    const int machine = placement.schedule.machine_of(j);
    EXPECT_TRUE(
        seen.insert({machine, inst.job(j).bag}).second)
        << "conflict on machine " << machine;
  }
  // ml_load is consistent.
  std::vector<double> loads(
      static_cast<std::size_t>(inst.num_machines()), 0.0);
  for (model::JobId j = 0; j < inst.num_jobs(); ++j) {
    if (placement.schedule.is_assigned(j)) {
      loads[static_cast<std::size_t>(placement.schedule.machine_of(j))] +=
          inst.job(j).size;
    }
  }
  for (int machine = 0; machine < inst.num_machines(); ++machine) {
    EXPECT_NEAR(loads[static_cast<std::size_t>(machine)],
                placement.ml_load[static_cast<std::size_t>(machine)],
                1e-9);
  }
}

TEST(PlacementTest, PlantedInstancesPlaceCleanly) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto planted = gen::planted({.num_machines = 6,
                                       .num_bags = 14,
                                       .min_jobs_per_machine = 2,
                                       .max_jobs_per_machine = 5,
                                       .target = 1.0,
                                       .seed = seed});
    const auto prep = prepare(planted.instance, 0.5, 1.05);
    if (!prep) continue;
    const auto placement = eptas::place_ml_jobs(
        prep->transformed, prep->space, prep->master, EptasConfig{});
    ASSERT_TRUE(placement.has_value()) << "seed " << seed;
    check_placement(*prep, *placement);
  }
}

TEST(PlacementTest, OriginsRecordedForPriorityJobs) {
  const auto planted = gen::planted({.num_machines = 6,
                                     .num_bags = 12,
                                     .min_jobs_per_machine = 3,
                                     .max_jobs_per_machine = 5,
                                     .target = 1.0,
                                     .seed = 4});
  const auto prep = prepare(planted.instance, 0.5, 1.05);
  ASSERT_TRUE(prep.has_value());
  const auto placement = eptas::place_ml_jobs(
      prep->transformed, prep->space, prep->master, EptasConfig{});
  ASSERT_TRUE(placement.has_value());
  const auto& inst = prep->transformed.instance;
  for (model::JobId j = 0; j < inst.num_jobs(); ++j) {
    const auto bag = inst.job(j).bag;
    if (prep->transformed.class_of(j) != eptas::JobClass::Small &&
        prep->transformed.is_priority[static_cast<std::size_t>(bag)]) {
      EXPECT_TRUE(placement->origin.count(j))
          << "priority ml job " << j << " has no origin";
    }
  }
}

TEST(PlacementTest, HeightMatchesPatternUnlessRescued) {
  const auto planted = gen::planted({.num_machines = 8,
                                     .num_bags = 16,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 4,
                                     .target = 1.0,
                                     .seed = 6});
  const auto prep = prepare(planted.instance, 0.5, 1.05);
  ASSERT_TRUE(prep.has_value());
  const auto placement = eptas::place_ml_jobs(
      prep->transformed, prep->space, prep->master, EptasConfig{});
  ASSERT_TRUE(placement.has_value());
  if (placement->rescues == 0) {
    // Without rescues, each machine's ml load is at most its pattern height
    // (slots may stay empty, so <=).
    for (int machine = 0;
         machine < prep->transformed.instance.num_machines(); ++machine) {
      const int p =
          placement->machine_pattern[static_cast<std::size_t>(machine)];
      const double cap =
          p < 0 ? 0.0
                : prep->master.patterns[static_cast<std::size_t>(p)].height;
      EXPECT_LE(placement->ml_load[static_cast<std::size_t>(machine)],
                cap + 1e-9);
    }
  }
}

TEST(PlacementTest, FeasibleAcrossFamilies) {
  for (const auto& family : {"twopoint", "figure1", "replica", "mixed"}) {
    const Instance instance = gen::by_name(family, 36, 6, 7);
    const double guess = 1.3 * model::combined_lower_bound(instance);
    const auto prep = prepare(instance, 0.5, guess);
    if (!prep) continue;
    const auto placement = eptas::place_ml_jobs(
        prep->transformed, prep->space, prep->master, EptasConfig{});
    ASSERT_TRUE(placement.has_value()) << family;
    check_placement(*prep, *placement);
  }
}

}  // namespace
}  // namespace bagsched
