// Tests for pattern-space construction, machine->pattern extraction, and
// the pricing branch-and-bound.
#include <gtest/gtest.h>

#include "eptas/classify.h"
#include "eptas/pattern.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "sched/greedy_bags.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using eptas::Pattern;
using eptas::PatternSpace;
using eptas::PricingDuals;
using model::Instance;

struct Prepared {
  Instance scaled;
  eptas::Classification cls;
  eptas::Transformed transformed;
  PatternSpace space;
};

Prepared prepare(const Instance& instance, double eps) {
  const auto cls = eptas::classify(instance, eps, EptasConfig{});
  EXPECT_TRUE(cls.has_value());
  auto transformed = eptas::transform(instance, *cls);
  auto space = eptas::build_pattern_space(transformed, *cls);
  return Prepared{instance, *cls, std::move(transformed), std::move(space)};
}

Instance normalized(const Instance& raw) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  const double shrink = 0.8 * raw.num_machines() / raw.total_area();
  for (const auto& job : raw.jobs()) {
    sizes.push_back(job.size * std::min(1.0, shrink));
    bags.push_back(job.bag);
  }
  return Instance::from_vectors(sizes, bags, raw.num_machines());
}

PricingDuals zero_duals(const PatternSpace& space) {
  PricingDuals duals;
  duals.machine = 0.0;
  duals.priority.resize(static_cast<std::size_t>(space.num_priority()));
  for (int i = 0; i < space.num_priority(); ++i) {
    duals.priority[static_cast<std::size_t>(i)].assign(
        space.priority_bags[static_cast<std::size_t>(i)].sizes.size(), 0.0);
  }
  duals.x_size.assign(static_cast<std::size_t>(space.num_x_sizes()), 0.0);
  duals.area = 0.0;
  duals.small_block.assign(
      static_cast<std::size_t>(space.num_priority()), 0.0);
  return duals;
}

TEST(PatternSpaceTest, CountsMatchInstance) {
  const Prepared prep =
      prepare(normalized(gen::by_name("mixed", 60, 8, 1)), 0.5);
  const auto& inst = prep.transformed.instance;
  // Sum of priority counts + x avail = number of ml jobs in I'.
  int space_total = 0;
  for (const auto& pbag : prep.space.priority_bags) {
    for (int count : pbag.counts) space_total += count;
  }
  for (int avail : prep.space.x_avail) space_total += avail;
  int inst_total = 0;
  for (model::JobId j = 0; j < inst.num_jobs(); ++j) {
    if (prep.transformed.class_of(j) != eptas::JobClass::Small) {
      ++inst_total;
    }
  }
  EXPECT_EQ(space_total, inst_total);
}

TEST(PatternSpaceTest, XSizesAreLargeOnly) {
  const Prepared prep =
      prepare(normalized(gen::by_name("mixed", 60, 8, 2)), 0.5);
  for (double size : prep.space.x_sizes) {
    EXPECT_GE(size, prep.cls.large_threshold - 1e-12);
  }
}

TEST(PatternTest, EmptyPatternShape) {
  const Prepared prep =
      prepare(normalized(gen::by_name("mixed", 50, 6, 3)), 0.5);
  const Pattern empty = eptas::empty_pattern(prep.space);
  EXPECT_EQ(empty.height, 0.0);
  EXPECT_EQ(empty.jobs_in_pattern(), 0);
  for (int choice : empty.pchoice) EXPECT_EQ(choice, -1);
  for (int count : empty.xcount) EXPECT_EQ(count, 0);
}

TEST(PatternTest, FromMachineRoundTrip) {
  const Prepared prep =
      prepare(normalized(gen::by_name("twopoint", 40, 6, 4)), 0.5);
  const auto greedy = sched::greedy_bags(prep.transformed.instance);
  int patterns_extracted = 0;
  for (const auto& machine_jobs : greedy.machine_jobs()) {
    const auto pattern = eptas::pattern_from_machine(
        prep.space, prep.transformed, machine_jobs);
    if (!pattern) continue;
    ++patterns_extracted;
    // Height equals the ml load of that machine.
    double ml_load = 0.0;
    for (model::JobId j : machine_jobs) {
      if (prep.transformed.class_of(j) != eptas::JobClass::Small) {
        ml_load += prep.transformed.instance.job(j).size;
      }
    }
    EXPECT_NEAR(pattern->height, ml_load, 1e-9);
    EXPECT_LE(pattern->height, prep.space.max_height + 1e-9);
  }
  EXPECT_GT(patterns_extracted, 0);
}

TEST(PatternTest, SignatureDistinguishesPatterns) {
  const Prepared prep =
      prepare(normalized(gen::by_name("twopoint", 40, 6, 5)), 0.5);
  Pattern a = eptas::empty_pattern(prep.space);
  Pattern b = a;
  if (prep.space.num_x_sizes() > 0) {
    b.xcount[0] = 1;
    EXPECT_NE(a.signature(), b.signature());
  }
  EXPECT_EQ(a.signature(), eptas::empty_pattern(prep.space).signature());
}

TEST(PricingTest, ZeroDualsFindNothing) {
  // With all-zero duals every pattern has score -height^2 <= 0: no column.
  const Prepared prep =
      prepare(normalized(gen::by_name("mixed", 50, 6, 6)), 0.5);
  const auto column = eptas::price_pattern(prep.space, zero_duals(prep.space));
  EXPECT_FALSE(column.has_value());
}

TEST(PricingTest, CoverageDualAttractsEntry) {
  const Prepared prep =
      prepare(normalized(gen::by_name("twopoint", 40, 6, 7)), 0.5);
  if (prep.space.num_x_sizes() == 0) GTEST_SKIP();
  PricingDuals duals = zero_duals(prep.space);
  duals.x_size[0] = 100.0;  // huge reward for covering x size 0
  const auto column = eptas::price_pattern(prep.space, duals);
  ASSERT_TRUE(column.has_value());
  EXPECT_GT(column->xcount[0], 0);
  // It should take as many as fit (reward dwarfs the quadratic cost).
  const int fit = static_cast<int>(prep.space.max_height /
                                   prep.space.x_sizes[0]);
  EXPECT_EQ(column->xcount[0],
            std::min(fit, prep.space.x_avail[0]));
}

TEST(PricingTest, RespectsHeightBudget) {
  const Prepared prep =
      prepare(normalized(gen::by_name("mixed", 60, 8, 8)), 0.5);
  PricingDuals duals = zero_duals(prep.space);
  for (auto& row : duals.priority) {
    for (auto& value : row) value = 50.0;
  }
  for (auto& value : duals.x_size) value = 50.0;
  const auto column = eptas::price_pattern(prep.space, duals);
  ASSERT_TRUE(column.has_value());
  EXPECT_LE(column->height, prep.space.max_height + 1e-9);
  // At most one entry per priority bag by construction: each pchoice is a
  // single size index.
  EXPECT_EQ(static_cast<int>(column->pchoice.size()),
            prep.space.num_priority());
}

TEST(PricingTest, SmallBlockDualDiscouragesBag) {
  const Prepared prep =
      prepare(normalized(gen::by_name("mixed", 60, 8, 9)), 0.5);
  if (prep.space.num_priority() == 0) GTEST_SKIP();
  PricingDuals duals = zero_duals(prep.space);
  // Reward bag 0's coverage but punish it with a stronger block dual: the
  // pricer must not take it.
  duals.priority[0].assign(duals.priority[0].size(), 5.0);
  duals.small_block[0] = -10.0;
  const auto column = eptas::price_pattern(prep.space, duals);
  if (column) {
    EXPECT_FALSE(column->contains_priority(0));
  }
}

}  // namespace
}  // namespace bagsched
