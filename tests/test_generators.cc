// Tests for the workload generators: determinism, feasibility, and the
// structural promises each family makes (planted OPT, figure-1 shape, ...).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "model/lower_bounds.h"

namespace bagsched {
namespace {

using model::Instance;

TEST(GeneratorsTest, UniformShapeAndFeasibility) {
  gen::UniformParams params;
  params.num_jobs = 60;
  params.num_machines = 6;
  params.num_bags = 12;
  params.seed = 3;
  const Instance instance = gen::uniform(params);
  EXPECT_EQ(instance.num_jobs(), 60);
  EXPECT_EQ(instance.num_machines(), 6);
  EXPECT_TRUE(instance.is_feasible());
  for (const auto& job : instance.jobs()) {
    EXPECT_GE(job.size, params.min_size);
    EXPECT_LE(job.size, params.max_size);
  }
}

TEST(GeneratorsTest, UniformDeterministic) {
  gen::UniformParams params;
  params.seed = 17;
  const Instance a = gen::uniform(params);
  const Instance b = gen::uniform(params);
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  for (int j = 0; j < a.num_jobs(); ++j) {
    EXPECT_DOUBLE_EQ(a.job(j).size, b.job(j).size);
    EXPECT_EQ(a.job(j).bag, b.job(j).bag);
  }
}

TEST(GeneratorsTest, UniformSeedsDiffer) {
  gen::UniformParams params;
  params.seed = 1;
  const Instance a = gen::uniform(params);
  params.seed = 2;
  const Instance b = gen::uniform(params);
  bool any_diff = false;
  for (int j = 0; j < a.num_jobs() && !any_diff; ++j) {
    any_diff = a.job(j).size != b.job(j).size;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, PlantedOptEqualsAreaBound) {
  gen::PlantedParams params;
  params.num_machines = 8;
  params.target = 2.0;
  params.seed = 11;
  const auto planted = gen::planted(params);
  EXPECT_DOUBLE_EQ(planted.opt, 2.0);
  // Every machine was filled to exactly `target`, so area / m == target.
  EXPECT_NEAR(model::area_lower_bound(planted.instance), 2.0, 1e-9);
  EXPECT_TRUE(planted.instance.is_feasible());
  // And no job exceeds the target.
  EXPECT_LE(planted.instance.max_size(), 2.0 + 1e-12);
}

TEST(GeneratorsTest, PlantedIsPerMachineFeasible) {
  // The planted construction uses distinct bags per machine, so a schedule
  // of makespan `target` exists; combined lower bound must not exceed it.
  gen::PlantedParams params;
  params.seed = 5;
  const auto planted = gen::planted(params);
  EXPECT_LE(model::combined_lower_bound(planted.instance),
            planted.opt + 1e-9);
}

TEST(GeneratorsTest, Figure1Shape) {
  gen::Figure1Params params;
  params.num_machines = 4;
  params.scale = 1.0;
  const auto planted = gen::figure1(params);
  const Instance& instance = planted.instance;
  EXPECT_EQ(instance.num_jobs(), 8);  // m large + m tight-bag jobs
  EXPECT_EQ(instance.bag_size(0), 4);  // the tight bag
  EXPECT_DOUBLE_EQ(planted.opt, 1.0);
  int large = 0, small = 0;
  for (const auto& job : instance.jobs()) {
    if (job.size > 0.5) ++large;
    else ++small;
    EXPECT_TRUE(std::abs(job.size - 2.0 / 3.0) < 1e-12 ||
                std::abs(job.size - 1.0 / 3.0) < 1e-12);
  }
  EXPECT_EQ(large, 4);
  EXPECT_EQ(small, 4);
}

TEST(GeneratorsTest, Figure1OptIsAchievable) {
  // One large + one tight-bag job per machine = exactly scale.
  const auto planted = gen::figure1({.num_machines = 6, .scale = 2.0,
                                     .seed = 1});
  EXPECT_NEAR(model::area_lower_bound(planted.instance), 2.0, 1e-9);
}

TEST(GeneratorsTest, BagHeavyRespectsFill) {
  gen::BagHeavyParams params;
  params.num_machines = 10;
  params.num_bags = 4;
  params.fill = 0.8;
  const Instance instance = gen::bag_heavy(params);
  for (model::BagId l = 0; l < instance.num_bags(); ++l) {
    EXPECT_EQ(instance.bag_size(l), 8);
  }
  EXPECT_TRUE(instance.is_feasible());
}

TEST(GeneratorsTest, ManySmallBagsCaps3) {
  gen::ManySmallBagsParams params;
  params.num_jobs = 50;
  const Instance instance = gen::many_small_bags(params);
  EXPECT_EQ(instance.num_jobs(), 50);
  EXPECT_LE(instance.max_bag_size(), 3);
}

TEST(GeneratorsTest, TwoPointHasTwoSizes) {
  gen::TwoPointParams params;
  params.seed = 23;
  const Instance instance = gen::two_point(params);
  for (const auto& job : instance.jobs()) {
    EXPECT_TRUE(job.size == params.small_size ||
                job.size == params.large_size);
  }
}

TEST(GeneratorsTest, ReplicaBagsShareSize) {
  gen::ReplicaParams params;
  params.tasks = 10;
  params.replicas = 3;
  params.num_machines = 5;
  const Instance instance = gen::replica(params);
  EXPECT_EQ(instance.num_jobs(), 30);
  for (model::BagId task = 0; task < instance.num_bags(); ++task) {
    const auto& members = instance.bag(task);
    ASSERT_EQ(members.size(), 3u);
    EXPECT_DOUBLE_EQ(instance.job(members[0]).size,
                     instance.job(members[1]).size);
    EXPECT_DOUBLE_EQ(instance.job(members[1]).size,
                     instance.job(members[2]).size);
  }
}

TEST(GeneratorsTest, ReplicaRejectsTooManyReplicas) {
  gen::ReplicaParams params;
  params.replicas = 5;
  params.num_machines = 3;
  EXPECT_THROW(gen::replica(params), std::invalid_argument);
}

TEST(GeneratorsTest, MixedHasAllStrata) {
  gen::MixedParams params;
  params.seed = 9;
  const Instance instance = gen::mixed(params);
  EXPECT_EQ(instance.num_jobs(),
            params.large_jobs + params.medium_jobs + params.small_jobs);
  int large = 0, small = 0;
  for (const auto& job : instance.jobs()) {
    if (job.size >= 0.3 * params.target) ++large;
    if (job.size <= 0.04 * params.target) ++small;
  }
  EXPECT_EQ(large, params.large_jobs);
  EXPECT_GE(small, params.small_jobs / 2);
}

TEST(GeneratorsTest, ByNameCoversAllFamilies) {
  for (const auto& family : gen::family_names()) {
    const Instance instance = gen::by_name(family, 40, 5, 7);
    EXPECT_GT(instance.num_jobs(), 0) << family;
    EXPECT_TRUE(instance.is_feasible()) << family;
  }
}

TEST(GeneratorsTest, ByNameUnknownThrows) {
  EXPECT_THROW(gen::by_name("nope", 10, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bagsched
