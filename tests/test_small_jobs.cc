// Tests for the small-job stage (§4), Lemma 3 medium insertion, and the
// Lemma 4 lift.
#include <gtest/gtest.h>

#include <set>

#include "eptas/classify.h"
#include "eptas/milp_model.h"
#include "eptas/placement.h"
#include "eptas/small_jobs.h"
#include "eptas/transform.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using model::Instance;

struct Pipeline {
  Instance scaled;
  eptas::Classification cls;
  eptas::Transformed transformed;
  eptas::PatternSpace space;
  eptas::MasterSolution master;
  eptas::PlacementResult placement;
};

std::optional<Pipeline> run_until_placement(const Instance& instance,
                                            double eps, double guess) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  Instance scaled =
      Instance::from_vectors(sizes, bags, instance.num_machines());
  const auto cls = eptas::classify(scaled, eps, EptasConfig{});
  if (!cls) return std::nullopt;
  auto transformed = eptas::transform(scaled, *cls);
  auto space = eptas::build_pattern_space(transformed, *cls);
  auto master = eptas::solve_master(space, transformed, *cls, EptasConfig{});
  if (!master) return std::nullopt;
  auto placement =
      eptas::place_ml_jobs(transformed, space, *master, EptasConfig{});
  if (!placement) return std::nullopt;
  return Pipeline{std::move(scaled),    *cls,
                  std::move(transformed), std::move(space),
                  std::move(*master),   std::move(*placement)};
}

TEST(SmallJobsTest, AllSmallJobsAssignedNoIntraBagConflicts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = gen::by_name("mixed", 60, 8, seed);
    const double guess = 1.3 * model::combined_lower_bound(instance);
    auto pipeline = run_until_placement(instance, 0.5, guess);
    if (!pipeline) continue;
    eptas::SmallJobStats stats;
    ASSERT_TRUE(eptas::schedule_small_jobs(
        pipeline->transformed, pipeline->cls, pipeline->space,
        pipeline->master, pipeline->placement, EptasConfig{}, stats));
    // Every I' job assigned, and the I' schedule is bag-feasible.
    const auto validation = model::validate(pipeline->transformed.instance,
                                            pipeline->placement.schedule);
    EXPECT_TRUE(validation.ok()) << "seed " << seed << ": "
                                 << validation.message;
  }
}

TEST(SmallJobsTest, MediumInsertionAvoidsLargePartConflicts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = gen::by_name("mixed", 60, 8, seed + 20);
    const double guess = 1.3 * model::combined_lower_bound(instance);
    auto pipeline = run_until_placement(instance, 0.5, guess);
    if (!pipeline) continue;
    eptas::SmallJobStats stats;
    ASSERT_TRUE(eptas::schedule_small_jobs(
        pipeline->transformed, pipeline->cls, pipeline->space,
        pipeline->master, pipeline->placement, EptasConfig{}, stats));
    const auto mediums = eptas::insert_medium_jobs(
        pipeline->scaled, pipeline->transformed, pipeline->placement);
    ASSERT_TRUE(mediums.has_value()) << "seed " << seed;
    ASSERT_EQ(mediums->size(), pipeline->transformed.removed_medium.size());

    // No machine may hold a medium together with a large-part job of the
    // same original bag, and no two mediums of one bag.
    const auto& inst = pipeline->transformed.instance;
    std::set<std::pair<int, model::BagId>> medium_on;
    for (std::size_t i = 0; i < mediums->size(); ++i) {
      const model::JobId orig = pipeline->transformed.removed_medium[i];
      const model::BagId bag = pipeline->scaled.job(orig).bag;
      EXPECT_TRUE(medium_on.insert({(*mediums)[i], bag}).second);
    }
    for (model::JobId j = 0; j < inst.num_jobs(); ++j) {
      const model::BagId jbag = inst.job(j).bag;
      if (!pipeline->transformed.is_large_part[static_cast<std::size_t>(
              jbag)]) {
        continue;
      }
      const model::BagId orig =
          pipeline->transformed.orig_bag[static_cast<std::size_t>(jbag)];
      const int machine = pipeline->placement.schedule.machine_of(j);
      EXPECT_EQ(medium_on.count({machine, orig}), 0u)
          << "medium conflicts with large-part job on machine " << machine;
    }
  }
}

TEST(SmallJobsTest, LiftProducesValidOriginalSchedule) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = gen::by_name("mixed", 50, 7, seed + 40);
    const double guess = 1.35 * model::combined_lower_bound(instance);
    auto pipeline = run_until_placement(instance, 0.5, guess);
    if (!pipeline) continue;
    eptas::SmallJobStats stats;
    ASSERT_TRUE(eptas::schedule_small_jobs(
        pipeline->transformed, pipeline->cls, pipeline->space,
        pipeline->master, pipeline->placement, EptasConfig{}, stats));
    const auto mediums = eptas::insert_medium_jobs(
        pipeline->scaled, pipeline->transformed, pipeline->placement);
    if (!mediums) continue;
    const auto final_schedule = eptas::lift_solution(
        pipeline->scaled, pipeline->transformed, pipeline->placement,
        *mediums, EptasConfig{}, stats);
    const auto validation =
        model::validate(pipeline->scaled, final_schedule);
    EXPECT_TRUE(validation.ok())
        << "seed " << seed << ": " << validation.message;
  }
}

TEST(SmallJobsTest, LiftSwapsNeverIncreaseTargetMachine) {
  // Structural invariant baked into the lift: fillers are at least as large
  // as the real small jobs they swap with. Verify on the transformation.
  const Instance instance = gen::by_name("mixed", 60, 8, 77);
  const double guess = 1.3 * model::combined_lower_bound(instance);
  auto pipeline = run_until_placement(instance, 0.5, guess);
  if (!pipeline) GTEST_SKIP();
  const auto& transformed = pipeline->transformed;
  const auto& inst = transformed.instance;
  for (model::BagId l = 0; l < inst.num_bags(); ++l) {
    double filler_size = -1.0;
    double max_real_small = 0.0;
    for (model::JobId j : inst.bag(l)) {
      if (transformed.class_of(j) != eptas::JobClass::Small) continue;
      if (transformed.is_filler[static_cast<std::size_t>(j)]) {
        filler_size = inst.job(j).size;
      } else {
        max_real_small = std::max(max_real_small, inst.job(j).size);
      }
    }
    if (filler_size >= 0.0) {
      EXPECT_GE(filler_size, max_real_small - 1e-12) << "bag " << l;
    }
  }
}

TEST(SmallJobsTest, GroupBagLptKeepsLoadsBalanced) {
  // Lemma 9 flavour: after the small stage, the spread of machine loads is
  // bounded by (pattern spread) + pmax of small jobs (empirically we check
  // a generous 2x band against the average).
  const auto planted = gen::planted({.num_machines = 8,
                                     .num_bags = 20,
                                     .min_jobs_per_machine = 4,
                                     .max_jobs_per_machine = 8,
                                     .target = 1.0,
                                     .seed = 13});
  auto pipeline = run_until_placement(planted.instance, 0.5, 1.05);
  ASSERT_TRUE(pipeline.has_value());
  eptas::SmallJobStats stats;
  ASSERT_TRUE(eptas::schedule_small_jobs(
      pipeline->transformed, pipeline->cls, pipeline->space,
      pipeline->master, pipeline->placement, EptasConfig{}, stats));
  const auto loads =
      pipeline->placement.schedule.loads(pipeline->transformed.instance);
  const double hi = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(hi, pipeline->cls.target_height + pipeline->cls.large_threshold +
                    0.5);
}

}  // namespace
}  // namespace bagsched
