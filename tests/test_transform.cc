// Tests for the §2.2 instance transformation (Lemma 2 structure) and its
// bookkeeping.
#include <gtest/gtest.h>

#include "eptas/classify.h"
#include "eptas/transform.h"
#include "gen/generators.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using eptas::JobClass;
using eptas::Transformed;
using model::Instance;

struct Prepared {
  Instance scaled;
  eptas::Classification cls;
  Transformed transformed;
};

Prepared prepare(const Instance& instance, double eps,
                 EptasConfig config = {}) {
  const auto cls = eptas::classify(instance, eps, config);
  EXPECT_TRUE(cls.has_value());
  Transformed transformed = eptas::transform(instance, *cls);
  return Prepared{instance, *cls, std::move(transformed)};
}

Instance mixed_instance(std::uint64_t seed) {
  gen::MixedParams params;
  params.num_machines = 8;
  params.num_bags = 16;
  params.large_jobs = 6;
  params.medium_jobs = 8;
  params.small_jobs = 30;
  params.seed = seed;
  // Scale down so total area fits below m (the driver normally guarantees
  // this via the makespan guess).
  Instance raw = gen::mixed(params);
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  const double shrink =
      0.8 * params.num_machines / raw.total_area();
  for (const auto& job : raw.jobs()) {
    sizes.push_back(job.size * std::min(1.0, shrink));
    bags.push_back(job.bag);
  }
  return Instance::from_vectors(sizes, bags, params.num_machines);
}

TEST(TransformTest, PriorityBagsUntouched) {
  const Prepared prep = prepare(mixed_instance(1), 0.5);
  const auto& inst = prep.transformed.instance;
  for (model::BagId l = 0; l < prep.scaled.num_bags(); ++l) {
    if (!prep.cls.is_priority[static_cast<std::size_t>(l)]) continue;
    // Every original job of a priority bag appears in the same bag of I'.
    std::size_t found = 0;
    for (model::JobId j : inst.bag(l)) {
      const model::JobId orig =
          prep.transformed.orig_job[static_cast<std::size_t>(j)];
      ASSERT_NE(orig, model::kUnassigned);
      EXPECT_EQ(prep.scaled.job(orig).bag, l);
      ++found;
    }
    EXPECT_EQ(found, prep.scaled.bag(l).size());
  }
}

TEST(TransformTest, NonPriorityMediumsRemoved) {
  const Prepared prep = prepare(mixed_instance(2), 0.5);
  // No medium job of a non-priority bag may survive into I'.
  for (model::JobId j = 0; j < prep.transformed.instance.num_jobs(); ++j) {
    const model::BagId bag = prep.transformed.instance.job(j).bag;
    if (prep.transformed.is_priority[static_cast<std::size_t>(bag)]) {
      continue;
    }
    EXPECT_NE(prep.transformed.class_of(j), JobClass::Medium)
        << "job " << j << " in bag " << bag;
  }
  // Removed mediums are exactly the non-priority medium jobs of I.
  std::size_t expected = 0;
  for (model::JobId j = 0; j < prep.scaled.num_jobs(); ++j) {
    if (prep.cls.class_of(j) == JobClass::Medium &&
        !prep.cls.is_priority[static_cast<std::size_t>(
            prep.scaled.job(j).bag)]) {
      ++expected;
    }
  }
  EXPECT_EQ(prep.transformed.removed_medium.size(), expected);
}

TEST(TransformTest, LargePartBagsHoldOnlyLargeJobs) {
  const Prepared prep = prepare(mixed_instance(3), 0.5);
  const auto& inst = prep.transformed.instance;
  for (model::BagId l = 0; l < inst.num_bags(); ++l) {
    if (!prep.transformed.is_large_part[static_cast<std::size_t>(l)]) {
      continue;
    }
    EXPECT_FALSE(prep.transformed.is_priority[static_cast<std::size_t>(l)]);
    for (model::JobId j : inst.bag(l)) {
      EXPECT_EQ(prep.transformed.class_of(j), JobClass::Large);
      // And it maps back to the right original bag.
      const model::JobId orig =
          prep.transformed.orig_job[static_cast<std::size_t>(j)];
      EXPECT_EQ(prep.scaled.job(orig).bag,
                prep.transformed.orig_bag[static_cast<std::size_t>(l)]);
    }
  }
}

TEST(TransformTest, FillerCountMatchesMlCount) {
  const Prepared prep = prepare(mixed_instance(4), 0.5);
  const auto& inst = prep.transformed.instance;
  for (model::BagId l = 0; l < prep.scaled.num_bags(); ++l) {
    if (prep.cls.is_priority[static_cast<std::size_t>(l)]) continue;
    int ml = 0;
    bool has_small = false;
    for (model::JobId j : prep.scaled.bag(l)) {
      if (prep.cls.class_of(j) == JobClass::Small) {
        has_small = true;
      } else {
        ++ml;
      }
    }
    int fillers = 0;
    for (model::JobId j : inst.bag(l)) {
      if (prep.transformed.is_filler[static_cast<std::size_t>(j)]) {
        ++fillers;
      }
    }
    EXPECT_EQ(fillers, has_small ? ml : 0) << "bag " << l;
  }
}

TEST(TransformTest, FillersAreSmallAndSizedLikeLargestSmall) {
  const Prepared prep = prepare(mixed_instance(5), 0.5);
  const auto& inst = prep.transformed.instance;
  for (model::JobId j = 0; j < inst.num_jobs(); ++j) {
    if (!prep.transformed.is_filler[static_cast<std::size_t>(j)]) continue;
    EXPECT_EQ(prep.transformed.class_of(j), JobClass::Small);
    // Filler size equals the max small size of its bag.
    const model::BagId bag = inst.job(j).bag;
    double pmax = 0.0;
    for (model::JobId other : inst.bag(bag)) {
      if (!prep.transformed.is_filler[static_cast<std::size_t>(other)] &&
          prep.transformed.class_of(other) == JobClass::Small) {
        pmax = std::max(pmax, inst.job(other).size);
      }
    }
    EXPECT_DOUBLE_EQ(inst.job(j).size, pmax);
  }
}

TEST(TransformTest, SmallPartBagsFitMachineCount) {
  // |B_l small-part| = #small + #fillers <= |B_l original| <= m.
  const Prepared prep = prepare(mixed_instance(6), 0.5);
  EXPECT_LE(prep.transformed.instance.max_bag_size(),
            prep.scaled.num_machines());
}

TEST(TransformTest, JobConservation) {
  // Every original job appears exactly once in I' or in removed_medium.
  const Prepared prep = prepare(mixed_instance(7), 0.5);
  std::vector<int> seen(static_cast<std::size_t>(prep.scaled.num_jobs()),
                        0);
  for (model::JobId j = 0; j < prep.transformed.instance.num_jobs(); ++j) {
    const model::JobId orig =
        prep.transformed.orig_job[static_cast<std::size_t>(j)];
    if (orig != model::kUnassigned) {
      ++seen[static_cast<std::size_t>(orig)];
    }
  }
  for (model::JobId j : prep.transformed.removed_medium) {
    ++seen[static_cast<std::size_t>(j)];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(TransformTest, AreaGrowthBoundedLemma2) {
  // Lemma 2: the transformation adds at most one small job per ml job, so
  // the area grows by at most eps * original (pmax_small < eps^{k+1} and
  // ml jobs are >= eps^{k+1}; per machine the paper gets (1+eps)C; here we
  // check the global area version).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Prepared prep = prepare(mixed_instance(seed + 10), 0.5);
    double original_area = 0.0;
    for (int j = 0; j < prep.scaled.num_jobs(); ++j) {
      original_area += prep.cls.size_of(j);
    }
    double transformed_area = prep.transformed.instance.total_area();
    for (model::JobId j : prep.transformed.removed_medium) {
      transformed_area += prep.cls.size_of(j);
    }
    EXPECT_LE(transformed_area, (1.0 + 0.5) * original_area + 1e-9);
  }
}

TEST(TransformTest, NoSmallJobsMeansNoFillers) {
  // Bag with only large jobs: splits into a large-part bag, no fillers.
  std::vector<double> sizes{0.6, 0.6, 0.6};
  std::vector<model::BagId> bags{0, 0, 0};
  // Add some singleton small bags so the instance classifies cleanly.
  sizes.push_back(0.01);
  bags.push_back(1);
  // m = 8 keeps bag 0 below the large-bag threshold (3 < eps*m = 4).
  const Instance instance = Instance::from_vectors(sizes, bags, 8);
  EptasConfig config;
  config.max_priority_per_size = 0;  // force bag 0 non-priority
  config.max_priority_total = 0;
  const auto cls = eptas::classify(instance, 0.5, config);
  ASSERT_TRUE(cls.has_value());
  ASSERT_FALSE(cls->is_priority[0]);
  const Transformed transformed = eptas::transform(instance, *cls);
  for (model::JobId j = 0; j < transformed.instance.num_jobs(); ++j) {
    EXPECT_FALSE(transformed.is_filler[static_cast<std::size_t>(j)]);
  }
}

}  // namespace
}  // namespace bagsched
