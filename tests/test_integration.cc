// Cross-module integration tests: the EPTAS against every baseline and the
// exact solver, parameterized over families / sizes / seeds (the property
// sweep the task calls for).
#include <gtest/gtest.h>

#include <tuple>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/io.h"
#include "model/lower_bounds.h"
#include "sched/bag_lpt.h"
#include "sched/exact.h"
#include "sched/greedy_bags.h"
#include "sched/local_search.h"

namespace bagsched {
namespace {

using model::Instance;

// ---------------------------------------------------------------------------
// Sweep: (family, n, m, seed). Every algorithm must produce a feasible
// schedule whose makespan is >= the combined lower bound, and the EPTAS
// must stay within its guarantee band of the best-known value.
using SweepParam = std::tuple<std::string, int, int, std::uint64_t>;

class AlgorithmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgorithmSweep, AllAlgorithmsFeasibleAndOrdered) {
  const auto& [family, n, m, seed] = GetParam();
  const Instance instance = gen::by_name(family, n, m, seed);
  const double lower = model::combined_lower_bound(instance);

  const auto greedy = sched::greedy_bags(instance);
  const auto baglpt = sched::bag_lpt(instance);
  const auto local = sched::local_search(instance);
  const auto eptas_result = eptas::eptas_schedule(instance, 0.5);

  for (const auto* schedule :
       {&greedy, &baglpt, &local, &eptas_result.schedule}) {
    const auto validation = model::validate(instance, *schedule);
    EXPECT_TRUE(validation.ok()) << validation.message;
    EXPECT_GE(schedule->makespan(instance), lower - 1e-9);
  }
  // Local search starts from greedy: never worse.
  EXPECT_LE(local.makespan(instance), greedy.makespan(instance) + 1e-9);
  // The EPTAS never returns something worse than its own greedy fallback.
  EXPECT_LE(eptas_result.makespan, greedy.makespan(instance) + 1e-9);
  // And respects a generous guarantee band vs the lower bound.
  EXPECT_LE(eptas_result.makespan, (1.0 + 2.0 * 0.5) * lower +
                                       instance.max_size() * 0.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Families, AlgorithmSweep,
    ::testing::Combine(
        ::testing::Values("uniform", "planted", "figure1", "bagheavy",
                          "smallbags", "twopoint", "replica", "mixed"),
        ::testing::Values(24, 48),
        ::testing::Values(4, 8),
        ::testing::Values<std::uint64_t>(1, 2)));

// ---------------------------------------------------------------------------
// Exact comparison on small instances: the EPTAS ratio is measured against
// the true optimum.
class ExactComparison
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint64_t>> {};

TEST_P(ExactComparison, EptasWithinBandOfOptimum) {
  const auto& [family, seed] = GetParam();
  const Instance instance = gen::by_name(family, 14, 4, seed);
  const auto exact = sched::solve_exact(instance);
  if (!exact.proven_optimal) GTEST_SKIP();
  const double eps = 0.5;
  const auto result = eptas::eptas_schedule(instance, eps);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  EXPECT_GE(result.makespan, exact.makespan - 1e-9);
  EXPECT_LE(result.makespan, (1.0 + 2.0 * eps) * exact.makespan + 1e-9)
      << family << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, ExactComparison,
    ::testing::Combine(::testing::Values("uniform", "twopoint", "replica",
                                         "smallbags"),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// ---------------------------------------------------------------------------
// Round-trip: schedule an instance loaded from its serialized form.
TEST(IntegrationTest, IoThenScheduleRoundTrip) {
  const Instance original = gen::by_name("mixed", 40, 6, 99);
  std::stringstream stream;
  model::write_instance(stream, original);
  const Instance loaded = model::read_instance(stream);
  const auto a = eptas::eptas_schedule(original, 0.5);
  const auto b = eptas::eptas_schedule(loaded, 0.5);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

// Degenerate shapes.
TEST(IntegrationTest, OneMachineSingletonBags) {
  const Instance instance = Instance::without_bags({1, 2, 3}, 1);
  const auto result = eptas::eptas_schedule(instance, 0.5);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(IntegrationTest, AsManyMachinesAsJobs) {
  const Instance instance = Instance::without_bags({5, 4, 3, 2}, 4);
  const auto result = eptas::eptas_schedule(instance, 0.5);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);  // pmax dominates
}

TEST(IntegrationTest, FullBagEqualsMachines) {
  // One bag with exactly m equal jobs: OPT = size, forced one per machine.
  const Instance instance =
      Instance::from_vectors({2, 2, 2, 2}, {0, 0, 0, 0}, 4);
  const auto result = eptas::eptas_schedule(instance, 0.5);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
}

TEST(IntegrationTest, IdenticalJobsManyBags) {
  std::vector<double> sizes(32, 0.5);
  std::vector<model::BagId> bags;
  for (int i = 0; i < 32; ++i) bags.push_back(i % 8);
  const Instance instance = Instance::from_vectors(sizes, bags, 8);
  const auto result = eptas::eptas_schedule(instance, 0.5);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  EXPECT_NEAR(result.makespan, 2.0, 1e-9);  // 32 * 0.5 / 8 = 2, exact split
}

}  // namespace
}  // namespace bagsched
