// Tests for the sched_server network subsystem: NDJSON line framing under
// pathological byte streams (split / merged / oversized / CRLF), wire
// protocol round trips against a live loopback server (submit + streamed
// progress, structured errors, load shedding, cancel, multiplexing),
// concurrent multi-client admission, mid-stream disconnect cleanup,
// graceful drain, the /metrics endpoint, and a kill-and-reconnect soak.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "model/delta.h"
#include "net/client.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/server.h"
#include "persist/journal.h"
#include "util/json.h"

namespace bagsched {
namespace {

using net::Client;
using net::LineFramer;
using net::SchedServer;
using net::ServerConfig;
using util::Json;

api::SolveRequest quick_request(std::uint64_t seed = 1,
                                const char* solver = "greedy-bags") {
  api::SolveOptions options;
  options.seed = seed;
  return api::make_request(api::make_instance("uniform", 30, 4, options),
                           options, {solver});
}

/// A request the worker cannot finish within any test budget (exact B&B on
/// 60 jobs); resolves only via cancellation or its generous time limit.
api::SolveRequest slow_request() {
  api::SolveOptions options;
  options.time_limit_seconds = 30.0;
  options.seed = 3;
  return api::make_request(api::make_instance("uniform", 60, 8, options),
                           options, {"exact"});
}

ServerConfig test_config() {
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.service.num_threads = 2;
  config.service.max_concurrent = 2;
  return config;
}

// --- LineFramer ------------------------------------------------------------

TEST(FramingTest, SplitsMergedFramesAndReassemblesSplitOnes) {
  LineFramer framer;
  // Three frames merged into one read...
  framer.feed("{\"a\":1}\n{\"b\":2}\n{\"c\"", 20);
  EXPECT_EQ(framer.next().value(), "{\"a\":1}");
  EXPECT_EQ(framer.next().value(), "{\"b\":2}");
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_EQ(framer.buffered(), 4u);
  // ...and the third split across two more reads, byte by byte.
  const std::string tail = ":3}\n";
  for (const char c : tail) framer.feed(&c, 1);
  EXPECT_EQ(framer.next().value(), "{\"c\":3}");
  EXPECT_FALSE(framer.overflowed());
}

TEST(FramingTest, ToleratesCrlfAndDeliversEmptyLines) {
  LineFramer framer;
  framer.feed("{\"a\":1}\r\n\r\n{\"b\":2}\n");
  EXPECT_EQ(framer.next().value(), "{\"a\":1}");
  EXPECT_EQ(framer.next().value(), "");  // blank keep-alive line
  EXPECT_EQ(framer.next().value(), "{\"b\":2}");
  EXPECT_FALSE(framer.next().has_value());
}

TEST(FramingTest, OversizedLineTripsStickyOverflow) {
  LineFramer framer(16);
  framer.feed("{\"ok\":1}\n");
  framer.feed(std::string(64, 'x'));
  EXPECT_EQ(framer.next().value(), "{\"ok\":1}");  // prior lines survive
  EXPECT_TRUE(framer.overflowed());
  // Sticky: further feeds are ignored, no resynchronization is attempted.
  framer.feed("\n{\"late\":2}\n");
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_TRUE(framer.overflowed());
}

TEST(FramingTest, ByteAtATimeFuzzAgainstWholeFeed) {
  // The same byte stream fed in 1-byte, 3-byte and single-shot chunks must
  // produce identical line sequences.
  std::string stream;
  for (int i = 0; i < 40; ++i) {
    stream += "{\"i\":" + std::to_string(i) + "}";
    stream += (i % 3 == 0) ? "\r\n" : "\n";
  }
  const auto collect = [&stream](std::size_t chunk) {
    LineFramer framer;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      framer.feed(stream.data() + at, std::min(chunk, stream.size() - at));
    }
    std::vector<std::string> lines;
    while (auto line = framer.next()) lines.push_back(*line);
    return lines;
  };
  const auto whole = collect(stream.size());
  EXPECT_EQ(whole.size(), 40u);
  EXPECT_EQ(collect(1), whole);
  EXPECT_EQ(collect(3), whole);
}

// --- Protocol helpers ------------------------------------------------------

TEST(ProtocolTest, ClientIdCanonicalizesStringsAndIntegers) {
  EXPECT_EQ(net::client_id_text(Json("job-7")), "job-7");
  EXPECT_EQ(net::client_id_text(Json::parse("42")), "42");
  EXPECT_THROW(net::client_id_text(Json::parse("null")), std::runtime_error);
  EXPECT_THROW(net::client_id_text(Json::parse("1.5")), std::runtime_error);
  EXPECT_THROW(net::client_id_text(Json::parse("\"\"")), std::runtime_error);
}

TEST(ProtocolTest, ProgressKindNamesRoundTrip) {
  for (const auto kind :
       {api::ProgressKind::Queued, api::ProgressKind::Started,
        api::ProgressKind::Phase, api::ProgressKind::Incumbent,
        api::ProgressKind::Finished}) {
    EXPECT_EQ(net::progress_kind_from_string(
                  std::string(api::to_string(kind))),
              kind);
  }
  EXPECT_THROW(net::progress_kind_from_string("nope"), std::runtime_error);
}

// --- Live loopback server --------------------------------------------------

TEST(NetServerTest, SubmitStreamsProgressAndMatchesLocalSolve) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  std::vector<api::ProgressKind> kinds;
  const auto result = client.solve(
      quick_request(7), "req-1", /*want_progress=*/true,
      [&kinds](const api::ProgressEvent& event) {
        kinds.push_back(event.kind);
      });
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.schedule_feasible);
  // Queued and Started always stream; Finished terminates client-side.
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds.front(), api::ProgressKind::Queued);
  EXPECT_EQ(kinds[1], api::ProgressKind::Started);

  // Deterministic solver: the remote result matches an in-process solve.
  const api::SolveOptions options{.seed = 7};
  const auto local = api::solve(
      "greedy-bags", api::make_instance("uniform", 30, 4, options), options);
  EXPECT_DOUBLE_EQ(result.makespan, local.makespan);
  EXPECT_GT(result.schedule.num_jobs(), 0);

  server.stop();
  server.wait();
}

TEST(NetServerTest, ScheduleCanBeOmittedFromTheFinishedFrame) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  const auto result = client.solve(quick_request(), "1",
                                   /*want_progress=*/false, {},
                                   /*want_schedule=*/false);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.schedule.num_jobs(), 0);
  EXPECT_GT(result.makespan, 0.0);
  server.stop();
  server.wait();
}

TEST(NetServerTest, MultiplexesRequestsOnOneConnection) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    client.submit(quick_request(static_cast<std::uint64_t>(i + 1)),
                  std::to_string(i));
  }
  int finished = 0;
  while (finished < kRequests) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value()) << "server closed early";
    if (frame->string_or("type", "") == "event" &&
        frame->string_or("event", "") == "finished") {
      ++finished;
      const Json* result = frame->find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_EQ(result->at("status").as_string(), "feasible");
    }
  }
  server.stop();
  server.wait();
}

TEST(NetServerTest, StructuredErrorsForGarbageAndBadRequests) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  client.send_line("this is not json");
  auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("type", ""), "error");
  EXPECT_EQ(frame->string_or("code", ""), "parse_error");

  client.send_line("{\"type\":\"submit\",\"id\":\"x\"}");  // no request
  frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("code", ""), "bad_request");
  EXPECT_EQ(frame->string_or("id", ""), "x");

  Json request = api::to_json(quick_request());
  request.set("solvers", Json::parse("[\"no-such-solver\"]"));
  Json bad = Json::object();
  bad.set("type", "submit");
  bad.set("id", "y");
  bad.set("request", std::move(request));
  client.send_line(bad.dump());
  frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("code", ""), "unknown_solver");
  EXPECT_EQ(frame->string_or("id", ""), "y");

  client.send_line("{\"type\":\"warble\"}");
  frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("code", ""), "bad_request");

  // The connection survived all of it: a real solve still works.
  EXPECT_TRUE(client.solve(quick_request(), "ok-1").ok());

  const auto counters = server.counters();
  EXPECT_EQ(counters.parse_errors, 1u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, OversizedFrameGetsErrorThenClose) {
  auto config = test_config();
  config.max_frame_bytes = 1024;
  SchedServer server(config);
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  client.send_line(std::string(4096, 'x'));
  auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("code", ""), "oversized_frame");
  // The stream cannot be resynchronized: the server closes after the error.
  EXPECT_FALSE(client.read_frame().has_value());
  EXPECT_EQ(server.counters().oversized_frames, 1u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, DuplicateAndUnknownIdsAreStructuredErrors) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  client.submit(slow_request(), "dup");
  client.submit(quick_request(), "dup");
  bool saw_duplicate = false;
  while (!saw_duplicate) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->string_or("type", "") != "error") continue;
    EXPECT_EQ(frame->string_or("code", ""), "duplicate_id");
    EXPECT_EQ(frame->string_or("id", ""), "dup");
    saw_duplicate = true;
  }

  client.cancel("never-submitted");
  bool saw_unknown = false;
  while (!saw_unknown) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->string_or("type", "") != "error") continue;
    EXPECT_EQ(frame->string_or("code", ""), "unknown_id");
    saw_unknown = true;
  }

  client.cancel("dup");  // release the slow solve before teardown
  server.stop();
  server.wait();
}

TEST(NetServerTest, CancelResolvesWithCancelledStatus) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  client.submit(slow_request(), "slow", /*want_progress=*/true);
  // Wait for Started so the cancel lands mid-solve, then cancel.
  for (;;) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->string_or("event", "") == "started") break;
  }
  client.cancel("slow");
  bool saw_ok = false;
  bool saw_finished = false;
  while (!saw_finished) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value());
    const std::string type = frame->string_or("type", "");
    if (type == "ok") {
      EXPECT_EQ(frame->string_or("op", ""), "cancel");
      saw_ok = true;
    }
    if (frame->string_or("event", "") == "finished") {
      const Json* result = frame->find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_EQ(result->at("status").as_string(), "cancelled");
      saw_finished = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_EQ(server.counters().cancels, 1u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, LoadShedsWithStructuredRejectionFrames) {
  auto config = test_config();
  config.service.num_threads = 1;
  config.service.max_concurrent = 1;
  config.service.max_queue_depth = 1;
  SchedServer server(config);
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  // One solve occupies the slot, one sits in the queue; the rest must come
  // back as structured rejection frames, not dropped connections.
  client.submit(slow_request(), "hog");
  client.submit(slow_request(), "queued");
  const int kOverflow = 4;
  int rejections = 0;
  for (int i = 0; i < kOverflow; ++i) {
    const auto result =
        client.solve(quick_request(), "over-" + std::to_string(i));
    EXPECT_EQ(result.status, api::SolveStatus::Cancelled);
    EXPECT_NE(result.error.find("rejected"), std::string::npos);
    ++rejections;
  }
  EXPECT_EQ(rejections, kOverflow);
  EXPECT_EQ(server.service().stats().rejected,
            static_cast<std::uint64_t>(kOverflow));
  client.cancel("hog");
  client.cancel("queued");
  server.stop();
  server.wait();
}

TEST(NetServerTest, StatsFrameCarriesServiceCacheAndServerSections) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.solve(quick_request(), "warm").ok());
  const Json stats = client.stats();
  EXPECT_EQ(stats.at("service").at("submitted").as_int(), 1);
  EXPECT_EQ(stats.at("service").at("finished").as_int(), 1);
  EXPECT_GE(stats.at("server").at("frames_in").as_int(), 2);
  EXPECT_EQ(stats.at("server").at("connections_active").as_int(), 1);
  EXPECT_TRUE(stats.at("cache").find("entries") != nullptr);
  server.stop();
  server.wait();
}

TEST(NetServerTest, PingPong) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  client.send_line("{\"type\":\"ping\"}");
  auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("type", ""), "pong");
  server.stop();
  server.wait();
}

TEST(NetServerTest, MetricsEndpointServesPrometheusText) {
  SchedServer server(test_config());
  server.start();
  {
    auto client = Client::connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.solve(quick_request(), "m").ok());
  }
  const std::string body = net::fetch_metrics("127.0.0.1", server.port());
  EXPECT_NE(body.find("# TYPE bagsched_service_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("bagsched_service_submitted_total 1"),
            std::string::npos);
  EXPECT_NE(body.find("bagsched_service_queue_depth 0"), std::string::npos);
  EXPECT_NE(body.find("bagsched_server_connections_accepted"),
            std::string::npos);
  EXPECT_NE(body.find("bagsched_cache_entries"), std::string::npos);
  EXPECT_EQ(server.counters().metrics_requests, 1u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, ManyConcurrentClientsAllGetTheirResults) {
  // The acceptance bar: >= 64 clients served concurrently on one poll
  // loop, every one getting its own correct result back.
  auto config = test_config();
  config.service.num_threads = 2;
  config.service.max_concurrent = 2;
  SchedServer server(config);
  server.start();

  const int kClients = 64;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &ok_count, i] {
      auto client = Client::connect("127.0.0.1", server.port());
      const auto result = client.solve(
          quick_request(static_cast<std::uint64_t>(i % 5 + 1)),
          "c" + std::to_string(i));
      if (result.ok() && result.schedule_feasible) ++ok_count;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kClients);
  EXPECT_EQ(server.counters().connections_accepted,
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(server.service().stats().finished,
            static_cast<std::uint64_t>(kClients));
  server.stop();
  server.wait();
}

TEST(NetServerTest, MidStreamDisconnectCancelsOrphanedSolves) {
  auto config = test_config();
  config.service.num_threads = 1;
  config.service.max_concurrent = 1;
  SchedServer server(config);
  server.start();
  {
    auto client = Client::connect("127.0.0.1", server.port());
    client.submit(slow_request(), "orphan", /*want_progress=*/true);
    for (;;) {
      auto frame = client.read_frame();
      ASSERT_TRUE(frame.has_value());
      if (frame->string_or("event", "") == "started") break;
    }
    client.abort();  // RST mid-solve, no goodbye
  }
  // The orphan must be cancelled so its slot frees up; a new client's
  // solve on the single slot proves the release (it would otherwise block
  // behind 30 s of exact search).
  auto client = Client::connect("127.0.0.1", server.port());
  const auto result = client.solve(quick_request(), "next");
  EXPECT_TRUE(result.ok());
  EXPECT_GE(server.counters().disconnect_cancels, 1u);
  server.stop();
  server.wait();
  // And nothing leaked: the service settled every request it accepted.
  const auto stats = server.service().stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_EQ(stats.submitted, stats.finished);
}

TEST(NetServerTest, GracefulDrainFlushesResultsThenRefusesSubmits) {
  auto config = test_config();
  // Generous: the solve must finish well inside the grace even under
  // ASan, or the drain cancels it and the test sees "cancelled".
  config.drain_grace_seconds = 60.0;
  SchedServer server(config);
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  // An eptas solve runs long enough (milliseconds) that the late submit
  // below lands while it is still in flight.
  api::SolveOptions options;
  options.eps = 0.5;
  options.seed = 7;
  const auto inflight_request = api::make_request(
      api::make_instance("uniform", 20, 3, options), options, {"eptas"});
  client.submit(inflight_request, "inflight", /*want_progress=*/true);
  // Wait until the submit is provably accepted, then drain.
  for (;;) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->string_or("event", "") == "queued") break;
  }
  server.request_drain();
  // Past the drain point: this submit must get a structured refusal, not
  // a dropped connection.
  client.submit(quick_request(), "late");

  // The in-flight solve still streams to completion; once everything is
  // flushed the server half-closes and EOF follows.
  bool finished = false;
  bool refused = false;
  for (;;) {
    auto frame = client.read_frame();
    if (!frame.has_value()) break;  // EOF after the drain completed
    if (frame->string_or("event", "") == "finished" &&
        frame->string_or("id", "") == "inflight") {
      const Json* result = frame->find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_EQ(result->at("status").as_string(), "feasible");
      finished = true;
    }
    if (frame->string_or("type", "") == "error" &&
        frame->string_or("id", "") == "late") {
      EXPECT_EQ(frame->string_or("code", ""), "draining");
      refused = true;
    }
  }
  EXPECT_TRUE(finished);
  EXPECT_TRUE(refused);
  client.close();  // our EOF lets the server retire the connection
  server.wait();   // must return: drain completed
  // New connections are refused once the listener closed.
  EXPECT_THROW(Client::connect("127.0.0.1", server.port()),
               std::runtime_error);
}

TEST(NetServerTest, DrainCancelsOverdueSolvesAfterTheGracePeriod) {
  auto config = test_config();
  config.drain_grace_seconds = 0.2;
  SchedServer server(config);
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  client.submit(slow_request(), "stuck", /*want_progress=*/true);
  for (;;) {
    auto frame = client.read_frame();
    ASSERT_TRUE(frame.has_value());
    if (frame->string_or("event", "") == "started") break;
  }
  server.request_drain();
  bool cancelled = false;
  for (;;) {
    auto frame = client.read_frame();
    if (!frame.has_value()) break;
    if (frame->string_or("event", "") == "finished") {
      const Json* result = frame->find("result");
      ASSERT_NE(result, nullptr);
      EXPECT_EQ(result->at("status").as_string(), "cancelled");
      cancelled = true;
    }
  }
  EXPECT_TRUE(cancelled);
  client.close();
  server.wait();
}

// --- Protocol v2: hello, versioning, sessions ------------------------------

TEST(NetServerTest, HelloHandshakeExposesTheServerProtoVersion) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  EXPECT_EQ(client.server_proto_version(), 0);  // nothing read yet
  client.send_line("{\"type\":\"ping\"}");
  auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  // The greeting is swallowed by the client (recorded, not surfaced), so
  // the first visible frame is still the pong a v1 caller expects.
  EXPECT_EQ(frame->string_or("type", ""), "pong");
  EXPECT_EQ(client.server_proto_version(), net::kProtoVersion);
  server.stop();
  server.wait();
}

TEST(NetServerTest, FramesFromTheFutureAreRejectedStructurally) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());
  client.send_line("{\"type\":\"ping\",\"proto_version\":99}");
  auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("type", ""), "error");
  EXPECT_EQ(frame->string_or("code", ""), "unsupported_version");
  // Declaring the server's own version (or none) proceeds normally.
  client.send_line("{\"type\":\"ping\",\"proto_version\":" +
                   std::to_string(net::kProtoVersion) + "}");
  frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->string_or("type", ""), "pong");
  EXPECT_EQ(server.counters().version_rejects, 1u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, SessionOpenDeltaCloseOverTheWire) {
  SchedServer server(test_config());
  server.start();
  auto client = Client::connect("127.0.0.1", server.port());

  const auto request = quick_request(9);
  const auto session = client.open_session(request, "open-1");
  ASSERT_GE(session.id, 1u);
  ASSERT_TRUE(session.initial.ok()) << session.initial.error;
  EXPECT_TRUE(session.initial.schedule_feasible);

  // Apply a delta: one arrival into a fresh bag (always feasible).
  model::Delta delta;
  delta.arrivals.push_back(
      model::JobArrival{0.5, request.instance->num_bags()});
  const auto repaired = client.delta(session.id, delta, "d-1");
  ASSERT_TRUE(repaired.ok()) << repaired.error;
  EXPECT_EQ(repaired.schedule.num_jobs(),
            request.instance->num_jobs() + 1);
  EXPECT_GE(repaired.moved_jobs, 0);
  EXPECT_LE(repaired.migration_ratio, 1.0);

  // A session id this connection never opened is a structured error.
  EXPECT_THROW(client.delta(session.id + 100, delta, "d-bad"),
               std::runtime_error);

  client.close_session(session.id, "close-1");
  EXPECT_THROW(client.delta(session.id, delta, "d-late"),
               std::runtime_error);

  const auto counters = server.counters();
  EXPECT_EQ(counters.session_opens, 1u);
  EXPECT_EQ(counters.session_closes, 1u);
  EXPECT_GE(counters.session_deltas, 1u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, SessionsDieWithTheirConnection) {
  SchedServer server(test_config());
  server.start();
  {
    auto client = Client::connect("127.0.0.1", server.port());
    const auto session = client.open_session(quick_request(4), "s");
    ASSERT_TRUE(session.initial.ok());
    EXPECT_EQ(server.service().stats().open_sessions, 1u);
    client.abort();  // RST, no close_session
  }
  // The poll loop notices the disconnect and closes the orphaned session.
  bool closed = false;
  for (int i = 0; i < 100 && !closed; ++i) {
    closed = server.service().stats().open_sessions == 0;
    if (!closed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(closed);
  server.stop();
  server.wait();
}

TEST(NetServerTest, RecoveringServerRefusesWorkUntilReady) {
  auto config = test_config();
  config.start_recovering = true;
  SchedServer server(config);
  server.start();
  ASSERT_TRUE(server.recovering());

  // Probes see 503 "recovering" — distinguishable from both "down" (no
  // listener) and "draining".
  const auto [status, body] = net::fetch_healthz("127.0.0.1", server.port());
  EXPECT_EQ(status, 503);
  EXPECT_EQ(body, "recovering\n");

  auto client = Client::connect("127.0.0.1", server.port());
  // Diagnostics still answer...
  const Json stats = client.stats();
  EXPECT_EQ(stats.string_or("type", ""), "stats");
  // ...but work is refused with a structured "recovering" error.
  try {
    client.solve(quick_request(1), "early");
    FAIL() << "expected a recovering error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("recovering"),
              std::string::npos);
  }
  EXPECT_GE(server.counters().recovering_rejects, 1u);

  server.set_ready();
  EXPECT_FALSE(server.recovering());
  const auto [ready_status, ready_body] =
      net::fetch_healthz("127.0.0.1", server.port());
  EXPECT_EQ(ready_status, 200);
  const auto result = client.solve(quick_request(1), "late");
  EXPECT_TRUE(result.ok()) << result.error;
  server.stop();
  server.wait();
}

TEST(NetServerTest, ResumeSessionReclaimsAnOrphanInsideTheLingerWindow) {
  auto config = test_config();
  config.session_linger_seconds = 30.0;
  SchedServer server(config);
  server.start();

  const auto request = quick_request(9);
  model::Delta delta;
  delta.arrivals.push_back(
      model::JobArrival{0.5, request.instance->num_bags()});

  // Open a session, commit one delta, then die without close_session.
  std::uint64_t session_id = 0;
  std::uint64_t epoch = 0;
  std::string committed_digest;
  {
    auto client = Client::connect("127.0.0.1", server.port());
    const auto session = client.open_session(request, "s1");
    ASSERT_TRUE(session.initial.ok());
    ASSERT_NE(session.epoch, 0u);
    session_id = session.id;
    epoch = session.epoch;
    const auto repaired = client.delta(session.id, delta, "d1");
    ASSERT_TRUE(repaired.ok()) << repaired.error;
    committed_digest = persist::schedule_digest(repaired.schedule);
    client.abort();  // RST, no goodbye
  }

  // The session is parked, not closed: still open service-side.
  bool orphaned = false;
  for (int i = 0; i < 100 && !orphaned; ++i) {
    orphaned = server.counters().sessions_orphaned >= 1;
    if (!orphaned) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(orphaned);
  EXPECT_EQ(server.service().stats().open_sessions, 1u);

  auto reclaimer = Client::connect("127.0.0.1", server.port());
  // A delta into the linger window without resuming first: the session is
  // not bound to this connection, so it must be refused...
  EXPECT_THROW(reclaimer.delta(session_id, delta, "too-early"),
               std::runtime_error);
  // ...a stale epoch token must be refused...
  try {
    reclaimer.resume_session(session_id, epoch + 1, "bad-epoch");
    FAIL() << "expected stale_epoch";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("stale_epoch"),
              std::string::npos);
  }
  // ...an unknown session likewise...
  EXPECT_THROW(reclaimer.resume_session(session_id + 99, epoch, "bad-id"),
               std::runtime_error);
  // ...and the genuine token reclaims the session where it left off.
  const Client::Resumed resumed =
      reclaimer.resume_session(session_id, epoch, "r1");
  EXPECT_EQ(resumed.session, session_id);
  EXPECT_EQ(resumed.epoch, epoch);
  EXPECT_EQ(resumed.revision, 1u);
  EXPECT_EQ(resumed.digest, committed_digest);

  // The reclaimed session keeps working on the new connection.
  model::Delta another;
  another.arrivals.push_back(
      model::JobArrival{0.25, request.instance->num_bags()});
  const auto after = reclaimer.delta(session_id, another, "d2");
  ASSERT_TRUE(after.ok()) << after.error;
  reclaimer.close_session(session_id, "c1");

  const auto counters = server.counters();
  EXPECT_EQ(counters.session_resumes, 1u);
  EXPECT_GE(counters.resume_rejects, 2u);
  EXPECT_EQ(counters.orphans_expired, 0u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, OrphanedSessionsExpireAfterTheLingerWindow) {
  auto config = test_config();
  config.session_linger_seconds = 0.05;
  SchedServer server(config);
  server.start();

  std::uint64_t session_id = 0;
  std::uint64_t epoch = 0;
  {
    auto client = Client::connect("127.0.0.1", server.port());
    const auto session = client.open_session(quick_request(4), "s");
    ASSERT_TRUE(session.initial.ok());
    session_id = session.id;
    epoch = session.epoch;
    client.abort();
  }
  // The sweep closes the orphan once the linger elapses.
  bool expired = false;
  for (int i = 0; i < 200 && !expired; ++i) {
    expired = server.service().stats().open_sessions == 0;
    if (!expired) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(expired);
  EXPECT_GE(server.counters().orphans_expired, 1u);

  // Too late: even the correct epoch cannot bring it back.
  auto late = Client::connect("127.0.0.1", server.port());
  try {
    late.resume_session(session_id, epoch, "late");
    FAIL() << "expected unknown_session";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("unknown_session"),
              std::string::npos);
  }
  server.stop();
  server.wait();
}

TEST(NetServerTest, ResumeIsRefusedWhileTheSessionIsOwnedElsewhere) {
  auto config = test_config();
  config.session_linger_seconds = 30.0;
  SchedServer server(config);
  server.start();

  auto owner = Client::connect("127.0.0.1", server.port());
  const auto session = owner.open_session(quick_request(5), "s");
  ASSERT_TRUE(session.initial.ok());

  auto thief = Client::connect("127.0.0.1", server.port());
  try {
    thief.resume_session(session.id, session.epoch, "steal");
    FAIL() << "expected session_owned";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("session_owned"),
              std::string::npos);
  }
  // Resuming a session already bound to THIS connection is an idempotent
  // re-acknowledgement, not an error (a retried resume whose ok was lost).
  const Client::Resumed again =
      owner.resume_session(session.id, session.epoch, "again");
  EXPECT_EQ(again.session, session.id);
  EXPECT_EQ(again.revision, 0u);
  server.stop();
  server.wait();
}

TEST(NetServerTest, CloseSessionRacingDrainStaysConsistent) {
  // close_session and request_drain land at the same instant, repeatedly:
  // whichever wins, the server must answer something structured (ok or a
  // draining error), drain to completion, and leave no session behind.
  for (int round = 0; round < 5; ++round) {
    auto config = test_config();
    config.session_linger_seconds = 5.0;  // orphans must not outlive drain
    SchedServer server(config);
    server.start();
    auto client = Client::connect("127.0.0.1", server.port());
    const auto session = client.open_session(
        quick_request(static_cast<std::uint64_t>(round)), "s");
    ASSERT_TRUE(session.initial.ok());

    std::thread drainer([&server] { server.request_drain(); });
    try {
      client.close_session(session.id, "race");
    } catch (const std::exception&) {
      // A draining refusal (or a closed connection) is a legal outcome.
    }
    drainer.join();
    server.wait();
    EXPECT_EQ(server.service().stats().open_sessions, 0u);
    EXPECT_EQ(server.counters().connections_active, 0u);
  }
}

TEST(NetServerTest, SoakManyConnectionsWithKills) {
  // Hundreds of short-lived connections, a third of them killed abruptly
  // (RST) mid-request; the server must neither leak handles nor wedge, and
  // the service must settle to submitted == finished. Sized to stay fast
  // under ASan.
  auto config = test_config();
  SchedServer server(config);
  server.start();

  const int kRounds = 150;
  int clean = 0;
  for (int i = 0; i < kRounds; ++i) {
    auto client = Client::connect("127.0.0.1", server.port());
    if (i % 3 == 2) {
      // Kill mid-stream: submit, read one frame, RST.
      client.submit(quick_request(static_cast<std::uint64_t>(i)), "kill");
      auto frame = client.read_frame();
      client.abort();
      continue;
    }
    const auto result =
        client.solve(quick_request(static_cast<std::uint64_t>(i)), "s");
    if (result.ok()) ++clean;
  }
  EXPECT_EQ(clean, kRounds - kRounds / 3);
  server.service().wait_idle();
  const auto stats = server.service().stats();
  EXPECT_EQ(stats.submitted, stats.finished);
  EXPECT_EQ(stats.active, 0u);
  const auto counters = server.counters();
  EXPECT_EQ(counters.connections_accepted,
            static_cast<std::uint64_t>(kRounds));
  server.stop();
  server.wait();
  EXPECT_EQ(server.counters().connections_active, 0u);
}

}  // namespace
}  // namespace bagsched
