// Tests for Dinic max-flow and the Lemma-3-shaped assignment helper.
#include <gtest/gtest.h>

#include "flow/assignment.h"
#include "flow/dinic.h"
#include "util/prng.h"

namespace bagsched {
namespace {

using flow::AssignmentProblem;
using flow::Dinic;

TEST(DinicTest, SimplePath) {
  Dinic dinic(4);
  dinic.add_edge(0, 1, 3);
  dinic.add_edge(1, 2, 2);
  dinic.add_edge(2, 3, 5);
  EXPECT_EQ(dinic.max_flow(0, 3), 2);
}

TEST(DinicTest, ParallelPaths) {
  Dinic dinic(4);
  dinic.add_edge(0, 1, 2);
  dinic.add_edge(0, 2, 3);
  dinic.add_edge(1, 3, 4);
  dinic.add_edge(2, 3, 1);
  EXPECT_EQ(dinic.max_flow(0, 3), 3);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS-style network with known max flow 23.
  Dinic dinic(6);
  dinic.add_edge(0, 1, 16);
  dinic.add_edge(0, 2, 13);
  dinic.add_edge(1, 2, 10);
  dinic.add_edge(2, 1, 4);
  dinic.add_edge(1, 3, 12);
  dinic.add_edge(3, 2, 9);
  dinic.add_edge(2, 4, 14);
  dinic.add_edge(4, 3, 7);
  dinic.add_edge(3, 5, 20);
  dinic.add_edge(4, 5, 4);
  EXPECT_EQ(dinic.max_flow(0, 5), 23);
}

TEST(DinicTest, FlowOnEdgesConserved) {
  Dinic dinic(4);
  const int e01 = dinic.add_edge(0, 1, 10);
  const int e12 = dinic.add_edge(1, 2, 4);
  const int e13 = dinic.add_edge(1, 3, 3);
  const int e23 = dinic.add_edge(2, 3, 10);
  const auto total = dinic.max_flow(0, 3);
  EXPECT_EQ(total, 7);
  EXPECT_EQ(dinic.flow_on(e01), 7);
  EXPECT_EQ(dinic.flow_on(e12) + dinic.flow_on(e13), 7);
  EXPECT_EQ(dinic.flow_on(e23), dinic.flow_on(e12));
}

TEST(DinicTest, DisconnectedGivesZero) {
  Dinic dinic(4);
  dinic.add_edge(0, 1, 5);
  dinic.add_edge(2, 3, 5);
  EXPECT_EQ(dinic.max_flow(0, 3), 0);
}

TEST(DinicTest, MatchesBipartiteMatchingBruteForce) {
  // 3x3 bipartite with adjacency; perfect matching exists.
  Dinic dinic(8);  // 0 src, 1-3 left, 4-6 right, 7 sink
  for (int l = 1; l <= 3; ++l) dinic.add_edge(0, l, 1);
  for (int r = 4; r <= 6; ++r) dinic.add_edge(r, 7, 1);
  dinic.add_edge(1, 4, 1);
  dinic.add_edge(1, 5, 1);
  dinic.add_edge(2, 5, 1);
  dinic.add_edge(3, 5, 1);
  dinic.add_edge(3, 6, 1);
  EXPECT_EQ(dinic.max_flow(0, 7), 3);
}

TEST(AssignmentTest, FeasibleAssignment) {
  AssignmentProblem problem;
  problem.demands = {2, 1};
  problem.capacities = {1, 1, 1};
  problem.allowed = [](int, int) { return true; };
  const auto result = flow::solve_assignment(problem);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ((*result)[0].size(), 2u);
  EXPECT_EQ((*result)[1].size(), 1u);
  // Each slot used at most its capacity.
  std::vector<int> used(3, 0);
  for (const auto& group : *result) {
    for (int slot : group) ++used[static_cast<std::size_t>(slot)];
  }
  for (int u : used) EXPECT_LE(u, 1);
}

TEST(AssignmentTest, RespectsForbiddenPairs) {
  AssignmentProblem problem;
  problem.demands = {1};
  problem.capacities = {1, 1};
  problem.allowed = [](int, int slot) { return slot == 1; };
  const auto result = flow::solve_assignment(problem);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ((*result)[0].size(), 1u);
  EXPECT_EQ((*result)[0][0], 1);
}

TEST(AssignmentTest, InfeasibleReturnsNullopt) {
  AssignmentProblem problem;
  problem.demands = {2};
  problem.capacities = {1, 1};
  problem.allowed = [](int, int slot) { return slot == 0; };
  EXPECT_FALSE(flow::solve_assignment(problem).has_value());
}

TEST(AssignmentTest, GroupUsesSlotAtMostOnce) {
  AssignmentProblem problem;
  problem.demands = {2};
  problem.capacities = {5, 5};  // slot could hold both, edge cap must forbid
  problem.allowed = [](int, int) { return true; };
  const auto result = flow::solve_assignment(problem);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ((*result)[0].size(), 2u);
  EXPECT_NE((*result)[0][0], (*result)[0][1]);
}

class RandomFlowTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowTest, FlowEqualsMinCutOnRandomDags) {
  // Property: flow value equals capacity of some (s,t)-cut found by BFS on
  // the residual graph (weak duality check: flow <= any cut; we verify the
  // residual-reachability cut is saturated).
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const int n = 8;
  Dinic dinic(n);
  struct EdgeRec { int u, v, id; std::int64_t cap; };
  std::vector<EdgeRec> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.5)) {
        const auto cap = rng.uniform_int(1, 10);
        edges.push_back({u, v, dinic.add_edge(u, v, cap), cap});
      }
    }
  }
  const auto flow_value = dinic.max_flow(0, n - 1);
  // Conservation at internal nodes.
  std::vector<std::int64_t> balance(n, 0);
  for (const auto& edge : edges) {
    const auto f = dinic.flow_on(edge.id);
    EXPECT_GE(f, 0);
    EXPECT_LE(f, edge.cap);
    balance[static_cast<std::size_t>(edge.u)] -= f;
    balance[static_cast<std::size_t>(edge.v)] += f;
  }
  for (int v = 1; v < n - 1; ++v) EXPECT_EQ(balance[v], 0);
  EXPECT_EQ(balance[n - 1], flow_value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace bagsched
