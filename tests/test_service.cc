// Tests for the asynchronous SchedulingService: submit/wait/try_get,
// batched fan-out over a bounded pool, priority ordering under saturation,
// deadline-triggered cooperative cancellation (best incumbent returned),
// handle cancellation, backpressure, progress streaming and shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "api/api.h"

namespace bagsched {
namespace {

using api::ProgressEvent;
using api::ProgressKind;
using api::SchedulingService;
using api::SolveHandle;
using api::SolveRequest;
using api::SolveStatus;

/// A request the pool cannot finish quickly: exact branch-and-bound on a
/// 60-job instance explores far beyond any test budget, so it runs until
/// its token (deadline / cancel / certificate) or time limit fires.
SolveRequest slow_exact_request(double time_limit_seconds = 30.0) {
  api::SolveOptions options;
  options.time_limit_seconds = time_limit_seconds;
  options.seed = 3;
  return api::make_request(api::make_instance("uniform", 60, 8, options),
                           options, {"exact"});
}

SolveRequest quick_request(std::uint64_t seed, const char* solver) {
  api::SolveOptions options;
  options.seed = seed;
  return api::make_request(api::make_instance("uniform", 40, 6, options),
                           options, {solver});
}

// --- Async submit + wait ----------------------------------------------------

TEST(ServiceTest, SubmitWaitMatchesSynchronousSolve) {
  SchedulingService service({.num_threads = 2});
  const auto instance = api::make_instance("uniform", 80, 8, {.seed = 5});
  auto handle = service.submit(
      api::make_request(instance, {.seed = 5}, {"local-search"}));
  EXPECT_GT(handle.id(), 0u);
  const auto& result = handle.wait();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.schedule_feasible);
  // Same instance + options through the blocking path: identical outcome.
  const auto sync = api::solve("local-search", instance, {.seed = 5});
  EXPECT_DOUBLE_EQ(result.makespan, sync.makespan);
  EXPECT_EQ(result.schedule.assignment(), sync.schedule.assignment());
  // Telemetry gained the service-side fields.
  EXPECT_EQ(api::stat_int(result.stats, "request_id"),
            static_cast<long long>(handle.id()));
}

TEST(ServiceTest, TryGetIsNonBlocking) {
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  auto blocker = service.submit(slow_exact_request());
  auto queued = service.submit(quick_request(1, "greedy-bags"));
  // The blocker owns the only slot, so the queued request cannot be done.
  EXPECT_FALSE(queued.done());
  EXPECT_EQ(queued.try_get(), std::nullopt);
  blocker.cancel();
  const auto& result = queued.wait();
  EXPECT_TRUE(result.ok());
  ASSERT_TRUE(queued.try_get().has_value());
  EXPECT_DOUBLE_EQ(queued.try_get()->makespan, result.makespan);
  blocker.wait();
}

TEST(ServiceTest, WaitForTimesOutThenSucceeds) {
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  auto blocker = service.submit(slow_exact_request());
  auto queued = service.submit(quick_request(2, "greedy-bags"));
  EXPECT_FALSE(queued.wait_for(0.05));
  blocker.cancel();
  EXPECT_TRUE(queued.wait_for(30.0));
  blocker.wait();
}

// --- Batch submit over a bounded pool ---------------------------------------

TEST(ServiceTest, BatchOf32ResolvesEveryHandleOverBoundedPool) {
  SchedulingService service({.num_threads = 4, .max_concurrent = 4});
  std::vector<SolveRequest> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back(quick_request(static_cast<std::uint64_t>(i + 1),
                                  i % 2 == 0 ? "greedy-bags" : "multifit"));
  }
  auto handles = service.submit_batch(std::move(batch));
  ASSERT_EQ(handles.size(), 32u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto& result = handles[i].wait();
    EXPECT_TRUE(result.ok()) << "request " << i;
    EXPECT_TRUE(result.schedule_feasible) << "request " << i;
    // Deterministic solvers: the async result matches a blocking solve.
    const api::SolveOptions options{
        .seed = static_cast<std::uint64_t>(i + 1)};
    const auto sync =
        api::solve(i % 2 == 0 ? "greedy-bags" : "multifit",
                   api::make_instance("uniform", 40, 6, options), options);
    EXPECT_DOUBLE_EQ(result.makespan, sync.makespan) << "request " << i;
  }
  service.wait_idle();
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.finished, 32u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active, 0u);
}

// --- Priority ordering under a saturated queue ------------------------------

TEST(ServiceTest, PriorityOrdersDispatchUnderSaturation) {
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});

  std::mutex order_mutex;
  std::vector<int> started_priorities;
  const auto record_start = [&](int priority) {
    return [&, priority](const ProgressEvent& event) {
      if (event.kind != ProgressKind::Started) return;
      std::lock_guard<std::mutex> lock(order_mutex);
      started_priorities.push_back(priority);
    };
  };

  // Saturate the single slot first, then queue mixed priorities.
  auto blocker = service.submit(slow_exact_request());
  std::vector<SolveHandle> handles;
  const int priorities[] = {0, 5, 1, 9, 3};
  for (const int priority : priorities) {
    auto request = quick_request(static_cast<std::uint64_t>(priority + 1),
                                 "greedy-bags");
    request.priority = priority;
    request.on_progress = record_start(priority);
    handles.push_back(service.submit(std::move(request)));
  }
  blocker.cancel();
  for (auto& handle : handles) handle.wait();
  blocker.wait();

  // One worker slot → strictly descending dispatch by priority.
  const std::vector<int> expected = {9, 5, 3, 1, 0};
  EXPECT_EQ(started_priorities, expected);
}

// --- Deadlines --------------------------------------------------------------

TEST(ServiceTest, DeadlineExpiryReturnsCancelledWithBestIncumbent) {
  SchedulingService service({.num_threads = 2});
  auto request = slow_exact_request(/*time_limit_seconds=*/30.0);
  request.deadline = api::deadline_in(0.05);
  auto handle = service.submit(std::move(request));
  const auto& result = handle.wait();
  EXPECT_EQ(result.status, SolveStatus::Cancelled);
  EXPECT_TRUE(result.cancelled);
  // The cancellation contract: the incumbent survives with its makespan
  // and feasibility filled in.
  EXPECT_TRUE(result.schedule_feasible);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GE(result.makespan, result.lower_bound);
  EXPECT_TRUE(api::stat_bool(result.stats, "deadline_expired"));
  // Cut well before the 30 s time limit (CI slack: 5 s).
  EXPECT_LT(result.wall_seconds, 5.0);
}

TEST(ServiceTest, DeadlineExpiryWhileQueuedResolvesAtTheDeadline) {
  SchedulingService service({.num_threads = 1, .max_concurrent = 1});
  auto blocker = service.submit(slow_exact_request());
  auto doomed = quick_request(4, "greedy-bags");
  doomed.deadline = api::deadline_in(0.03);
  auto handle = service.submit(std::move(doomed));
  // The deadline is a latency bound: the handle resolves at ~30 ms even
  // though the only worker slot stays busy for much longer.
  EXPECT_TRUE(handle.wait_for(5.0));
  const auto& result = handle.wait();
  EXPECT_EQ(result.status, SolveStatus::Cancelled);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(api::stat_bool(result.stats, "deadline_expired"));
  blocker.cancel();
  blocker.wait();
  service.wait_idle();
  // The expired request never occupied the slot, but still counts as
  // finished.
  EXPECT_EQ(service.stats().finished, 2u);
}

TEST(ServiceTest, HandleCancelResolvesWithIncumbent) {
  SchedulingService service({.num_threads = 2});
  auto handle = service.submit(slow_exact_request());
  // Give the exact search a moment to install its first incumbent.
  handle.wait_for(0.05);
  handle.cancel();
  const auto& result = handle.wait();
  EXPECT_EQ(result.status, SolveStatus::Cancelled);
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(result.schedule_feasible);  // incumbent preserved
  EXPECT_LT(result.wall_seconds, 5.0);
}

// --- Progress streaming -----------------------------------------------------

TEST(ServiceTest, ProgressStreamsLifecycleAndIncumbents) {
  SchedulingService service({.num_threads = 2});
  std::mutex events_mutex;
  std::vector<ProgressEvent> events;
  api::SolveOptions options;
  options.seed = 7;
  auto request = api::make_request(
      api::make_instance("uniform", 18, 4, options), options, {"exact"});
  request.on_progress = [&](const ProgressEvent& event) {
    std::lock_guard<std::mutex> lock(events_mutex);
    events.push_back(event);
  };
  auto handle = service.submit(std::move(request));
  const auto& result = handle.wait();
  ASSERT_TRUE(result.ok());

  // All events are delivered before wait() returns, in lifecycle order,
  // all tagged with the request id.
  std::lock_guard<std::mutex> lock(events_mutex);
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, ProgressKind::Queued);
  EXPECT_EQ(events[1].kind, ProgressKind::Started);
  EXPECT_EQ(events.back().kind, ProgressKind::Finished);
  for (const auto& event : events) {
    EXPECT_EQ(event.request_id, handle.id());
  }
  // The exact solver streamed at least its initial incumbent, and
  // incumbents only ever improve.
  double last = -1.0;
  int incumbents = 0;
  for (const auto& event : events) {
    if (event.kind != ProgressKind::Incumbent) continue;
    ++incumbents;
    EXPECT_EQ(event.solver, "exact");
    if (last >= 0.0) EXPECT_LE(event.incumbent_makespan, last);
    last = event.incumbent_makespan;
  }
  EXPECT_GE(incumbents, 1);
  EXPECT_NEAR(last, result.makespan, 1e-9);
}

// --- Backpressure and rejection ---------------------------------------------

TEST(ServiceTest, QueueDepthCapRejectsOverflow) {
  SchedulingService service(
      {.num_threads = 1, .max_concurrent = 1, .max_queue_depth = 1});
  auto blocker = service.submit(slow_exact_request());
  auto queued = service.submit(quick_request(1, "greedy-bags"));
  auto bounced = service.submit(quick_request(2, "greedy-bags"));
  // The rejected handle resolves immediately, without running.
  const auto& rejection = bounced.wait();
  EXPECT_EQ(rejection.status, SolveStatus::Cancelled);
  EXPECT_NE(rejection.error.find("rejected"), std::string::npos);
  EXPECT_FALSE(rejection.schedule_feasible);
  blocker.cancel();
  EXPECT_TRUE(queued.wait().ok());
  blocker.wait();
  service.wait_idle();
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().submitted, 2u);
}

TEST(ServiceTest, BatchBackpressureCountsFreeWorkerSlots) {
  // An idle service with free slots must not bounce a batch that the same
  // requests submitted one-by-one would have been admitted for.
  SchedulingService service(
      {.num_threads = 2, .max_concurrent = 2, .max_queue_depth = 1});
  std::vector<SolveRequest> batch;
  for (int i = 0; i < 3; ++i) {  // 2 free slots + depth 1 → all 3 admitted
    batch.push_back(quick_request(static_cast<std::uint64_t>(i + 1),
                                  "greedy-bags"));
  }
  auto handles = service.submit_batch(std::move(batch));
  for (auto& handle : handles) {
    EXPECT_TRUE(handle.wait().ok());
  }
  service.wait_idle();
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(ServiceTest, ThrowingProgressCallbackDoesNotHangTheHandle) {
  SchedulingService service({.num_threads = 1});
  auto request = quick_request(1, "greedy-bags");
  request.on_progress = [](const ProgressEvent&) {
    throw std::runtime_error("observer bug");
  };
  auto handle = service.submit(std::move(request));
  ASSERT_TRUE(handle.wait_for(30.0));  // resolves despite the throwing observer
  EXPECT_TRUE(handle.wait().ok());
}

TEST(ServiceTest, ThrowingSolverResolvesHandleWithStructuredError) {
  // eps outside (0,1) makes the EPTAS throw inside the worker; the handle
  // must still resolve (with the error), never hang.
  SchedulingService service({.num_threads = 1});
  api::SolveOptions options;
  options.eps = 2.0;
  auto handle = service.submit(api::make_request(
      api::make_instance("uniform", 20, 4, options), options, {"eptas"}));
  ASSERT_TRUE(handle.wait_for(30.0));
  const auto& result = handle.wait();
  EXPECT_FALSE(result.ok());
  // Error, not Infeasible: the options were bad, not the instance.
  EXPECT_EQ(result.status, SolveStatus::Error);
  EXPECT_NE(result.error.find("eps"), std::string::npos);
  EXPECT_EQ(result.solver, "eptas");
}

TEST(ServiceTest, InvalidHandleFailsDetectably) {
  SolveHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(handle.id(), 0u);
  EXPECT_FALSE(handle.done());
  EXPECT_EQ(handle.try_get(), std::nullopt);
  handle.cancel();  // no-op, not a crash
  EXPECT_THROW(handle.wait(), std::logic_error);
  EXPECT_THROW(handle.wait_for(0.01), std::logic_error);
}

TEST(ServiceTest, SubmitValidatesEagerly) {
  SchedulingService service({.num_threads = 1});
  EXPECT_THROW(service.submit(SolveRequest{}), std::invalid_argument);
  auto request = quick_request(1, "greedy-bags");
  request.solvers = {"no-such-solver"};
  EXPECT_THROW(service.submit(std::move(request)), std::invalid_argument);
}

// --- Portfolio through the service ------------------------------------------

TEST(ServiceTest, MultiSolverRequestRunsPortfolioRace) {
  SchedulingService service({.num_threads = 4});
  api::SolveOptions options;
  options.eps = 0.5;
  options.seed = 4;
  auto request = api::make_request(
      api::make_instance("uniform", 120, 10, options), options,
      {"local-search", "multifit", "bag-lpt"});
  auto handle = service.submit(std::move(request));
  const auto& result = handle.wait();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.schedule_feasible);
  EXPECT_EQ(api::stat_int(result.stats, "portfolio_members"), 3);
  // Per-member summaries ride along as JSON.
  const std::string runs_json =
      api::stat_str(result.stats, "portfolio_runs_json");
  ASSERT_FALSE(runs_json.empty());
  const util::Json runs = util::Json::parse(runs_json);
  ASSERT_EQ(runs.size(), 3u);
  double best = 1e300;
  for (const auto& run : runs.as_array()) {
    best = std::min(best, run.at("makespan").as_number());
  }
  EXPECT_DOUBLE_EQ(best, result.makespan);
}

TEST(ServiceTest, PortfolioRequestEmitsExactlyOneLifecycle) {
  // Nested member lifecycles must not leak: one Queued, one Started, one
  // terminal Finished per request id, no matter how many members race.
  SchedulingService service({.num_threads = 4});
  std::atomic<int> queued{0}, started{0}, finished{0};
  api::SolveOptions options;
  options.seed = 4;
  auto request = api::make_request(
      api::make_instance("uniform", 80, 8, options), options,
      {"local-search", "multifit", "bag-lpt"});
  request.on_progress = [&](const ProgressEvent& event) {
    if (event.kind == ProgressKind::Queued) ++queued;
    if (event.kind == ProgressKind::Started) ++started;
    if (event.kind == ProgressKind::Finished) ++finished;
  };
  auto handle = service.submit(std::move(request));
  ASSERT_TRUE(handle.wait().ok());
  EXPECT_EQ(queued.load(), 1);
  EXPECT_EQ(started.load(), 1);
  EXPECT_EQ(finished.load(), 1);
}

TEST(ServiceTest, CertificateCancelsStragglersAndAllHandlesResolve) {
  // Through the portfolio-as-service-client path: once the MILP (or the
  // EPTAS) certifies on this small instance, the slow exact straggler is
  // cooperatively cancelled and every member handle still resolves.
  const auto instance = api::make_instance("uniform", 200, 16, {.seed = 4});
  api::Portfolio portfolio({"eptas", "exact", "greedy-bags"});
  api::SolveOptions options;
  options.eps = 0.5;
  options.time_limit_seconds = 20.0;
  const auto race = portfolio.solve(instance, options);
  ASSERT_TRUE(race.ok());
  ASSERT_EQ(race.runs.size(), 3u);
  for (const auto& run : race.runs) {
    EXPECT_FALSE(run.solver.empty());  // every handle resolved with a result
  }
  EXPECT_LT(race.wall_seconds, options.time_limit_seconds + 10.0);
  // cancelled_count counts exactly the runs that observed the stop.
  int observed = 0;
  for (const auto& run : race.runs) {
    if (run.cancelled) ++observed;
  }
  EXPECT_EQ(race.cancelled_count, observed);
}

// --- Shutdown ---------------------------------------------------------------

TEST(ServiceTest, DestructorResolvesQueuedRequestsAsCancelled) {
  std::vector<SolveHandle> handles;
  {
    SchedulingService service({.num_threads = 1, .max_concurrent = 1});
    handles.push_back(service.submit(slow_exact_request()));
    for (int i = 0; i < 3; ++i) {
      handles.push_back(
          service.submit(quick_request(static_cast<std::uint64_t>(i + 1),
                                       "greedy-bags")));
    }
    // Service goes out of scope with one running and three queued.
  }
  for (auto& handle : handles) {
    ASSERT_TRUE(handle.done());
    const auto& result = handle.wait();
    EXPECT_EQ(result.status, SolveStatus::Cancelled);
  }
}

}  // namespace
}  // namespace bagsched
