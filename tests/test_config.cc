// Configuration-space tests: profile variants, cap ablations, failure
// injection. The EPTAS must stay feasible under every configuration —
// degraded configs may only cost quality, never correctness.
#include <gtest/gtest.h>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"

namespace bagsched {
namespace {

using eptas::ConstantsProfile;
using eptas::EptasConfig;
using model::Instance;

TEST(ConfigTest, PaperExactProfileOnTinyInstance) {
  // With the paper's b' every bag is priority: the pipeline degenerates to
  // the pure pattern MILP. Must still work on a tiny instance.
  const auto planted = gen::planted({.num_machines = 3,
                                     .num_bags = 6,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 3,
                                     .target = 1.0,
                                     .seed = 1});
  EptasConfig config;
  config.profile = ConstantsProfile::PaperExact;
  const auto result = eptas::eptas_schedule(planted.instance, 0.5, config);
  EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
  EXPECT_LE(result.makespan, 2.0 * planted.opt + 1e-9);
}

TEST(ConfigTest, ZeroPriorityCapForcesNonPriorityPath) {
  // Everything becomes a non-priority bag (except large bags): exercises
  // the B_x slot machinery and the transformation for all bags.
  EptasConfig config;
  config.max_priority_per_size = 0;
  config.max_priority_total = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance instance = gen::by_name("twopoint", 30, 6, seed);
    const auto result = eptas::eptas_schedule(instance, 0.5, config);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  }
}

TEST(ConfigTest, LargePriorityCapStillWorks) {
  EptasConfig config;
  config.max_priority_per_size = 50;
  config.max_priority_total = 200;
  const Instance instance = gen::by_name("replica", 24, 6, 2);
  const auto result = eptas::eptas_schedule(instance, 0.5, config);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
}

TEST(ConfigTest, StarvedMilpFallsBackFeasibly) {
  // Failure injection: a node budget of zero makes every master solve
  // fail; the driver must return the heuristic fallback, still feasible.
  EptasConfig config;
  config.milp.max_nodes = 0;
  const Instance instance = gen::by_name("uniform", 30, 5, 3);
  const auto result = eptas::eptas_schedule(instance, 0.5, config);
  EXPECT_TRUE(result.stats.used_fallback);
  EXPECT_FALSE(result.stats.pipeline_succeeded);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
}

TEST(ConfigTest, StarvedPatternBudgetFallsBackFeasibly) {
  EptasConfig config;
  config.max_milp_patterns = 1;  // column generation cannot even start
  const auto planted = gen::planted({.num_machines = 5,
                                     .num_bags = 10,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 4,
                                     .target = 1.0,
                                     .seed = 4});
  const auto result = eptas::eptas_schedule(planted.instance, 0.5, config);
  EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
}

TEST(ConfigTest, RescueOffStillFeasibleViaFallback) {
  // With rescue disabled, guesses that would need structure-breaking
  // placements fail instead; the driver keeps searching upward or falls
  // back. Result must remain feasible either way.
  EptasConfig config;
  config.enable_rescue = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance instance = gen::by_name("mixed", 40, 6, seed);
    const auto result = eptas::eptas_schedule(instance, 0.5, config);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
    EXPECT_EQ(result.stats.rescues, 0);
  }
}

TEST(ConfigTest, CoarserGuessGridIsFasterButValid) {
  EptasConfig coarse;
  coarse.guess_step_fraction = 2.0;  // huge steps: few guesses
  const Instance instance = gen::by_name("uniform", 40, 6, 5);
  const auto result = eptas::eptas_schedule(instance, 0.5, coarse);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  const auto fine = eptas::eptas_schedule(instance, 0.5, EptasConfig{});
  EXPECT_GE(result.stats.guesses_tried, 1);
  EXPECT_LE(fine.makespan, result.makespan + 1e-9);
}

class EpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsSweep, RatioWithinBandOnPlanted) {
  const double eps = GetParam();
  const auto planted = gen::planted({.num_machines = 6,
                                     .num_bags = 14,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 5,
                                     .target = 1.0,
                                     .seed = 3});
  const auto result = eptas::eptas_schedule(planted.instance, eps);
  EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
  EXPECT_LE(result.makespan, (1.0 + 2.0 * eps) * planted.opt + 1e-9);
  if (result.stats.pipeline_succeeded) {
    EXPECT_LE(result.stats.pipeline_makespan,
              (1.0 + 2.0 * eps) * planted.opt + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Band, EpsSweep,
                         ::testing::Values(0.8, 0.6, 0.5, 0.4, 1.0 / 3.0,
                                           0.25));

class MachineSweep : public ::testing::TestWithParam<int> {};

TEST_P(MachineSweep, FeasibleAndBoundedAcrossMachineCounts) {
  const int m = GetParam();
  const auto planted = gen::planted({.num_machines = m,
                                     .num_bags = 3 * m,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 5,
                                     .target = 1.0,
                                     .seed = 6});
  const auto result = eptas::eptas_schedule(planted.instance, 0.5);
  EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
  EXPECT_LE(result.makespan, 2.0 * planted.opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Machines, MachineSweep,
                         ::testing::Values(2, 3, 5, 9, 17, 33));

}  // namespace
}  // namespace bagsched
