// Tests for util::Json (parser/writer) and the JSON serialization of
// model and api types: instances, schedules, telemetry, results, requests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "api/api.h"
#include "model/io.h"
#include "util/json.h"

namespace bagsched {
namespace {

using util::Json;

// --- util::Json ------------------------------------------------------------

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null").kind(), Json::Kind::Null);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-1e-3").as_number(), -1e-3);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(JsonTest, DumpParseRoundTripPreservesStructure) {
  Json doc = Json::object();
  doc.set("name", "bagsched");
  doc.set("count", 3);
  doc.set("ratio", 0.125);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json list = Json::array();
  list.push_back(1);
  list.push_back("two");
  list.push_back(false);
  doc.set("list", std::move(list));
  Json nested = Json::object();
  nested.set("inner", -7);
  doc.set("nested", std::move(nested));

  for (const int indent : {-1, 0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back["name"].as_string(), "bagsched");
    EXPECT_EQ(back["count"].as_int(), 3);
    EXPECT_DOUBLE_EQ(back["ratio"].as_number(), 0.125);
    EXPECT_TRUE(back["flag"].as_bool());
    EXPECT_TRUE(back["nothing"].is_null());
    ASSERT_EQ(back["list"].size(), 3u);
    EXPECT_EQ(back["list"][0].as_int(), 1);
    EXPECT_EQ(back["list"][1].as_string(), "two");
    EXPECT_FALSE(back["list"][2].as_bool());
    EXPECT_EQ(back["nested"]["inner"].as_int(), -7);
  }
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplaces) {
  Json doc = Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("z", 3);  // replace, not duplicate
  EXPECT_EQ(doc.dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonTest, DoublesSurviveExactly) {
  const double value = 7.192650113378189;
  const Json back = Json::parse(Json(value).dump());
  EXPECT_EQ(back.as_number(), value);  // bit-exact via %.17g
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string nasty = "quote\" back\\slash \t tab \n newline \x01";
  const Json back = Json::parse(Json(nasty).dump());
  EXPECT_EQ(back.as_string(), nasty);
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8) {
  // \uD83D\uDE00 is U+1F600; mainstream serializers (Python ensure_ascii)
  // emit non-BMP characters this way, so the pair must combine instead of
  // decoding as two invalid 3-byte halves.
  const Json parsed = Json::parse("\"\\uD83D\\uDE00\"");
  EXPECT_EQ(parsed.as_string(), "\xF0\x9F\x98\x80");
  // Lone or mismatched surrogates are malformed input.
  EXPECT_THROW(Json::parse("\"\\uD83D\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\uD83Dx\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\uDE00\""), std::runtime_error);
  EXPECT_THROW(Json::parse("\"\\uD83D\\uD83D\""), std::runtime_error);
}

TEST(JsonTest, ParseErrorsCarryPosition) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated",
        "[1] trailing", "{\"a\":}"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(JsonTest, DeeplyNestedInputThrowsInsteadOfOverflowing) {
  const std::string bomb(100000, '[');
  EXPECT_THROW(Json::parse(bomb), std::runtime_error);
  EXPECT_THROW(Json::parse(std::string(100000, '[') +
                           std::string(100000, ']')),
               std::runtime_error);
}

TEST(JsonTest, NonIntegralNumbersFailAsInt) {
  EXPECT_THROW(Json(2.7).as_int(), std::runtime_error);
  EXPECT_EQ(Json(3.0).as_int(), 3);
  // A fractional machine count is a malformed document, not machines=3.
  EXPECT_THROW(model::instance_from_json(Json::parse(
                   "{\"machines\": 2.7, \"bags\": 1, \"jobs\": []}")),
               std::runtime_error);
}

TEST(JsonTest, KindMismatchThrows) {
  const Json number(1.5);
  EXPECT_THROW(number.as_string(), std::runtime_error);
  EXPECT_THROW(number.at("key"), std::runtime_error);
  const Json object = Json::object();
  EXPECT_THROW(object.at("missing"), std::out_of_range);
  EXPECT_EQ(object.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(object.number_or("missing", 2.5), 2.5);
}

// --- model JSON ------------------------------------------------------------

TEST(JsonModelTest, InstanceRoundTrips) {
  const auto instance = gen::by_name("replica", 24, 6, 3);
  const auto back =
      model::instance_from_json(Json::parse(
          model::instance_to_json(instance).dump(2)));
  ASSERT_EQ(back.num_jobs(), instance.num_jobs());
  EXPECT_EQ(back.num_machines(), instance.num_machines());
  EXPECT_EQ(back.num_bags(), instance.num_bags());
  for (model::JobId j = 0; j < instance.num_jobs(); ++j) {
    EXPECT_EQ(back.job(j).size, instance.job(j).size);
    EXPECT_EQ(back.job(j).bag, instance.job(j).bag);
  }
}

TEST(JsonModelTest, MalformedInstanceJsonThrows) {
  // validate() runs on the parsed document: a bag id out of range throws.
  const char* bad =
      "{\"machines\": 2, \"bags\": 1, \"jobs\": [{\"size\": 1, \"bag\": 5}]}";
  EXPECT_THROW(model::instance_from_json(Json::parse(bad)),
               std::invalid_argument);
  EXPECT_THROW(model::instance_from_json(Json::parse("{}")),
               std::out_of_range);
}

TEST(JsonModelTest, ScheduleJsonRejectsOutOfRangeMachineIds) {
  EXPECT_THROW(
      model::schedule_from_json(Json::parse(
          "{\"machines\": 2, \"assignment\": [5, 0]}")),
      std::runtime_error);
  EXPECT_THROW(
      model::schedule_from_json(Json::parse(
          "{\"machines\": 2, \"assignment\": [-3, 0]}")),
      std::runtime_error);
}

TEST(JsonModelTest, ScheduleRoundTripsIncludingUnassigned) {
  model::Schedule schedule(4, 3);
  schedule.assign(0, 2);
  schedule.assign(1, 0);
  schedule.assign(3, 1);  // job 2 stays unassigned (-1)
  const auto back = model::schedule_from_json(
      Json::parse(model::schedule_to_json(schedule).dump()));
  ASSERT_EQ(back.num_jobs(), 4);
  EXPECT_EQ(back.num_machines(), 3);
  EXPECT_EQ(back.assignment(), schedule.assignment());
  EXPECT_FALSE(back.is_assigned(2));
}

// --- api JSON ---------------------------------------------------------------

TEST(JsonApiTest, TelemetryRoundTripsWithTypes) {
  api::Telemetry stats;
  stats["nodes"] = 12345LL;
  stats["gap"] = 0.0125;
  stats["certified"] = true;
  stats["note"] = std::string("hello world");
  const api::Telemetry back =
      api::telemetry_from_json(Json::parse(api::to_json(stats).dump()));
  EXPECT_EQ(api::stat_int(back, "nodes"), 12345);
  EXPECT_DOUBLE_EQ(api::stat_real(back, "gap"), 0.0125);
  EXPECT_TRUE(api::stat_bool(back, "certified"));
  EXPECT_EQ(api::stat_str(back, "note"), "hello world");
  // The type tags keep long long and double distinct through the trip.
  EXPECT_TRUE(std::holds_alternative<long long>(back.at("nodes")));
  EXPECT_TRUE(std::holds_alternative<double>(back.at("gap")));
}

TEST(JsonApiTest, ControlCharacterStringsStayWireSafe) {
  // Strings carrying every byte the JSON grammar forbids raw must still
  // produce a single parseable line — the NDJSON wire protocol frames on
  // '\n', so an unescaped control character would corrupt the stream.
  std::string hostile;
  for (int c = 0; c < 0x20; ++c) hostile += static_cast<char>(c);
  hostile += "\"backslash\\slash/\x7f";
  api::Telemetry stats;
  stats["hostile"] = hostile;
  const std::string dumped = api::to_json(stats).dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  EXPECT_EQ(dumped.find('\r'), std::string::npos);
  const api::Telemetry back =
      api::telemetry_from_json(Json::parse(dumped));
  EXPECT_EQ(api::stat_str(back, "hostile"), hostile);
}

TEST(JsonApiTest, NonFiniteTelemetryRoundTrips) {
  // The writer renders bare non-finite doubles as null (JSON has no NaN);
  // the telemetry layer's tagged encoding must survive the round trip
  // anyway — a solver reporting inf/NaN may never yield a frame the other
  // side cannot decode.
  api::Telemetry stats;
  stats["nan"] = std::nan("");
  stats["inf"] = std::numeric_limits<double>::infinity();
  stats["ninf"] = -std::numeric_limits<double>::infinity();
  stats["fine"] = 2.5;
  const api::Telemetry back =
      api::telemetry_from_json(Json::parse(api::to_json(stats).dump()));
  EXPECT_TRUE(std::isnan(api::stat_real(back, "nan")));
  EXPECT_EQ(api::stat_real(back, "inf"),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(api::stat_real(back, "ninf"),
            -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(api::stat_real(back, "fine"), 2.5);
  // Legacy frames (written before tagging) carried null; decode as NaN
  // instead of throwing.
  const api::Telemetry legacy = api::telemetry_from_json(
      Json::parse("{\"old\":{\"t\":\"r\",\"v\":null}}"));
  EXPECT_TRUE(std::isnan(api::stat_real(legacy, "old")));
}

TEST(JsonTest, NonFiniteDoublesDumpAsNull) {
  Json doc = Json::object();
  doc.set("bad", std::nan(""));
  doc.set("worse", std::numeric_limits<double>::infinity());
  const std::string dumped = doc.dump();
  const Json back = Json::parse(dumped);
  EXPECT_TRUE(back.at("bad").is_null());
  EXPECT_TRUE(back.at("worse").is_null());
}

TEST(JsonApiTest, SixtyFourBitValuesRoundTripExactly) {
  // Doubles top out at 2^53; bigger integers ride as decimal strings.
  api::Telemetry stats;
  stats["huge"] = (1LL << 62) + 12345LL;
  const api::Telemetry back =
      api::telemetry_from_json(Json::parse(api::to_json(stats).dump()));
  EXPECT_EQ(api::stat_int(back, "huge"), (1LL << 62) + 12345LL);

  auto request = api::make_request(gen::by_name("uniform", 8, 2, 1));
  request.options.seed = 0xFFFFFFFFFFFFFFFFull;
  const auto parsed = api::solve_request_from_json(
      Json::parse(api::to_json(request).dump()));
  EXPECT_EQ(parsed.options.seed, 0xFFFFFFFFFFFFFFFFull);

  // And a number that cannot fit a long long fails loudly, not with UB.
  EXPECT_THROW(Json(1e300).as_int(), std::runtime_error);
}

TEST(JsonApiTest, SolveResultRoundTrips) {
  const auto instance = gen::by_name("uniform", 30, 6, 11);
  const auto result = api::solve("local-search", instance, {.seed = 4});
  ASSERT_TRUE(result.ok());

  const auto back = api::solve_result_from_json(
      Json::parse(api::to_json(result).dump(2)));
  EXPECT_EQ(back.solver, result.solver);
  EXPECT_EQ(back.status, result.status);
  EXPECT_DOUBLE_EQ(back.makespan, result.makespan);
  EXPECT_DOUBLE_EQ(back.lower_bound, result.lower_bound);
  EXPECT_DOUBLE_EQ(back.optimality_gap, result.optimality_gap);
  EXPECT_EQ(back.proven_optimal, result.proven_optimal);
  EXPECT_EQ(back.schedule_feasible, result.schedule_feasible);
  EXPECT_EQ(back.cancelled, result.cancelled);
  EXPECT_DOUBLE_EQ(back.wall_seconds, result.wall_seconds);
  EXPECT_EQ(back.schedule.assignment(), result.schedule.assignment());
  EXPECT_EQ(api::stat_int(back.stats, "moves"),
            api::stat_int(result.stats, "moves"));
  // The round-tripped schedule validates against the original instance.
  EXPECT_TRUE(model::validate(instance, back.schedule).ok());
}

TEST(JsonApiTest, SolveResultWithoutScheduleStaysLight) {
  const auto instance = gen::by_name("uniform", 30, 6, 11);
  const auto result = api::solve("greedy-bags", instance);
  const Json json = api::to_json(result, /*include_schedule=*/false);
  EXPECT_FALSE(json.contains("schedule"));
  const auto back = api::solve_result_from_json(json);
  EXPECT_EQ(back.schedule.num_jobs(), 0);
  EXPECT_DOUBLE_EQ(back.makespan, result.makespan);
}

TEST(JsonApiTest, SolveRequestRoundTrips) {
  auto request = api::make_request(gen::by_name("twopoint", 20, 5, 2),
                                   {.eps = 0.25, .seed = 9},
                                   {"eptas", "local-search"});
  request.priority = 7;
  request.options.time_limit_seconds = 1.5;
  request.options.max_nodes = 1234;
  request.deadline = api::deadline_in(60.0);

  auto back = api::solve_request_from_json(
      Json::parse(api::to_json(request).dump()));
  ASSERT_NE(back.instance, nullptr);
  EXPECT_EQ(back.instance->num_jobs(), request.instance->num_jobs());
  EXPECT_EQ(back.instance->num_machines(),
            request.instance->num_machines());
  EXPECT_DOUBLE_EQ(back.options.eps, 0.25);
  EXPECT_EQ(back.options.seed, 9u);
  EXPECT_DOUBLE_EQ(back.options.time_limit_seconds, 1.5);
  EXPECT_EQ(back.options.max_nodes, 1234);
  EXPECT_EQ(back.solvers,
            (std::vector<std::string>{"eptas", "local-search"}));
  EXPECT_EQ(back.priority, 7);
  // The relative deadline re-anchors to now(): still roughly a minute out.
  ASSERT_TRUE(back.deadline.has_value());
  const double remaining =
      std::chrono::duration<double>(*back.deadline -
                                    api::ServiceClock::now())
          .count();
  EXPECT_GT(remaining, 55.0);
  EXPECT_LT(remaining, 65.0);
  // A deserialized request is directly runnable.
  api::SchedulingService service({.num_threads = 2});
  auto handle = service.submit(std::move(back));
  const auto& result = handle.wait();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.schedule_feasible);
}

TEST(JsonApiTest, UnknownStatusThrows) {
  EXPECT_THROW(api::solve_status_from_string("bogus"), std::runtime_error);
  EXPECT_EQ(api::solve_status_from_string("cancelled"),
            api::SolveStatus::Cancelled);
}

}  // namespace
}  // namespace bagsched
