// Equivalence and cancellation tests for the speculative parallel
// dual-approximation search (eptas/guess_search).
//
// The headline contract: eptas_schedule returns bit-identical results —
// final_guess, makespan, the full assignment — at every thread count, with
// cross-guess reuse on or off, because probe outcomes are pure functions of
// the guess's rounded grid and the controller consumes them in the
// sequential binary-search order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "eptas/eptas.h"
#include "gen/generators.h"
#include "model/lower_bounds.h"
#include "util/cancellation.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using eptas::EptasResult;
using model::Instance;

struct Scenario {
  const char* family;
  int jobs;
  int machines;
  std::uint64_t seed;
  double eps;
  double step_fraction;
};

// Mixed shapes: a guess-heavy two-point case (several probes, memo hits),
// a planted instance the pipeline certifies in one or two probes, and a
// denser uniform case that exercises the fallback comparison.
const Scenario kScenarios[] = {
    {"twopoint", 60, 12, 1, 0.15, 0.25},
    {"twopoint", 60, 12, 2, 0.1, 0.25},
    {"planted", 40, 8, 7, 0.5, 0.5},
    {"uniform", 30, 5, 11, 0.5, 0.5},
};

EptasResult solve_with(const Instance& instance, const Scenario& scenario,
                       int threads, bool warm_start) {
  EptasConfig config;
  config.num_threads = threads;
  config.warm_start = warm_start;
  config.guess_step_fraction = scenario.step_fraction;
  return eptas::eptas_schedule(instance, scenario.eps, config);
}

TEST(GuessSearchTest, IdenticalResultsAcrossThreadCounts) {
  for (const Scenario& scenario : kScenarios) {
    const Instance instance = gen::by_name(
        scenario.family, scenario.jobs, scenario.machines, scenario.seed);
    for (const bool warm : {false, true}) {
      const EptasResult reference =
          solve_with(instance, scenario, 1, warm);
      EXPECT_TRUE(model::validate(instance, reference.schedule).ok());
      for (const int threads : {2, 4, 8}) {
        const EptasResult parallel =
            solve_with(instance, scenario, threads, warm);
        SCOPED_TRACE(std::string(scenario.family) + " warm=" +
                     std::to_string(warm) + " threads=" +
                     std::to_string(threads));
        EXPECT_DOUBLE_EQ(parallel.makespan, reference.makespan);
        EXPECT_DOUBLE_EQ(parallel.stats.final_guess,
                         reference.stats.final_guess);
        EXPECT_EQ(parallel.stats.used_fallback,
                  reference.stats.used_fallback);
        EXPECT_EQ(parallel.stats.pipeline_succeeded,
                  reference.stats.pipeline_succeeded);
        EXPECT_EQ(parallel.schedule.assignment(),
                  reference.schedule.assignment());
        // The deterministic counters replay identically too; only
        // probes_launched / probes_cancelled may differ (speculation).
        EXPECT_EQ(parallel.stats.guesses_tried,
                  reference.stats.guesses_tried);
        EXPECT_EQ(parallel.stats.probes_memo_hits,
                  reference.stats.probes_memo_hits);
        EXPECT_EQ(parallel.stats.columns_warm_started,
                  reference.stats.columns_warm_started);
        EXPECT_EQ(parallel.stats.pricing_rounds_saved,
                  reference.stats.pricing_rounds_saved);
        EXPECT_EQ(parallel.stats.threads_used, threads);
      }
    }
  }
}

TEST(GuessSearchTest, WarmStartOnVsOffCrossCheck) {
  // Cross-guess reuse may legitimately change which columns the master
  // picks, so the cross-check asserts the invariants reuse must preserve:
  // feasibility, the approximation band, and per-mode determinism. On
  // these fixed scenarios the outcomes happen to coincide exactly, which
  // pins down any accidental semantic drift of the reuse path.
  for (const Scenario& scenario : kScenarios) {
    const Instance instance = gen::by_name(
        scenario.family, scenario.jobs, scenario.machines, scenario.seed);
    const EptasResult cold = solve_with(instance, scenario, 1, false);
    const EptasResult warm = solve_with(instance, scenario, 1, true);
    SCOPED_TRACE(scenario.family);
    EXPECT_TRUE(model::validate(instance, cold.schedule).ok());
    EXPECT_TRUE(model::validate(instance, warm.schedule).ok());
    const double lower = model::combined_lower_bound(instance);
    EXPECT_LE(warm.makespan, cold.makespan + 1e-9);  // never worse here
    EXPECT_GE(warm.makespan, lower - 1e-9);
    EXPECT_DOUBLE_EQ(warm.makespan, cold.makespan);
    // Reuse only kicks in with warm_start on.
    EXPECT_EQ(cold.stats.probes_memo_hits, 0);
    EXPECT_EQ(cold.stats.columns_warm_started, 0);
  }
}

TEST(GuessSearchTest, GuessHeavyCaseActuallyReuses) {
  // The reuse counters must be live on the guess-heavy shape: adjacent
  // guesses of the fine (eps=0.1, f=0.2) grid round identically, so the
  // memo must serve at least one consumed probe.
  const Instance instance = gen::by_name("twopoint", 60, 12, 1);
  EptasConfig config;
  config.num_threads = 1;
  config.warm_start = true;
  config.guess_step_fraction = 0.2;
  const EptasResult result = eptas::eptas_schedule(instance, 0.1, config);
  EXPECT_TRUE(model::validate(instance, result.schedule).ok());
  EXPECT_GT(result.stats.probes_memo_hits, 0);
  EXPECT_GT(result.stats.guesses_tried, 2);
}

TEST(GuessSearchTest, PreFiredTokenFallsBackImmediately) {
  const Instance instance = gen::by_name("twopoint", 60, 12, 1);
  util::CancellationToken token;
  token.request_stop();
  for (const int threads : {1, 4}) {
    EptasConfig config;
    config.num_threads = threads;
    config.cancel = &token;
    const EptasResult result = eptas::eptas_schedule(instance, 0.2, config);
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
    EXPECT_TRUE(result.stats.used_fallback);
    EXPECT_FALSE(result.stats.pipeline_succeeded);
  }
}

TEST(GuessSearchTest, MidSearchCancellationStaysFeasible) {
  // Fire the token from another thread while the search runs; whatever the
  // timing, the result must be a feasible schedule (pipeline-certified or
  // the greedy fallback) and the run must wind down promptly — the
  // placement/small-jobs/repair stages poll the token, so a cancel cannot
  // stall for a whole pipeline stage.
  const Instance instance = gen::by_name("twopoint", 100, 16, 3);
  for (const int threads : {1, 4}) {
    util::CancellationToken token;
    EptasConfig config;
    config.num_threads = threads;
    config.guess_step_fraction = 0.25;
    config.cancel = &token;
    std::thread firer([&token] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      token.request_stop();
    });
    const auto start = std::chrono::steady_clock::now();
    const EptasResult result = eptas::eptas_schedule(instance, 0.1, config);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    firer.join();
    EXPECT_TRUE(model::validate(instance, result.schedule).ok());
    // Generous bound: a full uncancelled run takes ~0.3s sequentially; the
    // point is that the cancel does not hang the search.
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
  }
}

TEST(GuessSearchTest, InnerStagesPollCancellation) {
  // A pre-fired token handed straight to one probe must abort the pipeline
  // stages (column generation, placement, small jobs, repair) and read as
  // a failed guess.
  const Instance instance = gen::by_name("twopoint", 60, 12, 1);
  util::CancellationToken token;
  token.request_stop();
  EptasConfig config;
  config.cancel = &token;
  config.milp.cancel = &token;
  const double generous =
      2.0 * model::combined_lower_bound(instance) + 10.0;
  const auto schedule =
      eptas::try_makespan_guess(instance, 0.2, generous, config);
  EXPECT_FALSE(schedule.has_value());
}

TEST(GuessSearchTest, TryMakespanGuessUnchangedByConfigThreads) {
  // try_makespan_guess is a single probe: the search-level knobs must not
  // leak into it.
  const auto planted = gen::planted({.num_machines = 5,
                                     .num_bags = 12,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 4,
                                     .target = 1.0,
                                     .seed = 9});
  EptasConfig sequential;
  sequential.num_threads = 1;
  EptasConfig parallel;
  parallel.num_threads = 8;
  const auto a = eptas::try_makespan_guess(planted.instance, 0.5,
                                           1.05 * planted.opt, sequential);
  const auto b = eptas::try_makespan_guess(planted.instance, 0.5,
                                           1.05 * planted.opt, parallel);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->assignment(), b->assignment());
}

}  // namespace
}  // namespace bagsched
