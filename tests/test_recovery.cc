// Kill-9 crash-recovery tests (DESIGN.md §8): fork/exec the real
// sched_server binary with a journal, SIGKILL it mid-churn via the
// persist.crash.append fault point (the process dies right after a record
// hit the file, before the ack), restart it on the same journal dir, and
// prove the recovery invariant — every acked commit is recovered
// fingerprint-identical, and the one possibly-unacked in-flight commit is
// absorbed by expect_revision dedupe instead of double-applied.
//
// The seed is taken from BAGSCHED_CHAOS_SEED (default 1) so CI can sweep
// several kill points. On failure the journal dir is kept and its path
// printed, for upload as a CI artifact.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/telemetry.h"
#include "gen/churn.h"
#include "model/delta.h"
#include "net/client.h"
#include "persist/journal.h"

namespace bagsched {
namespace {

constexpr const char* kServerBinary = "./sched_server";

std::uint64_t chaos_seed() {
  const char* env = std::getenv("BAGSCHED_CHAOS_SEED");
  return env != nullptr && *env != '\0' ? std::strtoull(env, nullptr, 10) : 1;
}

/// Scratch journal directory; kept (with its path printed) when the test
/// failed so CI can archive the evidence.
class JournalDir {
 public:
  JournalDir() {
    char templ[] = "/tmp/bagsched_recovery_XXXXXX";
    const char* made = ::mkdtemp(templ);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~JournalDir() {
    if (path_.empty()) return;
    if (::testing::Test::HasFailure()) {
      std::fprintf(stderr, "[recovery] journal kept for inspection: %s\n",
                   path_.c_str());
      return;
    }
    if (DIR* dir = ::opendir(path_.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A forked sched_server child. stdout is piped so the test can read the
/// "listening on host:port" line; stderr is inherited (visible in logs).
struct ServerProc {
  pid_t pid = -1;
  int out_fd = -1;
  std::uint16_t port = 0;

  ~ServerProc() { shutdown(); }

  void shutdown() {
    if (out_fd >= 0) {
      ::close(out_fd);
      out_fd = -1;
    }
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }

  /// Reaps the child and returns its raw waitpid status.
  int wait_status() {
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    pid = -1;
    return status;
  }

  std::string read_line() {
    std::string line;
    char byte = 0;
    while (::read(out_fd, &byte, 1) == 1) {
      if (byte == '\n') break;
      line.push_back(byte);
    }
    return line;
  }
};

/// fork/exec the real binary. `faults` (may be empty) becomes
/// BAGSCHED_FAULTS in the child. Returns with `port` parsed from stdout.
ServerProc spawn_server(const std::vector<std::string>& args,
                        const std::string& faults, std::uint64_t fault_seed) {
  int out_pipe[2] = {-1, -1};
  EXPECT_EQ(::pipe(out_pipe), 0);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    if (!faults.empty()) {
      ::setenv("BAGSCHED_FAULTS", faults.c_str(), 1);
      ::setenv("BAGSCHED_FAULT_SEED", std::to_string(fault_seed).c_str(), 1);
    } else {
      ::unsetenv("BAGSCHED_FAULTS");
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(kServerBinary));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(kServerBinary, argv.data());
    std::perror("execv sched_server");
    ::_exit(127);
  }

  ServerProc proc;
  proc.pid = pid;
  proc.out_fd = out_pipe[0];
  ::close(out_pipe[1]);

  const std::string line = proc.read_line();  // "listening on host:port"
  const std::size_t colon = line.rfind(':');
  EXPECT_NE(colon, std::string::npos) << "unexpected greeting: " << line;
  if (colon != std::string::npos) {
    proc.port = static_cast<std::uint16_t>(
        std::stoi(line.substr(colon + 1)));
  }
  return proc;
}

/// Polls GET /healthz until it answers 200 (journal replay finished).
void await_ready(std::uint16_t port) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    try {
      const auto [status, body] = net::fetch_healthz("127.0.0.1", port);
      if (status == 200) return;
    } catch (const std::exception&) {
      // Connection refused while the listener comes up; keep polling.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  FAIL() << "server on port " << port << " never became ready";
}

/// Indices of the deltas that actually commit (advance the revision and
/// reach the journal): noop deltas are answered from the last commit
/// without an append, so the kill-point arithmetic must skip them.
std::vector<std::size_t> commit_indices(
    const std::vector<model::Delta>& deltas) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (!model::is_noop(deltas[i])) indices.push_back(i);
  }
  return indices;
}

gen::ChurnParams recovery_churn(std::uint64_t seed) {
  gen::ChurnParams params;
  params.num_jobs = 36;
  params.num_machines = 5;
  params.num_bags = 10;
  params.steps = 10;
  params.seed = seed;
  return params;
}

bool server_binary_present() { return ::access(kServerBinary, X_OK) == 0; }

// The canonical kill-9 chaos run. Journal appends in the child, in order:
// #1 the boot-time compaction snapshot, #2 the session_open, #2+k the k-th
// delta_commit — so persist.crash.append=n(K) SIGKILLs the server right
// after commit K-2 hit the file, before its ack went out.
TEST(RecoveryTest, AckedCommitsSurviveASigkillFingerprintIdentical) {
  if (!server_binary_present()) {
    GTEST_SKIP() << "sched_server binary not built";
  }
  const std::uint64_t seed = chaos_seed();
  const auto trace = gen::churn_trace(recovery_churn(17 + seed));
  const std::size_t steps = trace.deltas.size();
  const std::vector<std::size_t> commits = commit_indices(trace.deltas);
  ASSERT_GE(commits.size(), 4u);
  // Kill during commit k (1-based among the committing deltas), leaving at
  // least two commits to finish after recovery.
  const std::size_t kill_commit = 1 + seed % (commits.size() - 2);
  const std::string fault =
      "persist.crash.append=n" + std::to_string(kill_commit + 2);

  JournalDir dir;
  const std::vector<std::string> args = {
      "--journal-dir", dir.path(), "--fsync",          "always",
      "--threads",     "2",        "--session-linger", "60"};
  ServerProc server = spawn_server(args, fault, seed);
  ASSERT_GT(server.port, 0);
  await_ready(server.port);

  // ledger[r] = schedule digest the server acked at revision r.
  std::vector<std::string> ledger;
  net::Client client = net::Client::connect("127.0.0.1", server.port);
  const api::SolveRequest request = api::make_request(
      trace.initial, api::SolveOptions{}, {"greedy-bags"});
  const net::Client::Session session = client.open_session(request, "s1");
  ASSERT_NE(session.epoch, 0u);
  ledger.push_back(persist::schedule_digest(session.initial.schedule));

  std::size_t in_flight = steps;  // 0-based index of the unacked delta
  for (std::size_t i = 0; i < steps; ++i) {
    try {
      const api::SolveResult result = client.delta(
          session.id, trace.deltas[i], "d" + std::to_string(i),
          /*want_schedule=*/true, /*read_timeout_seconds=*/20.0);
      ASSERT_TRUE(result.ok()) << result.error;
      if (model::is_noop(trace.deltas[i])) continue;  // no commit, no ack
      ASSERT_EQ(api::stat_int(result.stats, "online.revision", -1),
                static_cast<long long>(ledger.size()));
      ledger.push_back(persist::schedule_digest(result.schedule));
    } catch (const std::exception&) {
      in_flight = i;  // the crash window: sent, journaled, never acked
      break;
    }
  }
  ASSERT_EQ(in_flight, commits[kill_commit - 1])
      << "expected the injected SIGKILL at commit " << kill_commit;
  const std::uint64_t acked = ledger.size() - 1;

  const int status = server.wait_status();
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  client.close();

  // Restart on the same journal, no fault injection this time.
  ServerProc revived = spawn_server(args, "", 0);
  ASSERT_GT(revived.port, 0);
  await_ready(revived.port);

  net::Client resumer = net::Client::connect("127.0.0.1", revived.port);
  const net::Client::Resumed resumed =
      resumer.resume_session(session.id, session.epoch);
  EXPECT_EQ(resumed.epoch, session.epoch);
  // acked ⇒ recovered: the server may be exactly at the last acked
  // revision, or one ahead (the journaled-but-unacked in-flight commit).
  ASSERT_GE(resumed.revision, acked);
  ASSERT_LE(resumed.revision, acked + 1);
  if (resumed.revision == acked) {
    EXPECT_EQ(resumed.digest, ledger[acked]);
  }

  // Resend the in-flight delta with expect_revision = last acked. If its
  // first copy landed before the crash this is answered from the commit
  // cache (duplicate ack), never applied twice; otherwise it applies now.
  const api::SolveResult resent = resumer.delta(
      session.id, trace.deltas[in_flight], "resend",
      /*want_schedule=*/true, /*read_timeout_seconds=*/20.0,
      /*expect_revision=*/acked);
  ASSERT_TRUE(resent.ok()) << resent.error;
  EXPECT_EQ(api::stat_int(resent.stats, "online.revision", -1),
            static_cast<long long>(acked + 1));
  const bool was_duplicate =
      api::stat_bool(resent.stats, "online.duplicate", false);
  EXPECT_EQ(was_duplicate, resumed.revision == acked + 1);
  if (was_duplicate) {
    // The cached commit IS the recovered one — fingerprint-identical.
    EXPECT_EQ(persist::schedule_digest(resent.schedule), resumed.digest);
  }
  ledger.push_back(persist::schedule_digest(resent.schedule));

  // Finish the trace against the revived server.
  for (std::size_t i = in_flight + 1; i < steps; ++i) {
    const api::SolveResult result = resumer.delta(
        session.id, trace.deltas[i], "r" + std::to_string(i),
        /*want_schedule=*/true, /*read_timeout_seconds=*/20.0);
    ASSERT_TRUE(result.ok()) << result.error;
    if (model::is_noop(trace.deltas[i])) continue;
    EXPECT_EQ(api::stat_int(result.stats, "online.revision", -1),
              static_cast<long long>(ledger.size()));
    ledger.push_back(persist::schedule_digest(result.schedule));
  }
  EXPECT_EQ(ledger.size(), commits.size() + 1);
  resumer.close_session(session.id);
  resumer.close();

  ::kill(revived.pid, SIGTERM);
  const int drained = revived.wait_status();
  EXPECT_TRUE(WIFEXITED(drained));
  EXPECT_EQ(WEXITSTATUS(drained), 0);
}

// The same crash, driven through RetryingClient: after the SIGKILL its
// delta() exhausts the retry budget and throws, but the tracked session
// (id, epoch, pinned revision) survives — once the server is back on the
// same port, the next delta() transparently reconnects, resumes, and the
// resend is absorbed as a duplicate ack instead of a double-apply.
TEST(RecoveryTest, RetryingClientResumesAcrossARestart) {
  if (!server_binary_present()) {
    GTEST_SKIP() << "sched_server binary not built";
  }
  const std::uint64_t seed = chaos_seed();
  const auto trace = gen::churn_trace(recovery_churn(101 + seed));
  const std::size_t steps = trace.deltas.size();
  const std::vector<std::size_t> commits = commit_indices(trace.deltas);
  ASSERT_GE(commits.size(), 5u);
  const std::size_t kill_commit = 2 + seed % (commits.size() - 3);
  const std::string fault =
      "persist.crash.append=n" + std::to_string(kill_commit + 2);

  JournalDir dir;
  std::vector<std::string> args = {
      "--journal-dir", dir.path(), "--fsync",          "interval",
      "--threads",     "2",        "--session-linger", "60"};
  ServerProc server = spawn_server(args, fault, seed);
  ASSERT_GT(server.port, 0);
  await_ready(server.port);
  const std::uint16_t port = server.port;

  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.connect_timeout_seconds = 2.0;
  policy.read_timeout_seconds = 20.0;
  policy.initial_backoff_seconds = 0.02;
  policy.max_backoff_seconds = 0.1;
  net::RetryingClient client("127.0.0.1", port, policy);
  const api::SolveRequest request = api::make_request(
      trace.initial, api::SolveOptions{}, {"greedy-bags"});
  client.open_session(request);

  std::size_t in_flight = steps;
  for (std::size_t i = 0; i < steps; ++i) {
    try {
      const api::SolveResult result =
          client.delta(trace.deltas[i], "d" + std::to_string(i));
      ASSERT_TRUE(result.ok()) << result.error;
    } catch (const net::ConnectionError&) {
      in_flight = i;
      break;
    } catch (const net::TimedOut&) {
      in_flight = i;
      break;
    }
  }
  ASSERT_LT(in_flight, steps) << "injected SIGKILL never hit";
  ASSERT_EQ(in_flight, commits[kill_commit - 1]);
  ASSERT_EQ(client.revision(), kill_commit - 1);
  ASSERT_NE(client.session(), 0u) << "transport loss must not end the session";

  const int status = server.wait_status();
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Revive on the SAME port so the tracked client can find it again.
  args.insert(args.end(), {"--port", std::to_string(port)});
  ServerProc revived = spawn_server(args, "", 0);
  ASSERT_EQ(revived.port, port);
  await_ready(port);

  // The interrupted delta, replayed through the wrapper: reconnect +
  // resume_session + resend under the pre-crash expect_revision.
  const api::SolveResult resent =
      client.delta(trace.deltas[in_flight], "resend");
  ASSERT_TRUE(resent.ok()) << resent.error;
  EXPECT_EQ(client.revision(), kill_commit);
  EXPECT_GE(client.stats().resumes, 1u);
  if (api::stat_bool(resent.stats, "online.duplicate", false)) {
    EXPECT_GE(client.stats().duplicate_acks, 1u);
  }

  for (std::size_t i = in_flight + 1; i < steps; ++i) {
    const api::SolveResult result =
        client.delta(trace.deltas[i], "t" + std::to_string(i));
    ASSERT_TRUE(result.ok()) << result.error;
  }
  EXPECT_EQ(client.revision(), commits.size());
  client.close_session();

  ::kill(revived.pid, SIGTERM);
  const int drained = revived.wait_status();
  EXPECT_TRUE(WIFEXITED(drained));
  EXPECT_EQ(WEXITSTATUS(drained), 0);
}

}  // namespace
}  // namespace bagsched
