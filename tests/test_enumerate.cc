// Tests for the literal (fully enumerated) MILP of paper section 3 and its
// agreement with the column-generated master.
#include <gtest/gtest.h>

#include <set>

#include "eptas/classify.h"
#include "eptas/enumerate.h"
#include "eptas/eptas.h"
#include "eptas/milp_model.h"
#include "eptas/transform.h"
#include "gen/generators.h"

namespace bagsched {
namespace {

using eptas::EptasConfig;
using eptas::Pattern;
using eptas::PatternSpace;
using model::Instance;

struct Prepared {
  Instance scaled;
  eptas::Classification cls;
  eptas::Transformed transformed;
  PatternSpace space;
};

std::optional<Prepared> prepare(const Instance& instance, double eps,
                                double guess) {
  std::vector<double> sizes;
  std::vector<model::BagId> bags;
  for (const auto& job : instance.jobs()) {
    sizes.push_back(job.size / guess);
    bags.push_back(job.bag);
  }
  Instance scaled =
      Instance::from_vectors(sizes, bags, instance.num_machines());
  const auto cls = eptas::classify(scaled, eps, EptasConfig{});
  if (!cls) return std::nullopt;
  auto transformed = eptas::transform(scaled, *cls);
  auto space = eptas::build_pattern_space(transformed, *cls);
  return Prepared{std::move(scaled), *cls, std::move(transformed),
                  std::move(space)};
}

TEST(EnumerateTest, HandCraftedSpaceCountsMatch) {
  // A space with one priority bag (two sizes) and one x size, generous
  // height: patterns = (none | s0 | s1) x (0..max_x). Count by hand.
  PatternSpace space;
  space.max_height = 2.0;
  PatternSpace::PriorityBag pbag;
  pbag.bag = 0;
  pbag.sizes = {0.9, 0.6};
  pbag.counts = {1, 1};
  space.priority_bags.push_back(pbag);
  space.x_sizes = {0.5};
  space.x_avail = {3};
  const auto patterns = eptas::enumerate_all_patterns(space, 1000);
  ASSERT_TRUE(patterns.has_value());
  // none: x in 0..3 -> 4; s0 (0.9): x in 0..2 -> 3; s1 (0.6): x in 0..2
  // (0.6 + 3*0.5 = 2.1 > 2) -> 3. Total 10.
  EXPECT_EQ(patterns->size(), 10u);
  // All distinct, all within height.
  std::set<std::vector<int>> signatures;
  for (const Pattern& pattern : *patterns) {
    EXPECT_LE(pattern.height, space.max_height + 1e-12);
    EXPECT_TRUE(signatures.insert(pattern.signature()).second);
  }
}

TEST(EnumerateTest, OverflowReturnsNullopt) {
  PatternSpace space;
  space.max_height = 10.0;
  space.x_sizes = {0.1};
  space.x_avail = {100};
  EXPECT_FALSE(eptas::enumerate_all_patterns(space, 50).has_value());
}

TEST(EnumerateTest, EmptySpaceHasOnePattern) {
  PatternSpace space;
  space.max_height = 1.0;
  const auto patterns = eptas::enumerate_all_patterns(space, 10);
  ASSERT_TRUE(patterns.has_value());
  EXPECT_EQ(patterns->size(), 1u);  // the empty pattern
}

TEST(EnumerateTest, LiteralMilpFeasibleAtOpt) {
  const auto planted = gen::planted({.num_machines = 4,
                                     .num_bags = 8,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 3,
                                     .target = 1.0,
                                     .seed = 2});
  const auto prep = prepare(planted.instance, 0.5, 1.05);
  ASSERT_TRUE(prep.has_value());
  eptas::EnumeratedStats stats;
  const auto master = eptas::solve_enumerated_master(
      prep->space, prep->transformed, prep->cls, EptasConfig{},
      /*integral_y=*/false, &stats);
  ASSERT_TRUE(master.has_value());
  EXPECT_GT(stats.patterns, 0);
  EXPECT_GT(stats.constraints, 0);
  // Coverage invariant (paper constraint (2)).
  int total = 0;
  for (int count : master->multiplicity) total += count;
  EXPECT_LE(total, prep->transformed.instance.num_machines());
}

TEST(EnumerateTest, AgreesWithColumnGenerationOnFeasibility) {
  // On instances where both solvers run, feasibility verdicts at a given
  // guess must broadly agree: enumerated-feasible implies colgen-feasible
  // (colgen's rows are aggregates of the literal ones, hence weaker).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto planted = gen::planted({.num_machines = 4,
                                       .num_bags = 8,
                                       .min_jobs_per_machine = 2,
                                       .max_jobs_per_machine = 3,
                                       .target = 1.0,
                                       .seed = seed});
    for (const double guess : {1.05, 1.3}) {
      const auto prep = prepare(planted.instance, 0.5, guess);
      if (!prep) continue;
      const auto literal = eptas::solve_enumerated_master(
          prep->space, prep->transformed, prep->cls, EptasConfig{});
      const auto colgen = eptas::solve_master(
          prep->space, prep->transformed, prep->cls, EptasConfig{});
      if (literal) {
        EXPECT_TRUE(colgen.has_value())
            << "literal feasible but aggregated master infeasible (seed "
            << seed << ", guess " << guess << ")";
      }
    }
  }
}

TEST(EnumerateTest, IntegralYAlsoSolvable) {
  const auto planted = gen::planted({.num_machines = 3,
                                     .num_bags = 6,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 3,
                                     .target = 1.0,
                                     .seed = 5});
  const auto prep = prepare(planted.instance, 0.5, 1.1);
  ASSERT_TRUE(prep.has_value());
  EptasConfig config;
  config.milp.max_nodes = 20000;
  const auto master = eptas::solve_enumerated_master(
      prep->space, prep->transformed, prep->cls, config,
      /*integral_y=*/true);
  EXPECT_TRUE(master.has_value());
}

TEST(EnumerateTest, EndToEndEnumeratedProfile) {
  EptasConfig config;
  config.use_enumerated_milp = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto planted = gen::planted({.num_machines = 4,
                                       .num_bags = 8,
                                       .min_jobs_per_machine = 2,
                                       .max_jobs_per_machine = 3,
                                       .target = 1.0,
                                       .seed = seed});
    const auto result =
        eptas::eptas_schedule(planted.instance, 0.5, config);
    EXPECT_TRUE(model::validate(planted.instance, result.schedule).ok());
    EXPECT_LE(result.makespan, 2.0 * planted.opt + 1e-9);
  }
}

TEST(EnumerateTest, EnumeratedAndColgenSimilarQuality) {
  const auto planted = gen::planted({.num_machines = 4,
                                     .num_bags = 8,
                                     .min_jobs_per_machine = 2,
                                     .max_jobs_per_machine = 3,
                                     .target = 1.0,
                                     .seed = 7});
  EptasConfig enumerated;
  enumerated.use_enumerated_milp = true;
  const auto a = eptas::eptas_schedule(planted.instance, 0.5, enumerated);
  const auto b = eptas::eptas_schedule(planted.instance, 0.5);
  EXPECT_NEAR(a.makespan, b.makespan, 0.5 * planted.opt);
}

}  // namespace
}  // namespace bagsched
